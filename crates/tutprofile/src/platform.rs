//! Typed view of the platform model (§3.2 of the paper).
//!
//! A platform is a class stereotyped `«Platform»` whose composite structure
//! contains:
//!
//! * parts stereotyped `«PlatformComponentInstance»` ("processing
//!   elements"), typed by classes stereotyped `«PlatformComponent»`;
//! * parts typed by `«CommunicationSegment»` classes (bus segments);
//! * parts typed by `«CommunicationWrapper»` classes, each connected by one
//!   connector to a processing element and by another to a segment — "the
//!   communication elements are implemented as communication wrappers that
//!   are used to connect processing elements to communication segments";
//! * connectors directly between two segment parts, forming bridges
//!   (the hierarchical bus of Figure 7).

use tut_profile_core::TagValue;
use tut_uml::ids::{ClassId, PropertyId};

use crate::system::SystemModel;

/// The platform component `Type` tagged value as a typed enum.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default)]
pub enum ComponentKind {
    /// General-purpose processor.
    #[default]
    General,
    /// DSP processor.
    Dsp,
    /// Fixed-function hardware accelerator.
    HwAccelerator,
}

impl ComponentKind {
    /// The tagged-value literal.
    pub fn literal(self) -> &'static str {
        match self {
            ComponentKind::General => "general",
            ComponentKind::Dsp => "dsp",
            ComponentKind::HwAccelerator => "hw_accelerator",
        }
    }

    /// Parses from the tagged-value literal.
    pub fn from_literal(text: &str) -> Option<ComponentKind> {
        match text {
            "general" => Some(ComponentKind::General),
            "dsp" => Some(ComponentKind::Dsp),
            "hw_accelerator" => Some(ComponentKind::HwAccelerator),
            _ => None,
        }
    }
}

impl std::fmt::Display for ComponentKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.literal())
    }
}

/// The `Arbitration` tagged value as a typed enum.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default)]
pub enum Arbitration {
    /// Fixed-priority arbitration (lower address wins, paper default).
    #[default]
    Priority,
    /// Round-robin arbitration.
    RoundRobin,
    /// Time-division multiple access schedule.
    Tdma,
}

impl Arbitration {
    /// The tagged-value literal.
    pub fn literal(self) -> &'static str {
        match self {
            Arbitration::Priority => "priority",
            Arbitration::RoundRobin => "round-robin",
            Arbitration::Tdma => "tdma",
        }
    }

    /// Parses from the tagged-value literal.
    pub fn from_literal(text: &str) -> Option<Arbitration> {
        match text {
            "priority" => Some(Arbitration::Priority),
            "round-robin" => Some(Arbitration::RoundRobin),
            "tdma" => Some(Arbitration::Tdma),
            _ => None,
        }
    }
}

impl std::fmt::Display for Arbitration {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.literal())
    }
}

/// One processing-element instance (`«PlatformComponentInstance»` part).
#[derive(Clone, PartialEq, Debug)]
pub struct InstanceInfo {
    /// The part element.
    pub part: PropertyId,
    /// Instance name (e.g. `processor1`).
    pub name: String,
    /// The `«PlatformComponent»` class.
    pub component: ClassId,
    /// Component kind from the component class's `Type` tag.
    pub kind: ComponentKind,
    /// Unique instance id (`ID` tag).
    pub id: Option<i64>,
    /// Execution priority of the instance.
    pub priority: i64,
    /// Internal memory in bytes.
    pub int_memory: i64,
    /// Component clock frequency in MHz.
    pub frequency: i64,
    /// Component area (arbitrary units), if declared.
    pub area: Option<f64>,
    /// Component power (arbitrary units), if declared.
    pub power: Option<f64>,
}

/// One communication segment instance (part typed by a
/// `«CommunicationSegment»` class).
#[derive(Clone, PartialEq, Debug)]
pub struct SegmentInfo {
    /// The part element.
    pub part: PropertyId,
    /// Segment name (e.g. `hibisegment1`).
    pub name: String,
    /// The segment class.
    pub class: ClassId,
    /// Bus width in bits.
    pub data_width: i64,
    /// Clock frequency in MHz.
    pub frequency: i64,
    /// Arbitration scheme.
    pub arbitration: Arbitration,
    /// TDMA slot count (`«HIBISegment»` refinement; 0 = disabled).
    pub tdma_slots: i64,
}

/// One communication wrapper instance with its parameters.
#[derive(Clone, PartialEq, Debug)]
pub struct WrapperInfo {
    /// The part element.
    pub part: PropertyId,
    /// Wrapper name.
    pub name: String,
    /// Bus address.
    pub address: Option<i64>,
    /// Buffer size in words.
    pub buffer_size: i64,
    /// Maximum time the wrapper may hold the segment.
    pub max_time: i64,
}

/// A resolved attachment: a processing element connected to a segment
/// through a wrapper.
#[derive(Clone, PartialEq, Debug)]
pub struct Attachment {
    /// The processing-element part.
    pub pe: PropertyId,
    /// The segment part.
    pub segment: PropertyId,
    /// The wrapper and its parameters.
    pub wrapper: WrapperInfo,
}

/// A bridge between two segments (a connector joining two segment parts).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Bridge {
    /// First segment part.
    pub a: PropertyId,
    /// Second segment part.
    pub b: PropertyId,
}

/// Read-only typed access to the platform model.
#[derive(Clone, Copy, Debug)]
pub struct PlatformView<'a> {
    system: &'a SystemModel,
}

impl<'a> PlatformView<'a> {
    pub(crate) fn new(system: &'a SystemModel) -> Self {
        PlatformView { system }
    }

    /// The `«Platform»` top-level class, if one is stereotyped.
    pub fn top(&self) -> Option<ClassId> {
        let s = self.system;
        s.model
            .classes()
            .map(|(id, _)| id)
            .find(|&id| s.has(id, s.tut.platform))
    }

    /// All `«PlatformComponent»` classes (the component library).
    pub fn components(&self) -> Vec<ClassId> {
        let s = self.system;
        s.model
            .classes()
            .map(|(id, _)| id)
            .filter(|&id| s.has(id, s.tut.platform_component))
            .collect()
    }

    /// All processing-element instances with resolved parameters.
    pub fn instances(&self) -> Vec<InstanceInfo> {
        let s = self.system;
        s.model
            .properties()
            .filter(|(id, _)| s.has(*id, s.tut.platform_component_instance))
            .map(|(id, prop)| {
                let component = prop.type_();
                let inst_tag = |name: &str| {
                    s.tag_value(id, s.tut.platform_component_instance, name)
                        .cloned()
                };
                let comp_tag = |name: &str| {
                    s.tag_value(component, s.tut.platform_component, name)
                        .cloned()
                };
                InstanceInfo {
                    part: id,
                    name: prop.name().to_owned(),
                    component,
                    kind: comp_tag("Type")
                        .and_then(|v| v.as_str().and_then(ComponentKind::from_literal))
                        .unwrap_or_default(),
                    id: inst_tag("ID").and_then(|v| v.as_int()),
                    priority: inst_tag("Priority").and_then(|v| v.as_int()).unwrap_or(0),
                    int_memory: inst_tag("IntMemory")
                        .and_then(|v| v.as_int())
                        .unwrap_or(65536),
                    frequency: comp_tag("Frequency").and_then(|v| v.as_int()).unwrap_or(50),
                    area: comp_tag("Area").and_then(|v| v.as_real()),
                    power: comp_tag("Power").and_then(|v| v.as_real()),
                }
            })
            .collect()
    }

    /// Looks up one instance by part id.
    pub fn instance(&self, part: PropertyId) -> Option<InstanceInfo> {
        self.instances().into_iter().find(|i| i.part == part)
    }

    /// All segment instances: parts whose *type class* carries
    /// `«CommunicationSegment»` (or a specialisation).
    pub fn segments(&self) -> Vec<SegmentInfo> {
        let s = self.system;
        s.model
            .properties()
            .filter(|(_, prop)| s.has(prop.type_(), s.tut.communication_segment))
            .map(|(id, prop)| {
                let class = prop.type_();
                let tag = |name: &str| {
                    s.tag_value(class, s.tut.communication_segment, name)
                        .cloned()
                };
                SegmentInfo {
                    part: id,
                    name: prop.name().to_owned(),
                    class,
                    data_width: tag("DataWidth").and_then(|v| v.as_int()).unwrap_or(32),
                    frequency: tag("Frequency").and_then(|v| v.as_int()).unwrap_or(50),
                    arbitration: tag("Arbitration")
                        .and_then(|v| v.as_str().and_then(Arbitration::from_literal))
                        .unwrap_or_default(),
                    tdma_slots: tag("TdmaSlots").and_then(|v| v.as_int()).unwrap_or(0),
                }
            })
            .collect()
    }

    fn wrapper_info(&self, part: PropertyId) -> WrapperInfo {
        let s = self.system;
        let prop = s.model.property(part);
        let class = prop.type_();
        let tag = |name: &str| {
            s.tag_value(class, s.tut.communication_wrapper, name)
                .cloned()
        };
        WrapperInfo {
            part,
            name: prop.name().to_owned(),
            address: tag("Address").and_then(|v| v.as_int()),
            buffer_size: tag("BufferSize").and_then(|v| v.as_int()).unwrap_or(8),
            max_time: tag("MaxTime").and_then(|v| v.as_int()).unwrap_or(16),
        }
    }

    /// All wrapper instances.
    pub fn wrappers(&self) -> Vec<WrapperInfo> {
        let s = self.system;
        s.model
            .properties()
            .filter(|(_, prop)| s.has(prop.type_(), s.tut.communication_wrapper))
            .map(|(id, _)| self.wrapper_info(id))
            .collect()
    }

    /// Resolves the attachments: each wrapper part connected (by two
    /// connectors in the platform's composite structure) to one processing
    /// element and one segment.
    pub fn attachments(&self) -> Vec<Attachment> {
        let s = self.system;
        let Some(top) = self.top() else {
            return Vec::new();
        };
        let is_pe = |part: PropertyId| s.has(part, s.tut.platform_component_instance);
        let is_segment =
            |part: PropertyId| s.has(s.model.property(part).type_(), s.tut.communication_segment);
        let is_wrapper =
            |part: PropertyId| s.has(s.model.property(part).type_(), s.tut.communication_wrapper);

        let mut attachments = Vec::new();
        let wrapper_parts: Vec<PropertyId> = s
            .model
            .properties()
            .filter(|(_, p)| p.owner() == top)
            .map(|(id, _)| id)
            .filter(|&id| is_wrapper(id))
            .collect();
        for wrapper_part in wrapper_parts {
            let mut pe = None;
            let mut segment = None;
            for (_, conn) in s.model.connectors_of(top) {
                let [a, b] = conn.ends();
                for (this, other) in [(a, b), (b, a)] {
                    if this.part != Some(wrapper_part) {
                        continue;
                    }
                    if let Some(peer) = other.part {
                        if is_pe(peer) {
                            pe = Some(peer);
                        } else if is_segment(peer) {
                            segment = Some(peer);
                        }
                    }
                }
            }
            if let (Some(pe), Some(segment)) = (pe, segment) {
                attachments.push(Attachment {
                    pe,
                    segment,
                    wrapper: self.wrapper_info(wrapper_part),
                });
            }
        }
        attachments.sort_by_key(|a| a.wrapper.part);
        attachments
    }

    /// Resolves the bridges: connectors joining two segment parts
    /// directly.
    pub fn bridges(&self) -> Vec<Bridge> {
        let s = self.system;
        let Some(top) = self.top() else {
            return Vec::new();
        };
        let is_segment =
            |part: PropertyId| s.has(s.model.property(part).type_(), s.tut.communication_segment);
        let mut bridges = Vec::new();
        for (_, conn) in s.model.connectors_of(top) {
            let [a, b] = conn.ends();
            if let (Some(pa), Some(pb)) = (a.part, b.part) {
                if is_segment(pa) && is_segment(pb) {
                    bridges.push(Bridge { a: pa, b: pb });
                }
            }
        }
        bridges
    }

    /// The segment a processing element is attached to (first attachment).
    pub fn segment_of(&self, pe: PropertyId) -> Option<PropertyId> {
        self.attachments()
            .into_iter()
            .find(|a| a.pe == pe)
            .map(|a| a.segment)
    }

    /// Total declared area of all instantiated components.
    pub fn total_area(&self) -> f64 {
        self.instances().iter().filter_map(|i| i.area).sum()
    }

    /// Total declared power of all instantiated components.
    pub fn total_power(&self) -> f64 {
        self.instances().iter().filter_map(|i| i.power).sum()
    }
}

/// Mutating helpers for building platform models. These mirror how a
/// designer "selects suitable components from the TUT-Profile library and
/// connects components together" (§4.2).
impl SystemModel {
    /// Creates a `«PlatformComponent»` class.
    ///
    /// # Panics
    ///
    /// Panics on profile errors (construction bug).
    pub fn add_platform_component(
        &mut self,
        name: &str,
        kind: ComponentKind,
        frequency_mhz: i64,
        area: f64,
        power: f64,
    ) -> ClassId {
        let class = self.model.add_class(name);
        self.apply_with(
            class,
            |t| t.platform_component,
            [
                ("Type", TagValue::Enum(kind.literal().into())),
                ("Frequency", TagValue::Int(frequency_mhz)),
                ("Area", TagValue::Real(area)),
                ("Power", TagValue::Real(power)),
            ],
        )
        .expect("fresh component class accepts the stereotype");
        class
    }

    /// Instantiates a platform component as a part of `platform_class`.
    ///
    /// # Panics
    ///
    /// Panics on profile errors (construction bug).
    pub fn add_platform_instance(
        &mut self,
        platform_class: ClassId,
        name: &str,
        component: ClassId,
        id: i64,
        priority: i64,
    ) -> PropertyId {
        let part = self.model.add_part(platform_class, name, component);
        self.apply_with(
            part,
            |t| t.platform_component_instance,
            [
                ("ID", TagValue::Int(id)),
                ("Priority", TagValue::Int(priority)),
            ],
        )
        .expect("fresh part accepts the stereotype");
        part
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tut_uml::model::ConnectorEnd;

    /// Builds a two-segment platform:
    /// cpu1, cpu2 -> seg1; acc -> seg2; bridge seg1<->seg2.
    fn sample() -> (SystemModel, Vec<PropertyId>, Vec<PropertyId>) {
        let mut s = SystemModel::new("P");
        let platform = s.model.add_class("Tutwlan");
        s.apply(platform, |t| t.platform).unwrap();

        let nios = s.add_platform_component("Nios", ComponentKind::General, 50, 2.0, 0.5);
        let crc =
            s.add_platform_component("Crc32Acc", ComponentKind::HwAccelerator, 100, 0.2, 0.05);

        let seg_class = s.model.add_class("HibiSegment");
        s.apply_with(
            seg_class,
            |t| t.hibi_segment,
            [
                ("DataWidth", TagValue::Int(32)),
                ("Frequency", TagValue::Int(100)),
                ("Arbitration", TagValue::Enum("round-robin".into())),
            ],
        )
        .unwrap();

        let wrap_class = s.model.add_class("HibiWrapper");
        s.apply_with(
            wrap_class,
            |t| t.hibi_wrapper,
            [("BufferSize", TagValue::Int(16))],
        )
        .unwrap();

        let cpu1 = s.add_platform_instance(platform, "processor1", nios, 1, 2);
        let cpu2 = s.add_platform_instance(platform, "processor2", nios, 2, 1);
        let acc = s.add_platform_instance(platform, "accelerator1", crc, 3, 0);
        let seg1 = s.model.add_part(platform, "hibisegment1", seg_class);
        let seg2 = s.model.add_part(platform, "hibisegment2", seg_class);

        // Ports for wiring.
        let pe_port = s.model.add_port(nios, "hibi");
        let acc_port = s.model.add_port(crc, "hibi");
        let seg_port = s.model.add_port(seg_class, "agents");
        let wrap_pe = s.model.add_port(wrap_class, "pe");
        let wrap_bus = s.model.add_port(wrap_class, "bus");

        let attach = |s: &mut SystemModel, pe: PropertyId, seg: PropertyId, n: &str, port| {
            let w = s.model.add_part(platform, n, wrap_class);
            s.model.add_connector(
                platform,
                format!("{n}_pe"),
                ConnectorEnd {
                    part: Some(w),
                    port: wrap_pe,
                },
                ConnectorEnd {
                    part: Some(pe),
                    port,
                },
            );
            s.model.add_connector(
                platform,
                format!("{n}_bus"),
                ConnectorEnd {
                    part: Some(w),
                    port: wrap_bus,
                },
                ConnectorEnd {
                    part: Some(seg),
                    port: seg_port,
                },
            );
        };
        attach(&mut s, cpu1, seg1, "w1", pe_port);
        attach(&mut s, cpu2, seg1, "w2", pe_port);
        attach(&mut s, acc, seg2, "w3", acc_port);
        s.model.add_connector(
            platform,
            "bridge",
            ConnectorEnd {
                part: Some(seg1),
                port: seg_port,
            },
            ConnectorEnd {
                part: Some(seg2),
                port: seg_port,
            },
        );
        (s, vec![cpu1, cpu2, acc], vec![seg1, seg2])
    }

    #[test]
    fn instances_resolve_parameters() {
        let (s, pes, _) = sample();
        let view = s.platform();
        let instances = view.instances();
        assert_eq!(instances.len(), 3);
        let cpu1 = view.instance(pes[0]).unwrap();
        assert_eq!(cpu1.kind, ComponentKind::General);
        assert_eq!(cpu1.id, Some(1));
        assert_eq!(cpu1.frequency, 50);
        assert_eq!(cpu1.area, Some(2.0));
        let acc = view.instance(pes[2]).unwrap();
        assert_eq!(acc.kind, ComponentKind::HwAccelerator);
        assert_eq!(acc.frequency, 100);
    }

    #[test]
    fn segments_resolve_through_specialisation() {
        let (s, _, segs) = sample();
        let view = s.platform();
        let segments = view.segments();
        assert_eq!(segments.len(), 2);
        let seg1 = segments.iter().find(|x| x.part == segs[0]).unwrap();
        assert_eq!(seg1.arbitration, Arbitration::RoundRobin);
        assert_eq!(seg1.frequency, 100);
        assert_eq!(
            seg1.tdma_slots, 0,
            "HIBI default visible through base query"
        );
    }

    #[test]
    fn attachments_and_bridges_resolve() {
        let (s, pes, segs) = sample();
        let view = s.platform();
        let attachments = view.attachments();
        assert_eq!(attachments.len(), 3);
        assert_eq!(view.segment_of(pes[0]), Some(segs[0]));
        assert_eq!(view.segment_of(pes[2]), Some(segs[1]));
        assert_eq!(attachments[0].wrapper.buffer_size, 16);
        let bridges = view.bridges();
        assert_eq!(bridges.len(), 1);
        assert_eq!((bridges[0].a, bridges[0].b), (segs[0], segs[1]));
    }

    #[test]
    fn totals() {
        let (s, ..) = sample();
        let view = s.platform();
        assert!((view.total_area() - 4.2).abs() < 1e-9);
        assert!((view.total_power() - 1.05).abs() < 1e-9);
    }

    #[test]
    fn literals_round_trip() {
        for k in [
            ComponentKind::General,
            ComponentKind::Dsp,
            ComponentKind::HwAccelerator,
        ] {
            assert_eq!(ComponentKind::from_literal(k.literal()), Some(k));
        }
        for a in [
            Arbitration::Priority,
            Arbitration::RoundRobin,
            Arbitration::Tdma,
        ] {
            assert_eq!(Arbitration::from_literal(a.literal()), Some(a));
        }
    }
}
