//! **TUT-Profile** — the paper's contribution: a UML 2.0 profile for
//! embedded system design (Kukkala et al., DATE 2005).
//!
//! The profile classifies a design into three models:
//!
//! * **Application** (§3.1) — `«Application»`, `«ApplicationComponent»`,
//!   `«ApplicationProcess»`, `«ProcessGroup»`, `«ProcessGrouping»`.
//! * **Platform** (§3.2) — `«Platform»`, `«PlatformComponent»`,
//!   `«PlatformComponentInstance»`, `«CommunicationSegment»`,
//!   `«CommunicationWrapper»`, plus the HIBI specialisations
//!   `«HIBISegment»` and `«HIBIWrapper»` (§4.2).
//! * **Mapping** (§3.3) — `«PlatformMapping»`.
//!
//! [`TutProfile`] builds the full profile with every stereotype of Table 1
//! and every tagged value of Tables 2–3. [`SystemModel`] bundles a UML
//! model with its stereotype applications and exposes typed views:
//! [`application::ApplicationView`], [`platform::PlatformView`],
//! [`mapping::MappingView`]. [`rules`] is the profile's design-rule
//! catalogue ("strict rules how to use them", §2.2) as a
//! [`tut_profile_core::ConstraintSet`].
//!
//! # Example
//!
//! ```
//! use tut_profile::SystemModel;
//!
//! let mut system = SystemModel::new("Demo");
//! let app = system.model.add_class("MyApp");
//! system.apply(app, |tut| tut.application)?;
//! let tut = &system.tut;
//! assert!(system.apps.has_stereotype(tut.profile(), app, tut.application));
//! # Ok::<(), tut_profile_core::ProfileError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod application;
pub mod flow;
pub mod mapping;
pub mod platform;
pub mod profile_def;
pub mod rules;
pub mod system;
pub mod tables;

pub use profile_def::TutProfile;
pub use system::SystemModel;
