//! Typed view of the application model (§3.1 of the paper).

use tut_profile_core::TagValue;
use tut_uml::ids::{ClassId, DependencyId, ElementRef, PropertyId};

use crate::system::SystemModel;

/// The `ProcessType` tagged value as a typed enum.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default)]
pub enum ProcessType {
    /// General-purpose control processing.
    #[default]
    General,
    /// Signal-processing workload.
    Dsp,
    /// Bit-level workload suitable for hardware acceleration.
    Hardware,
}

impl ProcessType {
    /// The tagged-value literal.
    pub fn literal(self) -> &'static str {
        match self {
            ProcessType::General => "general",
            ProcessType::Dsp => "dsp",
            ProcessType::Hardware => "hardware",
        }
    }

    /// Parses from the tagged-value literal.
    pub fn from_literal(text: &str) -> Option<ProcessType> {
        match text {
            "general" => Some(ProcessType::General),
            "dsp" => Some(ProcessType::Dsp),
            "hardware" => Some(ProcessType::Hardware),
            _ => None,
        }
    }
}

impl std::fmt::Display for ProcessType {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.literal())
    }
}

/// The `RealTimeType` tagged value as a typed enum.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default)]
pub enum RealTimeType {
    /// Hard real-time requirements.
    Hard,
    /// Soft real-time requirements.
    Soft,
    /// No real-time requirements.
    #[default]
    None,
}

impl RealTimeType {
    /// Parses from the tagged-value literal.
    pub fn from_literal(text: &str) -> Option<RealTimeType> {
        match text {
            "hard" => Some(RealTimeType::Hard),
            "soft" => Some(RealTimeType::Soft),
            "none" => Some(RealTimeType::None),
            _ => None,
        }
    }
}

/// One application process: a part stereotyped `«ApplicationProcess»`.
#[derive(Clone, PartialEq, Debug)]
pub struct ProcessInfo {
    /// The part element.
    pub part: PropertyId,
    /// The part's role name (e.g. `rca`).
    pub name: String,
    /// The functional component class it instantiates.
    pub component: ClassId,
    /// Execution priority.
    pub priority: i64,
    /// Declared process type.
    pub process_type: ProcessType,
    /// Declared real-time class.
    pub real_time: RealTimeType,
    /// Declared code memory requirement (bytes), if set.
    pub code_memory: Option<i64>,
    /// Declared data memory requirement (bytes), if set.
    pub data_memory: Option<i64>,
}

/// One process group: a class stereotyped `«ProcessGroup»` together with
/// its members (resolved through `«ProcessGrouping»` dependencies).
#[derive(Clone, PartialEq, Debug)]
pub struct GroupInfo {
    /// The group class.
    pub class: ClassId,
    /// Group name (e.g. `group1`).
    pub name: String,
    /// Whether the group membership is frozen.
    pub fixed: bool,
    /// The declared process type of the group.
    pub process_type: ProcessType,
    /// Member processes (parts), in dependency order.
    pub members: Vec<PropertyId>,
}

/// Read-only typed access to the application model.
#[derive(Clone, Copy, Debug)]
pub struct ApplicationView<'a> {
    system: &'a SystemModel,
}

impl<'a> ApplicationView<'a> {
    pub(crate) fn new(system: &'a SystemModel) -> Self {
        ApplicationView { system }
    }

    /// The top-level `«Application»` class, if one is stereotyped.
    pub fn top(&self) -> Option<ClassId> {
        let s = self.system;
        s.model
            .classes()
            .map(|(id, _)| id)
            .find(|&id| s.has(id, s.tut.application))
    }

    /// All `«ApplicationComponent»` classes.
    pub fn components(&self) -> Vec<ClassId> {
        let s = self.system;
        s.model
            .classes()
            .map(|(id, _)| id)
            .filter(|&id| s.has(id, s.tut.application_component))
            .collect()
    }

    /// All `«ApplicationProcess»` parts with their resolved parameters.
    pub fn processes(&self) -> Vec<ProcessInfo> {
        let s = self.system;
        s.model
            .properties()
            .filter(|(id, _)| s.has(*id, s.tut.application_process))
            .map(|(id, prop)| {
                let tag = |name: &str| s.tag_value(id, s.tut.application_process, name).cloned();
                ProcessInfo {
                    part: id,
                    name: prop.name().to_owned(),
                    component: prop.type_(),
                    priority: tag("Priority").and_then(|v| v.as_int()).unwrap_or(0),
                    process_type: tag("ProcessType")
                        .and_then(|v| v.as_str().and_then(ProcessType::from_literal))
                        .unwrap_or_default(),
                    real_time: tag("RealTimeType")
                        .and_then(|v| v.as_str().and_then(RealTimeType::from_literal))
                        .unwrap_or_default(),
                    code_memory: tag("CodeMemory").and_then(|v| v.as_int()),
                    data_memory: tag("DataMemory").and_then(|v| v.as_int()),
                }
            })
            .collect()
    }

    /// Looks up one process by part id.
    pub fn process(&self, part: PropertyId) -> Option<ProcessInfo> {
        self.processes().into_iter().find(|p| p.part == part)
    }

    /// All `«ProcessGroup»` classes with resolved membership.
    pub fn groups(&self) -> Vec<GroupInfo> {
        let s = self.system;
        s.model
            .classes()
            .filter(|(id, _)| s.has(*id, s.tut.process_group))
            .map(|(id, class)| {
                let members = self.members_of(id);
                GroupInfo {
                    class: id,
                    name: class.name().to_owned(),
                    fixed: s
                        .tag_value(id, s.tut.process_group, "Fixed")
                        .and_then(TagValue::as_bool)
                        .unwrap_or(false),
                    process_type: s
                        .tag_value(id, s.tut.process_group, "ProcessType")
                        .and_then(|v| v.as_str().and_then(ProcessType::from_literal))
                        .unwrap_or_default(),
                    members,
                }
            })
            .collect()
    }

    /// The member processes of `group` (through `«ProcessGrouping»`
    /// dependencies).
    pub fn members_of(&self, group: ClassId) -> Vec<PropertyId> {
        let s = self.system;
        s.model
            .dependencies()
            .filter(|(dep_id, dep)| {
                s.has(*dep_id, s.tut.process_grouping) && dep.supplier() == ElementRef::Class(group)
            })
            .filter_map(|(_, dep)| match dep.client() {
                ElementRef::Property(part) => Some(part),
                _ => None,
            })
            .collect()
    }

    /// The group a process belongs to, if any.
    pub fn group_of(&self, part: PropertyId) -> Option<ClassId> {
        let s = self.system;
        s.model
            .dependencies()
            .filter(|(dep_id, dep)| {
                s.has(*dep_id, s.tut.process_grouping) && dep.client() == ElementRef::Property(part)
            })
            .find_map(|(_, dep)| match dep.supplier() {
                ElementRef::Class(class) => Some(class),
                _ => None,
            })
    }

    /// The `«ProcessGrouping»` dependency of a process, if grouped.
    pub fn grouping_dependency(&self, part: PropertyId) -> Option<DependencyId> {
        let s = self.system;
        s.model
            .dependencies()
            .find(|(dep_id, dep)| {
                s.has(*dep_id, s.tut.process_grouping) && dep.client() == ElementRef::Property(part)
            })
            .map(|(id, _)| id)
    }

    /// Processes that belong to no group.
    pub fn ungrouped_processes(&self) -> Vec<PropertyId> {
        self.processes()
            .into_iter()
            .map(|p| p.part)
            .filter(|&part| self.group_of(part).is_none())
            .collect()
    }
}

/// Mutating helpers for building application models.
impl SystemModel {
    /// Creates a `«ProcessGroup»` class with the given parameters and
    /// returns it.
    ///
    /// # Panics
    ///
    /// Panics on profile errors, which indicate construction bugs (the
    /// class is freshly created so applications cannot clash).
    pub fn add_process_group(
        &mut self,
        name: &str,
        fixed: bool,
        process_type: super::application::ProcessType,
    ) -> ClassId {
        let class = self.model.add_class(name);
        self.apply_with(
            class,
            |t| t.process_group,
            [
                ("Fixed", TagValue::Bool(fixed)),
                ("ProcessType", TagValue::Enum(process_type.literal().into())),
            ],
        )
        .expect("fresh group class accepts the stereotype");
        class
    }

    /// Adds a `«ProcessGrouping»` dependency putting `process` into
    /// `group`.
    ///
    /// # Panics
    ///
    /// Panics on profile errors (construction bug).
    pub fn assign_to_group(&mut self, process: PropertyId, group: ClassId) -> DependencyId {
        let dep = self.model.add_dependency("grouping", process, group);
        self.apply(dep, |t| t.process_grouping)
            .expect("fresh dependency accepts the stereotype");
        dep
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tut_uml::statemachine::{StateMachine, Trigger};

    fn active(system: &mut SystemModel, name: &str) -> ClassId {
        let class = system.model.add_class(name);
        let sig = system.model.add_signal(format!("Sig{name}"));
        let port = system.model.add_port(class, "in");
        system.model.port_mut(port).add_provided(sig);
        let mut sm = StateMachine::new(format!("{name}Behavior"));
        let s = sm.add_state("S");
        sm.set_initial(s);
        sm.add_transition(s, s, Trigger::Signal(sig), None, vec![]);
        system.model.add_state_machine(class, sm);
        class
    }

    fn sample() -> (SystemModel, PropertyId, PropertyId, ClassId) {
        let mut s = SystemModel::new("S");
        let top = s.model.add_class("Proto");
        s.apply(top, |t| t.application).unwrap();
        let comp = active(&mut s, "Worker");
        s.apply(comp, |t| t.application_component).unwrap();
        let p1 = s.model.add_part(top, "w1", comp);
        let p2 = s.model.add_part(top, "w2", comp);
        for (p, prio) in [(p1, 5i64), (p2, 1i64)] {
            s.apply_with(
                p,
                |t| t.application_process,
                [
                    ("Priority", TagValue::Int(prio)),
                    ("ProcessType", TagValue::Enum("dsp".into())),
                ],
            )
            .unwrap();
        }
        let group = s.add_process_group("group1", true, ProcessType::Dsp);
        s.assign_to_group(p1, group);
        (s, p1, p2, group)
    }

    #[test]
    fn processes_resolve_parameters() {
        let (s, p1, _, _) = sample();
        let view = s.application();
        let procs = view.processes();
        assert_eq!(procs.len(), 2);
        let info = view.process(p1).unwrap();
        assert_eq!(info.priority, 5);
        assert_eq!(info.process_type, ProcessType::Dsp);
        assert_eq!(info.real_time, RealTimeType::None);
        assert_eq!(info.name, "w1");
    }

    #[test]
    fn groups_and_membership() {
        let (s, p1, p2, group) = sample();
        let view = s.application();
        let groups = view.groups();
        assert_eq!(groups.len(), 1);
        assert_eq!(groups[0].name, "group1");
        assert!(groups[0].fixed);
        assert_eq!(groups[0].process_type, ProcessType::Dsp);
        assert_eq!(groups[0].members, vec![p1]);
        assert_eq!(view.group_of(p1), Some(group));
        assert_eq!(view.group_of(p2), None);
        assert_eq!(view.ungrouped_processes(), vec![p2]);
        assert!(view.grouping_dependency(p1).is_some());
    }

    #[test]
    fn top_and_components() {
        let (s, ..) = sample();
        let view = s.application();
        assert_eq!(view.top(), s.model.find_class("Proto"));
        assert_eq!(view.components().len(), 1);
    }

    #[test]
    fn process_type_literals_round_trip() {
        for t in [
            ProcessType::General,
            ProcessType::Dsp,
            ProcessType::Hardware,
        ] {
            assert_eq!(ProcessType::from_literal(t.literal()), Some(t));
        }
        assert_eq!(ProcessType::from_literal("fpga"), None);
    }
}
