//! [`SystemModel`]: a UML model bundled with its TUT-Profile applications.

use tut_profile_core::{Applications, DiagnosticBag, ProfileError, StereotypeId, TagValue};
use tut_uml::ids::ElementRef;
use tut_uml::Model;

use crate::application::ApplicationView;
use crate::mapping::MappingView;
use crate::platform::PlatformView;
use crate::profile_def::TutProfile;

/// A complete TUT-Profile design: the UML model, its stereotype
/// applications, and the profile handles.
///
/// This is the value that flows through the whole tool chain — validation,
/// code generation, simulation, profiling, and exploration all take a
/// `&SystemModel`.
#[derive(Clone, PartialEq, Debug)]
pub struct SystemModel {
    /// The profile (stereotype handles + definitions).
    pub tut: TutProfile,
    /// The UML model.
    pub model: Model,
    /// The stereotype applications on `model`.
    pub apps: Applications,
}

impl SystemModel {
    /// Creates an empty system with a fresh TUT-Profile.
    pub fn new(model_name: impl Into<String>) -> SystemModel {
        SystemModel {
            tut: TutProfile::new(),
            model: Model::new(model_name),
            apps: Applications::new(),
        }
    }

    /// Wraps an existing model and application set.
    pub fn from_parts(model: Model, apps: Applications) -> SystemModel {
        SystemModel {
            tut: TutProfile::new(),
            model,
            apps,
        }
    }

    /// Applies a stereotype chosen from the profile, e.g.
    /// `system.apply(class, |tut| tut.application)`.
    ///
    /// # Errors
    ///
    /// Propagates [`ProfileError`] from the application (metaclass
    /// mismatch, double application).
    pub fn apply(
        &mut self,
        element: impl Into<ElementRef>,
        pick: impl FnOnce(&TutProfile) -> StereotypeId,
    ) -> Result<(), ProfileError> {
        let stereotype = pick(&self.tut);
        self.apps.apply(self.tut.profile(), element, stereotype)
    }

    /// Applies a stereotype and sets tagged values in one call.
    ///
    /// # Errors
    ///
    /// Propagates [`ProfileError`] from application or tag setting.
    pub fn apply_with(
        &mut self,
        element: impl Into<ElementRef>,
        pick: impl FnOnce(&TutProfile) -> StereotypeId,
        tags: impl IntoIterator<Item = (&'static str, TagValue)>,
    ) -> Result<(), ProfileError> {
        let stereotype = pick(&self.tut);
        self.apps
            .apply_with(self.tut.profile(), element, stereotype, tags)
    }

    /// Sets a tagged value on an already applied stereotype.
    ///
    /// # Errors
    ///
    /// Propagates [`ProfileError`] (unknown tag, type mismatch, not
    /// applied).
    pub fn set_tag(
        &mut self,
        element: impl Into<ElementRef>,
        pick: impl FnOnce(&TutProfile) -> StereotypeId,
        tag: &str,
        value: impl Into<TagValue>,
    ) -> Result<(), ProfileError> {
        let stereotype = pick(&self.tut);
        self.apps
            .set_tag(self.tut.profile(), element, stereotype, tag, value)
    }

    /// Reads a tagged value (explicit or default).
    pub fn tag_value(
        &self,
        element: impl Into<ElementRef>,
        stereotype: StereotypeId,
        tag: &str,
    ) -> Option<&TagValue> {
        self.apps
            .tag_value(self.tut.profile(), element, stereotype, tag)
    }

    /// True if the element carries the stereotype (or a specialisation).
    pub fn has(&self, element: impl Into<ElementRef>, stereotype: StereotypeId) -> bool {
        self.apps
            .has_stereotype(self.tut.profile(), element, stereotype)
    }

    /// The application-model view (§3.1).
    pub fn application(&self) -> ApplicationView<'_> {
        ApplicationView::new(self)
    }

    /// The platform-model view (§3.2).
    pub fn platform(&self) -> PlatformView<'_> {
        PlatformView::new(self)
    }

    /// The mapping view (§3.3).
    pub fn mapping(&self) -> MappingView<'_> {
        MappingView::new(self)
    }

    /// Serialises the model and its profile application to one XML
    /// document (the artefact the profiling tool parses).
    pub fn to_xml(&self) -> String {
        tut_profile_core::interchange::write_document(&self.model, self.tut.profile(), &self.apps)
    }

    /// Parses a system back from [`SystemModel::to_xml`] output.
    ///
    /// # Errors
    ///
    /// Propagates interchange errors.
    pub fn from_xml(text: &str) -> Result<SystemModel, ProfileError> {
        let tut = TutProfile::new();
        let (model, apps) = tut_profile_core::interchange::read_document(text, tut.profile())?;
        Ok(SystemModel { tut, model, apps })
    }

    /// The guillemet label of the first stereotype applied to `element`,
    /// for diagram rendering.
    pub fn stereotype_label(&self, element: ElementRef) -> Option<String> {
        self.apps
            .stereotypes_of(element)
            .first()
            .map(|a| self.tut.profile().get(a.stereotype).name().to_owned())
    }

    /// Runs UML well-formedness checks (including the action-language
    /// type checker) *and* the TUT-Profile design rules, returning every
    /// finding as one severity-sorted [`DiagnosticBag`].
    pub fn check(&self) -> DiagnosticBag {
        let mut bag = tut_uml::validate::check_model(&self.model);
        let rules = crate::rules::tut_profile_rules(&self.tut);
        bag.merge(rules.check_all(&self.model, self.tut.profile(), &self.apps));
        bag.sort();
        bag
    }

    /// Like [`SystemModel::check`] but rendered as one string per finding,
    /// `[severity] code: message (element)`.
    pub fn validate(&self) -> Vec<String> {
        self.check()
            .iter()
            .map(|d| {
                let mut line = format!("[{}] {}: {}", d.severity, d.code, d.message);
                if let Some(e) = &d.element {
                    line.push_str(&format!(" ({e})"));
                }
                line
            })
            .collect()
    }

    /// Like [`SystemModel::validate`] but only error-severity findings.
    pub fn validate_errors(&self) -> Vec<String> {
        self.check()
            .iter()
            .filter(|d| d.is_error())
            .map(|d| {
                let mut line = format!("[{}] {}: {}", d.severity, d.code, d.message);
                if let Some(e) = &d.element {
                    line.push_str(&format!(" ({e})"));
                }
                line
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn apply_and_tag_through_system() {
        let mut s = SystemModel::new("S");
        let c = s.model.add_class("App");
        s.apply_with(c, |t| t.application, [("Priority", TagValue::Int(3))])
            .unwrap();
        assert!(s.has(c, s.tut.application));
        assert_eq!(
            s.tag_value(c, s.tut.application, "Priority"),
            Some(&TagValue::Int(3))
        );
        // Default still resolves.
        assert_eq!(
            s.tag_value(c, s.tut.application, "RealTimeType"),
            Some(&TagValue::Enum("none".into()))
        );
    }

    #[test]
    fn xml_round_trip_preserves_system() {
        let mut s = SystemModel::new("S");
        let c = s.model.add_class("App");
        s.apply(c, |t| t.application).unwrap();
        s.set_tag(c, |t| t.application, "CodeMemory", 4096i64)
            .unwrap();
        let text = s.to_xml();
        let parsed = SystemModel::from_xml(&text).unwrap();
        assert_eq!(parsed.model, s.model);
        assert_eq!(parsed.apps, s.apps);
    }

    #[test]
    fn stereotype_label_for_diagrams() {
        let mut s = SystemModel::new("S");
        let c = s.model.add_class("App");
        assert_eq!(s.stereotype_label(c.into()), None);
        s.apply(c, |t| t.application).unwrap();
        assert_eq!(s.stereotype_label(c.into()), Some("Application".into()));
    }
}
