//! The TUT-Profile definition: every stereotype of Table 1 with the tagged
//! values of Tables 2 and 3, plus the HIBI specialisations of §4.2.

use tut_profile_core::{Profile, StereotypeId, TagType, TagValue};
use tut_uml::ids::Metaclass;

/// The enumeration literals of the `RealTimeType` tagged value.
pub const REAL_TIME_TYPES: [&str; 3] = ["hard", "soft", "none"];
/// The enumeration literals of the `ProcessType` tagged value.
pub const PROCESS_TYPES: [&str; 3] = ["general", "dsp", "hardware"];
/// The enumeration literals of the platform component `Type` tagged value.
pub const COMPONENT_TYPES: [&str; 3] = ["general", "dsp", "hw_accelerator"];
/// The enumeration literals of the `Arbitration` tagged value.
pub const ARBITRATION_SCHEMES: [&str; 3] = ["priority", "round-robin", "tdma"];

fn enum_of(literals: &[&str]) -> TagType {
    TagType::Enum(literals.iter().map(|s| (*s).to_owned()).collect())
}

/// The TUT-Profile with named handles to each stereotype.
///
/// The struct is cheap to build and clone; most code keeps one around next
/// to the model (see [`crate::SystemModel`]).
#[derive(Clone, PartialEq, Debug)]
pub struct TutProfile {
    profile: Profile,
    /// `«Application»` — top-level application class.
    pub application: StereotypeId,
    /// `«ApplicationComponent»` — functional application component (active
    /// class, has behaviour).
    pub application_component: StereotypeId,
    /// `«ApplicationProcess»` — instance of a functional application
    /// component.
    pub application_process: StereotypeId,
    /// `«ProcessGroup»` — group of application processes.
    pub process_group: StereotypeId,
    /// `«ProcessGrouping»` — dependency between an application process and
    /// a process group.
    pub process_grouping: StereotypeId,
    /// `«Platform»` — top-level platform class.
    pub platform: StereotypeId,
    /// `«PlatformComponent»` — defines features of a platform component.
    pub platform_component: StereotypeId,
    /// `«PlatformComponentInstance»` — instantiated platform component.
    pub platform_component_instance: StereotypeId,
    /// `«CommunicationWrapper»` — wrapper parameters of a communication
    /// agent.
    pub communication_wrapper: StereotypeId,
    /// `«CommunicationSegment»` — interconnection structure of
    /// communicating agents.
    pub communication_segment: StereotypeId,
    /// `«PlatformMapping»` — dependency between a process group and a
    /// platform component instance.
    pub platform_mapping: StereotypeId,
    /// `«HIBIWrapper»` — HIBI specialisation of `«CommunicationWrapper»`.
    pub hibi_wrapper: StereotypeId,
    /// `«HIBISegment»` — HIBI specialisation of `«CommunicationSegment»`.
    pub hibi_segment: StereotypeId,
}

impl TutProfile {
    /// Builds the complete TUT-Profile.
    pub fn new() -> TutProfile {
        let mut p = Profile::new("TUT-Profile");

        let application = p
            .stereotype("Application", Metaclass::Class)
            .describe("Top-level application class")
            .tag_full(
                "Priority",
                TagType::Int,
                Some(TagValue::Int(0)),
                "Execution priority of an application",
            )
            .tag_full(
                "CodeMemory",
                TagType::Int,
                None,
                "Required memory for application code",
            )
            .tag_full(
                "DataMemory",
                TagType::Int,
                None,
                "Required memory for application data",
            )
            .tag_full(
                "RealTimeType",
                enum_of(&REAL_TIME_TYPES),
                Some(TagValue::Enum("none".into())),
                "Type of real-time requirements (hard/soft/none)",
            )
            .finish();

        let application_component = p
            .stereotype("ApplicationComponent", Metaclass::Class)
            .describe("Functional application component (active class, has behavior)")
            .tag_full(
                "CodeMemory",
                TagType::Int,
                None,
                "Required memory for application component code",
            )
            .tag_full(
                "DataMemory",
                TagType::Int,
                None,
                "Required memory for application component data",
            )
            .tag_full(
                "RealTimeType",
                enum_of(&REAL_TIME_TYPES),
                Some(TagValue::Enum("none".into())),
                "Type of real-time requirements (hard/soft/none)",
            )
            .finish();

        let application_process = p
            .stereotype("ApplicationProcess", Metaclass::Property)
            .describe("Instance of a functional application component")
            .tag_full(
                "Priority",
                TagType::Int,
                Some(TagValue::Int(0)),
                "Execution priority of application process",
            )
            .tag_full(
                "CodeMemory",
                TagType::Int,
                None,
                "Required memory for application process code",
            )
            .tag_full(
                "DataMemory",
                TagType::Int,
                None,
                "Required memory for application process data",
            )
            .tag_full(
                "RealTimeType",
                enum_of(&REAL_TIME_TYPES),
                Some(TagValue::Enum("none".into())),
                "Type of real-time requirements (hard/soft/none)",
            )
            .tag_full(
                "ProcessType",
                enum_of(&PROCESS_TYPES),
                Some(TagValue::Enum("general".into())),
                "Type of process (general/dsp/hardware)",
            )
            .finish();

        let process_group = p
            .stereotype("ProcessGroup", Metaclass::Class)
            .describe("Group of application processes")
            .tag_full(
                "Fixed",
                TagType::Bool,
                Some(TagValue::Bool(false)),
                "Defines if the group is fixed (true/false)",
            )
            .tag_full(
                "ProcessType",
                enum_of(&PROCESS_TYPES),
                Some(TagValue::Enum("general".into())),
                "Type of processes in a group (general/dsp/hardware)",
            )
            .finish();

        let process_grouping = p
            .stereotype("ProcessGrouping", Metaclass::Dependency)
            .describe("Dependency between an application process and a process group")
            .tag_full(
                "Fixed",
                TagType::Bool,
                Some(TagValue::Bool(false)),
                "Defines if the grouping is fixed (true/false)",
            )
            .finish();

        let platform = p
            .stereotype("Platform", Metaclass::Class)
            .describe("Top-level platform class")
            .finish();

        let platform_component = p
            .stereotype("PlatformComponent", Metaclass::Class)
            .describe("Defines features of a platform component")
            .tag_full(
                "Type",
                enum_of(&COMPONENT_TYPES),
                Some(TagValue::Enum("general".into())),
                "Type of a component (general/dsp/hw accelerator)",
            )
            .tag_full("Area", TagType::Real, None, "Area of a component")
            .tag_full(
                "Power",
                TagType::Real,
                None,
                "Power consumption of a component",
            )
            .tag_full(
                "Frequency",
                TagType::Int,
                Some(TagValue::Int(50)),
                "Clock frequency (MHz) of a component (refinement, cf. §3.2)",
            )
            .finish();

        let platform_component_instance = p
            .stereotype("PlatformComponentInstance", Metaclass::Property)
            .describe("Instantiated platform component")
            .tag_full(
                "Priority",
                TagType::Int,
                Some(TagValue::Int(0)),
                "Execution priority of a component instance",
            )
            .tag_full(
                "ID",
                TagType::Int,
                None,
                "Unique ID of a component instance",
            )
            .tag_full(
                "IntMemory",
                TagType::Int,
                Some(TagValue::Int(65536)),
                "Amount of internal memory",
            )
            .finish();

        let communication_wrapper = p
            .stereotype("CommunicationWrapper", Metaclass::Class)
            .describe("Defines wrapper parameters of a communication agent")
            .tag_full("Address", TagType::Int, None, "Address of a wrapper")
            .tag_full(
                "BufferSize",
                TagType::Int,
                Some(TagValue::Int(8)),
                "Buffer size of a wrapper",
            )
            .tag_full(
                "MaxTime",
                TagType::Int,
                Some(TagValue::Int(16)),
                "Maximum time a wrapper can reserve the segment",
            )
            .finish();

        let communication_segment = p
            .stereotype("CommunicationSegment", Metaclass::Class)
            .describe("Interconnection structure of communicating agents")
            .tag_full(
                "DataWidth",
                TagType::Int,
                Some(TagValue::Int(32)),
                "Data width (in bits) of a communication segment",
            )
            .tag_full(
                "Frequency",
                TagType::Int,
                Some(TagValue::Int(50)),
                "Clock frequency of a communication segment",
            )
            .tag_full(
                "Arbitration",
                enum_of(&ARBITRATION_SCHEMES),
                Some(TagValue::Enum("priority".into())),
                "Arbitration scheme (e.g. priority or round-robin)",
            )
            .finish();

        let platform_mapping = p
            .stereotype("PlatformMapping", Metaclass::Dependency)
            .describe("Dependency between a process group and a platform component instance")
            .tag_full(
                "Fixed",
                TagType::Bool,
                Some(TagValue::Bool(false)),
                "Defines if the mapping is fixed (true/false)",
            )
            .finish();

        let hibi_wrapper = p
            .specialize("HIBIWrapper", communication_wrapper)
            .describe("HIBI bus wrapper (specialisation of CommunicationWrapper, §4.2)")
            .tag_full(
                "TxFifoDepth",
                TagType::Int,
                Some(TagValue::Int(4)),
                "Transmit FIFO depth in words",
            )
            .tag_full(
                "RxFifoDepth",
                TagType::Int,
                Some(TagValue::Int(4)),
                "Receive FIFO depth in words",
            )
            .finish();

        let hibi_segment = p
            .specialize("HIBISegment", communication_segment)
            .describe("HIBI bus segment (specialisation of CommunicationSegment, §4.2)")
            .tag_full(
                "TdmaSlots",
                TagType::Int,
                Some(TagValue::Int(0)),
                "Number of TDMA slots (0 disables the TDMA schedule)",
            )
            .finish();

        TutProfile {
            profile: p,
            application,
            application_component,
            application_process,
            process_group,
            process_grouping,
            platform,
            platform_component,
            platform_component_instance,
            communication_wrapper,
            communication_segment,
            platform_mapping,
            hibi_wrapper,
            hibi_segment,
        }
    }

    /// The underlying generic profile.
    pub fn profile(&self) -> &Profile {
        &self.profile
    }

    /// The Figure 3 hierarchy rendered as text: application and platform
    /// composition down to mapping.
    pub fn hierarchy(&self) -> String {
        let mut out = String::new();
        out.push_str("TUT-Profile hierarchy (Figure 3)\n");
        out.push_str("  \u{ab}Application\u{bb}\n");
        out.push_str("    --composition--> \u{ab}ApplicationComponent\u{bb}\n");
        out.push_str("      --instantiate--> \u{ab}ApplicationProcess\u{bb}\n");
        out.push_str("        --\u{ab}ProcessGrouping\u{bb}--> \u{ab}ProcessGroup\u{bb}\n");
        out.push_str(
            "          --\u{ab}PlatformMapping\u{bb}--> \u{ab}PlatformComponentInstance\u{bb}\n",
        );
        out.push_str("      <--instantiate-- \u{ab}PlatformComponent\u{bb}\n");
        out.push_str("    <--composition-- \u{ab}Platform\u{bb}\n");
        out.push_str("  communication: \u{ab}CommunicationSegment\u{bb} / \u{ab}CommunicationWrapper\u{bb}\n");
        out.push_str("    specialised: \u{ab}HIBISegment\u{bb} / \u{ab}HIBIWrapper\u{bb}\n");
        out
    }

    /// Ids of the eleven core stereotypes of Table 1 (without the HIBI
    /// specialisations), in the table's order.
    pub fn table1_order(&self) -> [StereotypeId; 11] {
        [
            self.application,
            self.application_component,
            self.application_process,
            self.process_group,
            self.process_grouping,
            self.platform,
            self.platform_component,
            self.platform_component_instance,
            self.communication_wrapper,
            self.communication_segment,
            self.platform_mapping,
        ]
    }
}

impl Default for TutProfile {
    fn default() -> Self {
        TutProfile::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profile_has_all_table1_stereotypes() {
        let tut = TutProfile::new();
        let p = tut.profile();
        for name in [
            "Application",
            "ApplicationComponent",
            "ApplicationProcess",
            "ProcessGroup",
            "ProcessGrouping",
            "Platform",
            "PlatformComponent",
            "PlatformComponentInstance",
            "CommunicationWrapper",
            "CommunicationSegment",
            "PlatformMapping",
            "HIBIWrapper",
            "HIBISegment",
        ] {
            assert!(p.find(name).is_some(), "missing stereotype {name}");
        }
        assert_eq!(p.len(), 13);
    }

    #[test]
    fn metaclasses_match_table1() {
        let tut = TutProfile::new();
        let p = tut.profile();
        assert_eq!(p.get(tut.application).extends(), Metaclass::Class);
        assert_eq!(
            p.get(tut.application_process).extends(),
            Metaclass::Property
        );
        assert_eq!(p.get(tut.process_grouping).extends(), Metaclass::Dependency);
        assert_eq!(p.get(tut.platform_mapping).extends(), Metaclass::Dependency);
        assert_eq!(
            p.get(tut.platform_component_instance).extends(),
            Metaclass::Property
        );
        assert_eq!(p.get(tut.hibi_segment).extends(), Metaclass::Class);
    }

    #[test]
    fn table2_tagged_values_present() {
        let tut = TutProfile::new();
        let p = tut.profile();
        for tag in ["Priority", "CodeMemory", "DataMemory", "RealTimeType"] {
            assert!(
                p.tag_def(tut.application, tag).is_some(),
                "Application::{tag}"
            );
        }
        for tag in [
            "Priority",
            "CodeMemory",
            "DataMemory",
            "RealTimeType",
            "ProcessType",
        ] {
            assert!(
                p.tag_def(tut.application_process, tag).is_some(),
                "ApplicationProcess::{tag}"
            );
        }
        assert!(p.tag_def(tut.process_group, "Fixed").is_some());
        assert!(p.tag_def(tut.process_grouping, "Fixed").is_some());
        // Application has no ProcessType.
        assert!(p.tag_def(tut.application, "ProcessType").is_none());
    }

    #[test]
    fn table3_tagged_values_present() {
        let tut = TutProfile::new();
        let p = tut.profile();
        for tag in ["Type", "Area", "Power"] {
            assert!(p.tag_def(tut.platform_component, tag).is_some());
        }
        for tag in ["Priority", "ID", "IntMemory"] {
            assert!(p.tag_def(tut.platform_component_instance, tag).is_some());
        }
        for tag in ["DataWidth", "Frequency", "Arbitration"] {
            assert!(p.tag_def(tut.communication_segment, tag).is_some());
        }
        for tag in ["Address", "BufferSize", "MaxTime"] {
            assert!(p.tag_def(tut.communication_wrapper, tag).is_some());
        }
    }

    #[test]
    fn hibi_specialisations_inherit() {
        let tut = TutProfile::new();
        let p = tut.profile();
        assert!(p.is_kind_of(tut.hibi_segment, tut.communication_segment));
        assert!(p.is_kind_of(tut.hibi_wrapper, tut.communication_wrapper));
        // Inherited + own tags visible.
        assert!(p.tag_def(tut.hibi_segment, "Arbitration").is_some());
        assert!(p.tag_def(tut.hibi_segment, "TdmaSlots").is_some());
        assert!(p.tag_def(tut.hibi_wrapper, "MaxTime").is_some());
        assert!(p.tag_def(tut.hibi_wrapper, "TxFifoDepth").is_some());
    }

    #[test]
    fn hierarchy_mentions_every_layer() {
        let tut = TutProfile::new();
        let h = tut.hierarchy();
        for token in [
            "Application",
            "ProcessGroup",
            "PlatformMapping",
            "HIBISegment",
        ] {
            assert!(h.contains(token), "hierarchy missing {token}");
        }
    }

    #[test]
    fn profile_definition_round_trips_through_xml() {
        let tut = TutProfile::new();
        let text = tut_profile_core::interchange::profile_to_xml(tut.profile());
        let parsed = tut_profile_core::interchange::profile_from_xml(&text).unwrap();
        assert_eq!(&parsed, tut.profile());
    }
}
