//! Typed view of the platform mapping (§3.3 of the paper).

use tut_profile_core::TagValue;
use tut_uml::ids::{ClassId, DependencyId, ElementRef, PropertyId};

use crate::system::SystemModel;

/// One `«PlatformMapping»` dependency: a process group mapped to a
/// platform component instance.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct MappingInfo {
    /// The dependency element.
    pub dependency: DependencyId,
    /// The mapped `«ProcessGroup»` class.
    pub group: ClassId,
    /// The target `«PlatformComponentInstance»` part.
    pub instance: PropertyId,
    /// Whether the mapping is fixed (profiling tools must not change it,
    /// §3.3).
    pub fixed: bool,
}

/// Read-only typed access to the mapping.
#[derive(Clone, Copy, Debug)]
pub struct MappingView<'a> {
    system: &'a SystemModel,
}

impl<'a> MappingView<'a> {
    pub(crate) fn new(system: &'a SystemModel) -> Self {
        MappingView { system }
    }

    /// All mappings, in dependency order.
    pub fn mappings(&self) -> Vec<MappingInfo> {
        let s = self.system;
        s.model
            .dependencies()
            .filter(|(id, _)| s.has(*id, s.tut.platform_mapping))
            .filter_map(|(id, dep)| {
                let (ElementRef::Class(group), ElementRef::Property(instance)) =
                    (dep.client(), dep.supplier())
                else {
                    return None;
                };
                Some(MappingInfo {
                    dependency: id,
                    group,
                    instance,
                    fixed: s
                        .tag_value(id, s.tut.platform_mapping, "Fixed")
                        .and_then(|v| v.as_bool())
                        .unwrap_or(false),
                })
            })
            .collect()
    }

    /// The platform instance a group is mapped to.
    pub fn instance_of(&self, group: ClassId) -> Option<PropertyId> {
        self.mappings()
            .into_iter()
            .find(|m| m.group == group)
            .map(|m| m.instance)
    }

    /// The groups mapped to one platform instance (several groups may
    /// share a processor, as group1 and group3 share processor1 in
    /// Figure 8).
    pub fn groups_on(&self, instance: PropertyId) -> Vec<ClassId> {
        self.mappings()
            .into_iter()
            .filter(|m| m.instance == instance)
            .map(|m| m.group)
            .collect()
    }

    /// The platform instance that will execute `process`, resolved through
    /// its group.
    pub fn instance_of_process(&self, process: PropertyId) -> Option<PropertyId> {
        let group = self.system.application().group_of(process)?;
        self.instance_of(group)
    }

    /// Groups with no mapping.
    pub fn unmapped_groups(&self) -> Vec<ClassId> {
        self.system
            .application()
            .groups()
            .into_iter()
            .map(|g| g.class)
            .filter(|&g| self.instance_of(g).is_none())
            .collect()
    }
}

/// Mutating helper for building mappings.
impl SystemModel {
    /// Adds a `«PlatformMapping»` dependency from `group` to `instance`.
    ///
    /// # Panics
    ///
    /// Panics on profile errors (construction bug).
    pub fn map_group(&mut self, group: ClassId, instance: PropertyId, fixed: bool) -> DependencyId {
        let dep = self.model.add_dependency("mapping", group, instance);
        self.apply_with(
            dep,
            |t| t.platform_mapping,
            [("Fixed", TagValue::Bool(fixed))],
        )
        .expect("fresh dependency accepts the stereotype");
        dep
    }

    /// Removes a mapping (deletes its stereotype applications; the bare
    /// dependency remains in the model, which mirrors how exploration
    /// tools rewrite mappings without touching the base model).
    pub fn unmap(&mut self, dependency: DependencyId) {
        self.apps.clear_element(dependency);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::application::ProcessType;
    use crate::platform::ComponentKind;

    fn sample() -> (SystemModel, ClassId, ClassId, PropertyId, PropertyId) {
        let mut s = SystemModel::new("S");
        // Application side.
        let top = s.model.add_class("App");
        s.apply(top, |t| t.application).unwrap();
        let comp = s.model.add_class("Worker");
        s.apply(comp, |t| t.application_component).unwrap();
        let proc1 = s.model.add_part(top, "p1", comp);
        s.apply(proc1, |t| t.application_process).unwrap();
        let g1 = s.add_process_group("group1", false, ProcessType::General);
        let g2 = s.add_process_group("group2", false, ProcessType::General);
        s.assign_to_group(proc1, g1);
        // Platform side.
        let platform = s.model.add_class("Plat");
        s.apply(platform, |t| t.platform).unwrap();
        let nios = s.add_platform_component("Nios", ComponentKind::General, 50, 1.0, 0.1);
        let cpu1 = s.add_platform_instance(platform, "cpu1", nios, 1, 0);
        let cpu2 = s.add_platform_instance(platform, "cpu2", nios, 2, 0);
        (s, g1, g2, cpu1, cpu2)
    }

    #[test]
    fn mapping_resolves() {
        let (mut s, g1, g2, cpu1, _) = sample();
        s.map_group(g1, cpu1, true);
        s.map_group(g2, cpu1, false);
        let view = s.mapping();
        let mappings = view.mappings();
        assert_eq!(mappings.len(), 2);
        assert!(mappings[0].fixed);
        assert!(!mappings[1].fixed);
        assert_eq!(view.instance_of(g1), Some(cpu1));
        assert_eq!(view.groups_on(cpu1), vec![g1, g2]);
        assert!(view.unmapped_groups().is_empty());
    }

    #[test]
    fn process_to_instance_resolution() {
        let (mut s, g1, _, cpu1, _) = sample();
        s.map_group(g1, cpu1, false);
        let proc1 = s.application().groups()[0].members[0];
        assert_eq!(s.mapping().instance_of_process(proc1), Some(cpu1));
    }

    #[test]
    fn unmapped_groups_listed() {
        let (mut s, g1, g2, cpu1, _) = sample();
        s.map_group(g1, cpu1, false);
        assert_eq!(s.mapping().unmapped_groups(), vec![g2]);
    }

    #[test]
    fn unmap_removes_mapping() {
        let (mut s, g1, _, cpu1, _) = sample();
        let dep = s.map_group(g1, cpu1, false);
        assert_eq!(s.mapping().mappings().len(), 1);
        s.unmap(dep);
        assert!(s.mapping().mappings().is_empty());
    }
}
