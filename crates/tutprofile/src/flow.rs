//! The TUT-Profile design and profiling flow (Figures 1 and 2 of the
//! paper), as a machine-readable description.
//!
//! The actual pipeline is wired together by the downstream crates
//! (`tut-codegen` → `tut-sim` → `tut-profiling`); this module names the
//! stages so reports, documentation, and the figure-reproduction binary
//! agree on terminology.

/// One stage of the Figure 2 design/profiling flow.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum FlowStage {
    /// UML 2.0 modelling with TUT-Profile (application, platform library,
    /// platform mapping).
    Modelling,
    /// Profile design-rule validation (the "strict rules", §2.2).
    Validation,
    /// Model parsing: extract process-group information from the XML form.
    ModelParsing,
    /// Automatic code generation (application C code).
    CodeGeneration,
    /// Compilation and linking against run-time libraries and custom
    /// functions.
    Compilation,
    /// Simulation producing the simulation log-file.
    Simulation,
    /// Profiling: combine the log-file with the process-group information.
    Profiling,
    /// Implementation: executable application on the target platform.
    Implementation,
}

impl FlowStage {
    /// All stages in flow order.
    pub const ALL: [FlowStage; 8] = [
        FlowStage::Modelling,
        FlowStage::Validation,
        FlowStage::ModelParsing,
        FlowStage::CodeGeneration,
        FlowStage::Compilation,
        FlowStage::Simulation,
        FlowStage::Profiling,
        FlowStage::Implementation,
    ];

    /// Short stage name as used in Figure 2.
    pub fn name(self) -> &'static str {
        match self {
            FlowStage::Modelling => "UML 2.0 with TUT-Profile",
            FlowStage::Validation => "Design-rule validation",
            FlowStage::ModelParsing => "Model parsing",
            FlowStage::CodeGeneration => "Code generation",
            FlowStage::Compilation => "Compilation and linking",
            FlowStage::Simulation => "Simulation",
            FlowStage::Profiling => "Profiling",
            FlowStage::Implementation => "Implementation",
        }
    }

    /// The artefact the stage produces.
    pub fn artefact(self) -> &'static str {
        match self {
            FlowStage::Modelling => "application / platform library / mapping models",
            FlowStage::Validation => "rule-violation report",
            FlowStage::ModelParsing => "process group information",
            FlowStage::CodeGeneration => "application C code",
            FlowStage::Compilation => "executable application",
            FlowStage::Simulation => "simulation log-file",
            FlowStage::Profiling => "profiling report",
            FlowStage::Implementation => "real-time embedded system",
        }
    }

    /// The crate of this repository implementing the stage.
    pub fn implemented_by(self) -> &'static str {
        match self {
            FlowStage::Modelling => "tut-uml + tut-profile",
            FlowStage::Validation => "tut-profile (rules)",
            FlowStage::ModelParsing => "tut-profiling (model stage)",
            FlowStage::CodeGeneration => "tut-codegen",
            FlowStage::Compilation => {
                "tut-codegen (emitted sources) / tut-sim (executable semantics)"
            }
            FlowStage::Simulation => "tut-sim",
            FlowStage::Profiling => "tut-profiling",
            FlowStage::Implementation => "tut-sim prototype execution",
        }
    }
}

impl std::fmt::Display for FlowStage {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Renders the Figure 2 flow as text.
pub fn render_flow() -> String {
    let mut out = String::from("TUT-Profile design and profiling flow (Figure 2)\n");
    for (i, stage) in FlowStage::ALL.iter().enumerate() {
        out.push_str(&format!(
            "  {}. {:<28} -> {:<38} [{}]\n",
            i + 1,
            stage.name(),
            stage.artefact(),
            stage.implemented_by()
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flow_has_eight_stages_in_order() {
        assert_eq!(FlowStage::ALL.len(), 8);
        assert_eq!(FlowStage::ALL[0], FlowStage::Modelling);
        assert_eq!(FlowStage::ALL[7], FlowStage::Implementation);
    }

    #[test]
    fn render_mentions_key_artefacts() {
        let text = render_flow();
        for token in [
            "simulation log-file",
            "profiling report",
            "application C code",
        ] {
            assert!(text.contains(token), "flow missing `{token}`");
        }
    }

    #[test]
    fn stages_name_their_crates() {
        assert!(FlowStage::Simulation.implemented_by().contains("tut-sim"));
        assert!(FlowStage::Profiling
            .implemented_by()
            .contains("tut-profiling"));
    }
}
