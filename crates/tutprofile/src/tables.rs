//! Renderers for the paper's Tables 1–3, generated from the live profile
//! definition (never hand-copied), so the implementation and the printed
//! tables cannot drift apart.

use tut_profile_core::StereotypeId;

use crate::profile_def::TutProfile;

fn pad(text: &str, width: usize) -> String {
    let mut s = text.to_owned();
    while s.chars().count() < width {
        s.push(' ');
    }
    s
}

/// Renders Table 1: the stereotype summary (name, extended metaclass,
/// description) for the eleven core stereotypes.
pub fn table1(tut: &TutProfile) -> String {
    let p = tut.profile();
    let mut out = String::new();
    out.push_str("Table 1. TUT-Profile stereotype summary.\n");
    out.push_str(&format!(
        "{} | {}\n",
        pad("Stereotype name (extended Metaclass)", 46),
        "Description"
    ));
    out.push_str(&format!("{}-+-{}\n", "-".repeat(46), "-".repeat(55)));
    for id in tut.table1_order() {
        let st = p.get(id);
        let head = format!("{} ({})", st.name(), st.extends().name());
        out.push_str(&format!("{} | {}\n", pad(&head, 46), st.description()));
    }
    out
}

fn tagged_value_rows(tut: &TutProfile, stereotypes: &[StereotypeId]) -> String {
    let p = tut.profile();
    let mut out = String::new();
    out.push_str(&format!(
        "{} | {}\n",
        pad("Tagged values", 14),
        "Description"
    ));
    out.push_str(&format!("{}-+-{}\n", "-".repeat(14), "-".repeat(60)));
    for &id in stereotypes {
        let st = p.get(id);
        out.push_str(&format!("Stereotype {}\n", st.guillemets()));
        for def in st.own_tags() {
            out.push_str(&format!("{} | {}\n", pad(&def.name, 14), def.description));
        }
    }
    out
}

/// Renders Table 2: tagged values of the application stereotypes.
pub fn table2(tut: &TutProfile) -> String {
    let mut out = String::from("Table 2. Tagged values of application stereotypes.\n");
    out.push_str(&tagged_value_rows(
        tut,
        &[
            tut.application,
            tut.application_component,
            tut.application_process,
            tut.process_group,
            tut.process_grouping,
        ],
    ));
    out
}

/// Renders Table 3: tagged values of the platform stereotypes.
pub fn table3(tut: &TutProfile) -> String {
    let mut out = String::from("Table 3. Tagged values of platform stereotypes.\n");
    out.push_str(&tagged_value_rows(
        tut,
        &[
            tut.platform_component,
            tut.platform_component_instance,
            tut.communication_segment,
            tut.communication_wrapper,
            tut.hibi_segment,
            tut.hibi_wrapper,
        ],
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_lists_all_eleven_rows() {
        let tut = TutProfile::new();
        let t = table1(&tut);
        for name in [
            "Application (Class)",
            "ApplicationComponent (Class)",
            "ApplicationProcess (Property)",
            "ProcessGroup (Class)",
            "ProcessGrouping (Dependency)",
            "Platform (Class)",
            "PlatformComponent (Class)",
            "PlatformComponentInstance (Property)",
            "CommunicationWrapper (Class)",
            "CommunicationSegment (Class)",
            "PlatformMapping (Dependency)",
        ] {
            assert!(t.contains(name), "table 1 missing `{name}`:\n{t}");
        }
    }

    #[test]
    fn table2_has_application_tags() {
        let tut = TutProfile::new();
        let t = table2(&tut);
        for token in [
            "\u{ab}Application\u{bb}",
            "Priority",
            "CodeMemory",
            "DataMemory",
            "RealTimeType",
            "ProcessType",
            "Fixed",
        ] {
            assert!(t.contains(token), "table 2 missing `{token}`");
        }
    }

    #[test]
    fn table3_has_platform_tags() {
        let tut = TutProfile::new();
        let t = table3(&tut);
        for token in [
            "Type",
            "Area",
            "Power",
            "ID",
            "IntMemory",
            "DataWidth",
            "Frequency",
            "Arbitration",
            "Address",
            "BufferSize",
            "MaxTime",
            "TdmaSlots",
        ] {
            assert!(t.contains(token), "table 3 missing `{token}`");
        }
    }
}
