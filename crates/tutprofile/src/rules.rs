//! The TUT-Profile design-rule catalogue.
//!
//! The paper defines "various stereotypes and strict rules how to use them"
//! (§2.2). This module encodes those rules as constraints over the model
//! and its stereotype applications; [`tut_profile_rules`] returns the full
//! catalogue as a [`ConstraintSet`].
//!
//! Each rule reports findings as [`Diagnostic`]s with a stable `E02xx` /
//! `W02xx` code (the constants below), the offending element's display
//! form, and the rule name as a note.

use tut_profile_core::constraint::FnConstraint;
use tut_profile_core::{Applications, ConstraintSet, Diagnostic, DiagnosticBag, Profile, Severity};
use tut_uml::ids::ElementRef;
use tut_uml::Model;

use crate::profile_def::TutProfile;

/// `application-top-unique`: at most one `«Application»` class.
pub const E_APPLICATION_TOP_UNIQUE: &str = "E0201";
/// `component-has-behaviour`: functional components are active with behaviour.
pub const E_COMPONENT_HAS_BEHAVIOUR: &str = "E0202";
/// `process-instantiates-component`: processes are typed by components.
pub const E_PROCESS_INSTANTIATES_COMPONENT: &str = "E0203";
/// `structural-components-passive`: non-component classes are passive.
pub const W_STRUCTURAL_COMPONENTS_PASSIVE: &str = "W0204";
/// `grouping-endpoints`: grouping runs process part → group class.
pub const E_GROUPING_ENDPOINTS: &str = "E0205";
/// `process-in-one-group`: a process belongs to at most one group.
pub const E_PROCESS_IN_ONE_GROUP: &str = "E0206";
/// `process-grouped`: every process belongs to some group.
pub const W_PROCESS_GROUPED: &str = "W0207";
/// `group-type-homogeneous`: member ProcessType matches the group's.
pub const W_GROUP_TYPE_HOMOGENEOUS: &str = "W0208";
/// `mapping-endpoints`: mapping runs group class → instance part.
pub const E_MAPPING_ENDPOINTS: &str = "E0209";
/// `group-mapped-once`: a group maps to more than one instance.
pub const E_GROUP_MAPPED_ONCE: &str = "E0210";
/// `group-mapped-once`: a group is not mapped at all.
pub const W_GROUP_UNMAPPED: &str = "W0210";
/// `instance-ids-unique`: instance `ID` tags are present and unique.
pub const E_INSTANCE_IDS_UNIQUE: &str = "E0211";
/// `hardware-group-on-accelerator`: hardware groups map to accelerators.
pub const W_HARDWARE_GROUP_ON_ACCELERATOR: &str = "W0212";
/// `wrapper-addresses-unique`: declared wrapper addresses are unique.
pub const W_WRAPPER_ADDRESSES_UNIQUE: &str = "W0213";
/// `instance-attached-to-segment`: instances reach a segment via a wrapper.
pub const W_INSTANCE_ATTACHED_TO_SEGMENT: &str = "W0214";
/// `instance-memory-fits`: mapped processes' memory fits the instance.
pub const E_INSTANCE_MEMORY_FITS: &str = "E0215";

fn finding(
    code: &'static str,
    rule: &str,
    severity: Severity,
    element: impl Into<Option<ElementRef>>,
    message: impl Into<String>,
) -> Diagnostic {
    let mut d = Diagnostic::new(severity, code, message).with_note(format!("rule: {rule}"));
    if let Some(e) = element.into() {
        d = d.with_element(e.to_string());
    }
    d
}

/// Builds the complete TUT-Profile rule catalogue.
///
/// Rules (E = error, W = warning):
///
/// 1.  E0201 `application-top-unique` — at most one `«Application»` class.
/// 2.  E0202 `component-has-behaviour` — every `«ApplicationComponent»`
///     class is active with a classifier behaviour.
/// 3.  E0203 `process-instantiates-component` — every
///     `«ApplicationProcess»` part is typed by an `«ApplicationComponent»`
///     class (only functional components can be instantiated as
///     processes, §3.1).
/// 4.  W0204 `structural-components-passive` — classes used as part types
///     in the application that are *not* `«ApplicationComponent»` must be
///     passive (structural components "do not have behavior", §3.1).
/// 5.  E0205 `grouping-endpoints` — `«ProcessGrouping»` dependencies run
///     from an `«ApplicationProcess»` part to a `«ProcessGroup»` class.
/// 6.  E0206 `process-in-one-group` — a process belongs to at most one
///     group.
/// 7.  W0207 `process-grouped` — every process belongs to some group
///     (needed before mapping).
/// 8.  W0208 `group-type-homogeneous` — member `ProcessType` matches the
///     group's declared `ProcessType`.
/// 9.  E0209 `mapping-endpoints` — `«PlatformMapping»` dependencies run
///     from a `«ProcessGroup»` class to a `«PlatformComponentInstance»`
///     part.
/// 10. E0210/W0210 `group-mapped-once` — a group is mapped to at most one
///     instance; W0210 when a group is unmapped.
/// 11. E0211 `instance-ids-unique` — `«PlatformComponentInstance»` `ID`
///     tags are present and unique.
/// 12. W0212 `hardware-group-on-accelerator` — groups with
///     `ProcessType = hardware` map to `hw_accelerator` components.
/// 13. W0213 `wrapper-addresses-unique` — `«CommunicationWrapper»`
///     addresses are unique where declared.
/// 14. W0214 `instance-attached-to-segment` — in a platform with
///     segments, every instance reaches a segment through a wrapper.
/// 15. E0215 `instance-memory-fits` — the `CodeMemory`+`DataMemory` of
///     every process mapped onto an instance (process tags, falling back
///     to the component's) fits the instance's `IntMemory`.
pub fn tut_profile_rules(tut: &TutProfile) -> ConstraintSet {
    let mut set = ConstraintSet::new();

    let t = tut.clone();
    set.push(FnConstraint::new(
        "application-top-unique",
        "at most one class carries \u{ab}Application\u{bb}",
        move |model: &Model, p: &Profile, apps: &Applications, out: &mut DiagnosticBag| {
            let tops: Vec<_> = model
                .classes()
                .map(|(id, _)| id)
                .filter(|&id| apps.has_stereotype(p, id, t.application))
                .collect();
            if tops.len() > 1 {
                for &extra in &tops[1..] {
                    out.push(finding(
                        E_APPLICATION_TOP_UNIQUE,
                        "application-top-unique",
                        Severity::Error,
                        ElementRef::Class(extra),
                        format!(
                            "`{}` is a second \u{ab}Application\u{bb} top-level class",
                            model.class(extra).name()
                        ),
                    ));
                }
            }
        },
    ));

    let t = tut.clone();
    set.push(FnConstraint::new(
        "component-has-behaviour",
        "\u{ab}ApplicationComponent\u{bb} classes are active with behaviour",
        move |model: &Model, p: &Profile, apps: &Applications, out: &mut DiagnosticBag| {
            for (id, class) in model.classes() {
                if apps.has_stereotype(p, id, t.application_component) && class.behavior().is_none()
                {
                    out.push(finding(
                        E_COMPONENT_HAS_BEHAVIOUR,
                        "component-has-behaviour",
                        Severity::Error,
                        ElementRef::Class(id),
                        format!(
                            "functional component `{}` has no classifier behaviour",
                            class.name()
                        ),
                    ));
                }
            }
        },
    ));

    let t = tut.clone();
    set.push(FnConstraint::new(
        "process-instantiates-component",
        "\u{ab}ApplicationProcess\u{bb} parts are typed by \u{ab}ApplicationComponent\u{bb} classes",
        move |model: &Model, p: &Profile, apps: &Applications, out: &mut DiagnosticBag| {
            for (id, prop) in model.properties() {
                if apps.has_stereotype(p, id, t.application_process)
                    && !apps.has_stereotype(p, prop.type_(), t.application_component)
                {
                    out.push(finding(
                        E_PROCESS_INSTANTIATES_COMPONENT,
                        "process-instantiates-component",
                        Severity::Error,
                        ElementRef::Property(id),
                        format!(
                            "process `{}` instantiates `{}`, which is not an \u{ab}ApplicationComponent\u{bb}",
                            prop.name(),
                            model.class(prop.type_()).name()
                        ),
                    ));
                }
            }
        },
    ));

    let t = tut.clone();
    set.push(FnConstraint::new(
        "structural-components-passive",
        "non-component classes in the application are passive",
        move |model: &Model, p: &Profile, apps: &Applications, out: &mut DiagnosticBag| {
            // Scope: classes reachable as part types under the «Application» top.
            let Some(top) = model
                .classes()
                .map(|(id, _)| id)
                .find(|&id| apps.has_stereotype(p, id, t.application))
            else {
                return;
            };
            let Ok(tree) = tut_uml::instances::InstanceTree::build(model, top) else {
                return;
            };
            for node in tree.nodes() {
                let class = model.class(node.class);
                if class.is_active()
                    && !apps.has_stereotype(p, node.class, t.application_component)
                {
                    out.push(finding(
                        W_STRUCTURAL_COMPONENTS_PASSIVE,
                        "structural-components-passive",
                        Severity::Warning,
                        ElementRef::Class(node.class),
                        format!(
                            "active class `{}` in the application is not stereotyped \u{ab}ApplicationComponent\u{bb}",
                            class.name()
                        ),
                    ));
                }
            }
        },
    ));

    let t = tut.clone();
    set.push(FnConstraint::new(
        "grouping-endpoints",
        "\u{ab}ProcessGrouping\u{bb} runs from a process part to a group class",
        move |model: &Model, p: &Profile, apps: &Applications, out: &mut DiagnosticBag| {
            for (id, dep) in model.dependencies() {
                if !apps.has_stereotype(p, id, t.process_grouping) {
                    continue;
                }
                let client_ok = matches!(dep.client(), ElementRef::Property(part)
                    if apps.has_stereotype(p, part, t.application_process));
                let supplier_ok = matches!(dep.supplier(), ElementRef::Class(class)
                    if apps.has_stereotype(p, class, t.process_group));
                if !client_ok || !supplier_ok {
                    out.push(finding(
                        E_GROUPING_ENDPOINTS,
                        "grouping-endpoints",
                        Severity::Error,
                        ElementRef::Dependency(id),
                        "grouping must run from an \u{ab}ApplicationProcess\u{bb} part to a \u{ab}ProcessGroup\u{bb} class",
                    ));
                }
            }
        },
    ));

    let t = tut.clone();
    set.push(FnConstraint::new(
        "process-in-one-group",
        "a process belongs to at most one group",
        move |model: &Model, p: &Profile, apps: &Applications, out: &mut DiagnosticBag| {
            for (part_id, prop) in model.properties() {
                if !apps.has_stereotype(p, part_id, t.application_process) {
                    continue;
                }
                let memberships = model
                    .dependencies()
                    .filter(|(dep_id, dep)| {
                        apps.has_stereotype(p, *dep_id, t.process_grouping)
                            && dep.client() == ElementRef::Property(part_id)
                    })
                    .count();
                if memberships > 1 {
                    out.push(finding(
                        E_PROCESS_IN_ONE_GROUP,
                        "process-in-one-group",
                        Severity::Error,
                        ElementRef::Property(part_id),
                        format!("process `{}` belongs to {memberships} groups", prop.name()),
                    ));
                }
            }
        },
    ));

    let t = tut.clone();
    set.push(FnConstraint::new(
        "process-grouped",
        "every process belongs to some group before mapping",
        move |model: &Model, p: &Profile, apps: &Applications, out: &mut DiagnosticBag| {
            for (part_id, prop) in model.properties() {
                if !apps.has_stereotype(p, part_id, t.application_process) {
                    continue;
                }
                let grouped = model.dependencies().any(|(dep_id, dep)| {
                    apps.has_stereotype(p, dep_id, t.process_grouping)
                        && dep.client() == ElementRef::Property(part_id)
                });
                if !grouped {
                    out.push(finding(
                        W_PROCESS_GROUPED,
                        "process-grouped",
                        Severity::Warning,
                        ElementRef::Property(part_id),
                        format!("process `{}` is not in any process group", prop.name()),
                    ));
                }
            }
        },
    ));

    let t = tut.clone();
    set.push(FnConstraint::new(
        "group-type-homogeneous",
        "member ProcessType matches the group's ProcessType",
        move |model: &Model, p: &Profile, apps: &Applications, out: &mut DiagnosticBag| {
            for (dep_id, dep) in model.dependencies() {
                if !apps.has_stereotype(p, dep_id, t.process_grouping) {
                    continue;
                }
                let (ElementRef::Property(part), ElementRef::Class(group)) =
                    (dep.client(), dep.supplier())
                else {
                    continue;
                };
                let part_type = apps
                    .tag_value(p, part, t.application_process, "ProcessType")
                    .and_then(|v| v.as_str().map(str::to_owned));
                let group_type = apps
                    .tag_value(p, group, t.process_group, "ProcessType")
                    .and_then(|v| v.as_str().map(str::to_owned));
                if let (Some(pt), Some(gt)) = (part_type, group_type) {
                    if pt != gt {
                        out.push(finding(
                            W_GROUP_TYPE_HOMOGENEOUS,
                            "group-type-homogeneous",
                            Severity::Warning,
                            ElementRef::Dependency(dep_id),
                            format!(
                                "process `{}` is `{pt}` but group `{}` is `{gt}`",
                                model.property(part).name(),
                                model.class(group).name()
                            ),
                        ));
                    }
                }
            }
        },
    ));

    let t = tut.clone();
    set.push(FnConstraint::new(
        "mapping-endpoints",
        "\u{ab}PlatformMapping\u{bb} runs from a group class to an instance part",
        move |model: &Model, p: &Profile, apps: &Applications, out: &mut DiagnosticBag| {
            for (id, dep) in model.dependencies() {
                if !apps.has_stereotype(p, id, t.platform_mapping) {
                    continue;
                }
                let client_ok = matches!(dep.client(), ElementRef::Class(class)
                    if apps.has_stereotype(p, class, t.process_group));
                let supplier_ok = matches!(dep.supplier(), ElementRef::Property(part)
                    if apps.has_stereotype(p, part, t.platform_component_instance));
                if !client_ok || !supplier_ok {
                    out.push(finding(
                        E_MAPPING_ENDPOINTS,
                        "mapping-endpoints",
                        Severity::Error,
                        ElementRef::Dependency(id),
                        "mapping must run from a \u{ab}ProcessGroup\u{bb} class to a \u{ab}PlatformComponentInstance\u{bb} part",
                    ));
                }
            }
        },
    ));

    let t = tut.clone();
    set.push(FnConstraint::new(
        "group-mapped-once",
        "each group maps to exactly one platform instance",
        move |model: &Model, p: &Profile, apps: &Applications, out: &mut DiagnosticBag| {
            for (group_id, class) in model.classes() {
                if !apps.has_stereotype(p, group_id, t.process_group) {
                    continue;
                }
                let mappings = model
                    .dependencies()
                    .filter(|(dep_id, dep)| {
                        apps.has_stereotype(p, *dep_id, t.platform_mapping)
                            && dep.client() == ElementRef::Class(group_id)
                    })
                    .count();
                if mappings > 1 {
                    out.push(finding(
                        E_GROUP_MAPPED_ONCE,
                        "group-mapped-once",
                        Severity::Error,
                        ElementRef::Class(group_id),
                        format!("group `{}` has {mappings} mappings", class.name()),
                    ));
                } else if mappings == 0 {
                    out.push(finding(
                        W_GROUP_UNMAPPED,
                        "group-mapped-once",
                        Severity::Warning,
                        ElementRef::Class(group_id),
                        format!("group `{}` is not mapped to any instance", class.name()),
                    ));
                }
            }
        },
    ));

    let t = tut.clone();
    set.push(FnConstraint::new(
        "instance-ids-unique",
        "platform instance IDs are present and unique",
        move |model: &Model, p: &Profile, apps: &Applications, out: &mut DiagnosticBag| {
            let mut seen: std::collections::HashMap<i64, String> = Default::default();
            for (id, prop) in model.properties() {
                if !apps.has_stereotype(p, id, t.platform_component_instance) {
                    continue;
                }
                match apps
                    .tag_value(p, id, t.platform_component_instance, "ID")
                    .and_then(|v| v.as_int())
                {
                    Some(instance_id) => {
                        if let Some(previous) = seen.insert(instance_id, prop.name().to_owned()) {
                            out.push(finding(
                                E_INSTANCE_IDS_UNIQUE,
                                "instance-ids-unique",
                                Severity::Error,
                                ElementRef::Property(id),
                                format!(
                                    "instance `{}` reuses ID {instance_id} of `{previous}`",
                                    prop.name()
                                ),
                            ));
                        }
                    }
                    None => out.push(finding(
                        E_INSTANCE_IDS_UNIQUE,
                        "instance-ids-unique",
                        Severity::Error,
                        ElementRef::Property(id),
                        format!("instance `{}` has no ID tagged value", prop.name()),
                    )),
                }
            }
        },
    ));

    let t = tut.clone();
    set.push(FnConstraint::new(
        "hardware-group-on-accelerator",
        "hardware groups map to hw_accelerator components",
        move |model: &Model, p: &Profile, apps: &Applications, out: &mut DiagnosticBag| {
            for (dep_id, dep) in model.dependencies() {
                if !apps.has_stereotype(p, dep_id, t.platform_mapping) {
                    continue;
                }
                let (ElementRef::Class(group), ElementRef::Property(instance)) =
                    (dep.client(), dep.supplier())
                else {
                    continue;
                };
                let group_is_hw = apps
                    .tag_value(p, group, t.process_group, "ProcessType")
                    .and_then(|v| v.as_str().map(|s| s == "hardware"))
                    .unwrap_or(false);
                if !group_is_hw {
                    continue;
                }
                let component = model.property(instance).type_();
                let comp_is_acc = apps
                    .tag_value(p, component, t.platform_component, "Type")
                    .and_then(|v| v.as_str().map(|s| s == "hw_accelerator"))
                    .unwrap_or(false);
                if !comp_is_acc {
                    out.push(finding(
                        W_HARDWARE_GROUP_ON_ACCELERATOR,
                        "hardware-group-on-accelerator",
                        Severity::Warning,
                        ElementRef::Dependency(dep_id),
                        format!(
                            "hardware group `{}` is mapped to non-accelerator `{}`",
                            model.class(group).name(),
                            model.property(instance).name()
                        ),
                    ));
                }
            }
        },
    ));

    let t = tut.clone();
    set.push(FnConstraint::new(
        "wrapper-addresses-unique",
        "declared wrapper addresses are unique",
        move |model: &Model, p: &Profile, apps: &Applications, out: &mut DiagnosticBag| {
            let mut seen: std::collections::HashMap<i64, String> = Default::default();
            for (id, class) in model.classes() {
                if !apps.has_stereotype(p, id, t.communication_wrapper) {
                    continue;
                }
                if let Some(address) = apps
                    .tag_value(p, id, t.communication_wrapper, "Address")
                    .and_then(|v| v.as_int())
                {
                    if let Some(previous) = seen.insert(address, class.name().to_owned()) {
                        out.push(finding(
                            W_WRAPPER_ADDRESSES_UNIQUE,
                            "wrapper-addresses-unique",
                            Severity::Warning,
                            ElementRef::Class(id),
                            format!(
                                "wrapper `{}` reuses address {address} of `{previous}`",
                                class.name()
                            ),
                        ));
                    }
                }
            }
        },
    ));

    let t = tut.clone();
    set.push(FnConstraint::new(
        "instance-attached-to-segment",
        "every instance reaches a communication segment",
        move |model: &Model, _p: &Profile, apps: &Applications, out: &mut DiagnosticBag| {
            // Only meaningful when the platform declares segments at all.
            let system = crate::system::SystemModel {
                tut: t.clone(),
                model: model.clone(),
                apps: apps.clone(),
            };
            let view = system.platform();
            if view.segments().is_empty() {
                return;
            }
            let attached: std::collections::HashSet<_> =
                view.attachments().into_iter().map(|a| a.pe).collect();
            for info in view.instances() {
                if !attached.contains(&info.part) {
                    out.push(finding(
                        W_INSTANCE_ATTACHED_TO_SEGMENT,
                        "instance-attached-to-segment",
                        Severity::Warning,
                        ElementRef::Property(info.part),
                        format!(
                            "instance `{}` is not attached to any segment through a wrapper",
                            info.name
                        ),
                    ));
                }
            }
        },
    ));

    let t = tut.clone();
    set.push(FnConstraint::new(
        "instance-memory-fits",
        "mapped processes' Code+DataMemory fits the instance's IntMemory",
        move |model: &Model, _p: &Profile, apps: &Applications, out: &mut DiagnosticBag| {
            let system = crate::system::SystemModel {
                tut: t.clone(),
                model: model.clone(),
                apps: apps.clone(),
            };
            let app = system.application();
            let mapping = system.mapping();
            for instance in system.platform().instances() {
                let mut required: i64 = 0;
                for group in mapping.groups_on(instance.part) {
                    for member in app.members_of(group) {
                        let Some(info) = app.process(member) else { continue };
                        // Process-level tags win; fall back to the
                        // component's declaration.
                        let comp_tag = |tag: &str| {
                            apps.tag_value(_p, info.component, t.application_component, tag)
                                .and_then(|v| v.as_int())
                        };
                        required += info
                            .code_memory
                            .or_else(|| comp_tag("CodeMemory"))
                            .unwrap_or(0);
                        required += info
                            .data_memory
                            .or_else(|| comp_tag("DataMemory"))
                            .unwrap_or(0);
                    }
                }
                if required > instance.int_memory {
                    out.push(finding(
                        E_INSTANCE_MEMORY_FITS,
                        "instance-memory-fits",
                        Severity::Error,
                        ElementRef::Property(instance.part),
                        format!(
                            "instance `{}` has {} bytes of internal memory but its processes need {required}",
                            instance.name, instance.int_memory
                        ),
                    ));
                }
            }
        },
    ));

    set
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::application::ProcessType;
    use crate::platform::ComponentKind;
    use crate::system::SystemModel;
    use tut_profile_core::TagValue;

    fn codes(findings: &DiagnosticBag) -> Vec<&'static str> {
        findings.iter().map(|d| d.code).collect()
    }

    fn check(system: &SystemModel) -> DiagnosticBag {
        tut_profile_rules(&system.tut).check_all(&system.model, system.tut.profile(), &system.apps)
    }

    #[test]
    fn catalogue_has_all_rules() {
        let tut = TutProfile::new();
        let set = tut_profile_rules(&tut);
        assert_eq!(set.len(), 15);
    }

    #[test]
    fn memory_overflow_flagged() {
        let mut s = SystemModel::new("S");
        let top = s.model.add_class("Top");
        s.apply(top, |t| t.application).unwrap();
        let comp = s.model.add_class("Big");
        s.apply(comp, |t| t.application_component).unwrap();
        let part = s.model.add_part(top, "big", comp);
        s.apply_with(
            part,
            |t| t.application_process,
            [
                ("CodeMemory", TagValue::Int(60_000)),
                ("DataMemory", TagValue::Int(20_000)),
            ],
        )
        .unwrap();
        let g = s.add_process_group("g", false, ProcessType::General);
        s.assign_to_group(part, g);
        let platform = s.model.add_class("P");
        s.apply(platform, |t| t.platform).unwrap();
        let nios = s.add_platform_component("Nios", ComponentKind::General, 50, 1.0, 0.1);
        let cpu = s.add_platform_instance(platform, "cpu1", nios, 1, 0);
        // Default IntMemory is 65536 < 80000 required.
        s.map_group(g, cpu, false);
        assert!(codes(&check(&s)).contains(&E_INSTANCE_MEMORY_FITS));

        // Raising IntMemory clears the violation.
        s.set_tag(
            cpu,
            |t| t.platform_component_instance,
            "IntMemory",
            128 * 1024i64,
        )
        .unwrap();
        assert!(!codes(&check(&s)).contains(&E_INSTANCE_MEMORY_FITS));
    }

    #[test]
    fn two_application_tops_flagged() {
        let mut s = SystemModel::new("S");
        let a = s.model.add_class("A");
        let b = s.model.add_class("B");
        s.apply(a, |t| t.application).unwrap();
        s.apply(b, |t| t.application).unwrap();
        assert!(codes(&check(&s)).contains(&E_APPLICATION_TOP_UNIQUE));
    }

    #[test]
    fn behaviourless_component_flagged() {
        let mut s = SystemModel::new("S");
        let c = s.model.add_class("C");
        s.apply(c, |t| t.application_component).unwrap();
        assert!(codes(&check(&s)).contains(&E_COMPONENT_HAS_BEHAVIOUR));
    }

    #[test]
    fn process_typed_by_plain_class_flagged() {
        let mut s = SystemModel::new("S");
        let top = s.model.add_class("Top");
        let plain = s.model.add_class("Plain");
        let part = s.model.add_part(top, "p", plain);
        s.apply(part, |t| t.application_process).unwrap();
        assert!(codes(&check(&s)).contains(&E_PROCESS_INSTANTIATES_COMPONENT));
    }

    #[test]
    fn double_grouping_flagged() {
        let mut s = SystemModel::new("S");
        let top = s.model.add_class("Top");
        let comp = s.model.add_class("C");
        s.apply(comp, |t| t.application_component).unwrap();
        let part = s.model.add_part(top, "p", comp);
        s.apply(part, |t| t.application_process).unwrap();
        let g1 = s.add_process_group("g1", false, ProcessType::General);
        let g2 = s.add_process_group("g2", false, ProcessType::General);
        s.assign_to_group(part, g1);
        s.assign_to_group(part, g2);
        assert!(codes(&check(&s)).contains(&E_PROCESS_IN_ONE_GROUP));
    }

    #[test]
    fn ungrouped_process_warned() {
        let mut s = SystemModel::new("S");
        let top = s.model.add_class("Top");
        let comp = s.model.add_class("C");
        s.apply(comp, |t| t.application_component).unwrap();
        let part = s.model.add_part(top, "p", comp);
        s.apply(part, |t| t.application_process).unwrap();
        let findings = check(&s);
        let w = findings
            .iter()
            .find(|d| d.code == W_PROCESS_GROUPED)
            .unwrap();
        assert_eq!(w.severity, Severity::Warning);
        assert!(w.notes.iter().any(|n| n.contains("process-grouped")));
        assert!(w.element.is_some());
    }

    #[test]
    fn heterogeneous_group_warned() {
        let mut s = SystemModel::new("S");
        let top = s.model.add_class("Top");
        let comp = s.model.add_class("C");
        s.apply(comp, |t| t.application_component).unwrap();
        let part = s.model.add_part(top, "p", comp);
        s.apply_with(
            part,
            |t| t.application_process,
            [("ProcessType", TagValue::Enum("hardware".into()))],
        )
        .unwrap();
        let g = s.add_process_group("g", false, ProcessType::General);
        s.assign_to_group(part, g);
        assert!(codes(&check(&s)).contains(&W_GROUP_TYPE_HOMOGENEOUS));
    }

    #[test]
    fn duplicate_instance_ids_flagged() {
        let mut s = SystemModel::new("S");
        let platform = s.model.add_class("P");
        s.apply(platform, |t| t.platform).unwrap();
        let nios = s.add_platform_component("Nios", ComponentKind::General, 50, 1.0, 0.1);
        s.add_platform_instance(platform, "cpu1", nios, 7, 0);
        s.add_platform_instance(platform, "cpu2", nios, 7, 0);
        assert!(codes(&check(&s)).contains(&E_INSTANCE_IDS_UNIQUE));
    }

    #[test]
    fn double_mapping_flagged() {
        let mut s = SystemModel::new("S");
        let g = s.add_process_group("g", false, ProcessType::General);
        let platform = s.model.add_class("P");
        s.apply(platform, |t| t.platform).unwrap();
        let nios = s.add_platform_component("Nios", ComponentKind::General, 50, 1.0, 0.1);
        let cpu1 = s.add_platform_instance(platform, "cpu1", nios, 1, 0);
        let cpu2 = s.add_platform_instance(platform, "cpu2", nios, 2, 0);
        s.map_group(g, cpu1, false);
        s.map_group(g, cpu2, false);
        assert!(codes(&check(&s)).contains(&E_GROUP_MAPPED_ONCE));
    }

    #[test]
    fn hardware_group_on_cpu_warned() {
        let mut s = SystemModel::new("S");
        let g = s.add_process_group("g", false, ProcessType::Hardware);
        let platform = s.model.add_class("P");
        s.apply(platform, |t| t.platform).unwrap();
        let nios = s.add_platform_component("Nios", ComponentKind::General, 50, 1.0, 0.1);
        let cpu1 = s.add_platform_instance(platform, "cpu1", nios, 1, 0);
        s.map_group(g, cpu1, false);
        assert!(codes(&check(&s)).contains(&W_HARDWARE_GROUP_ON_ACCELERATOR));
    }

    #[test]
    fn clean_minimal_system_passes() {
        let mut s = SystemModel::new("S");
        let top = s.model.add_class("Top");
        s.apply(top, |t| t.application).unwrap();
        let findings = check(&s);
        assert!(!findings.has_errors(), "unexpected errors: {findings}");
    }
}
