//! Demand-driven memoized query engine for the TUT-Profile front end.
//!
//! The paper's Figure-2 flow (UML model → profile application →
//! well-formedness → profile rules → code generation → simulation setup)
//! is decomposed into *queries*: pure functions keyed by an FNV-1a
//! content fingerprint of their inputs. A [`QueryDb`] memoizes query
//! results in memory, counts hits/misses/recomputes per stage, emits
//! `query.<stage>` frames into the `tut-trace` self-profiler whenever a
//! query actually executes, and can persist byte-valued results to disk
//! through `tut-store`'s checksummed journal so a fresh process can warm
//! itself from a previous run.
//!
//! Keys are *content* hashes, never identities: two documents with the
//! same bytes share every cached result, and an edit that is later
//! reverted falls back onto the original cache entries.

use std::any::Any;
use std::collections::{HashMap, HashSet};
use std::path::Path;
use std::rc::Rc;

use tut_store::journal::MAX_RECORD_LEN;
use tut_store::{JobHasher, Journal};
use tut_trace::perf;

/// A 64-bit content fingerprint used as a query key component.
///
/// Whole-document and segment texts run through [`Fp::of_bytes`], a
/// word-at-a-time FNV variant (eight input bytes per multiply, with a
/// length prefix and a final avalanche) — roughly 6x faster than the
/// byte-at-a-time `JobHasher` on the ~60 KiB documents the checker
/// hashes on every keystroke. Key *composition* still goes through
/// [`FpBuilder`]/`JobHasher`, whose inputs are tiny.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct Fp(pub u64);

impl Fp {
    /// Fingerprint reserved for "input absent" (e.g. a model without a
    /// `profileApplication` element).
    pub const ABSENT: Fp = Fp(0);

    /// Fingerprints a string.
    pub fn of_str(text: &str) -> Fp {
        Fp::of_bytes(text.as_bytes())
    }

    /// Fingerprints raw bytes.
    pub fn of_bytes(bytes: &[u8]) -> Fp {
        const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const PRIME: u64 = 0x0000_0100_0000_01b3;
        // The length prefix disambiguates trailing-zero padding in the
        // final partial word.
        let mut h = (OFFSET ^ bytes.len() as u64).wrapping_mul(PRIME);
        let mut chunks = bytes.chunks_exact(8);
        for c in &mut chunks {
            let word = u64::from_le_bytes(c.try_into().unwrap());
            h = (h ^ word).wrapping_mul(PRIME);
        }
        let mut tail = 0u64;
        for (i, &b) in chunks.remainder().iter().enumerate() {
            tail |= u64::from(b) << (8 * i);
        }
        h = (h ^ tail).wrapping_mul(PRIME);
        // Final avalanche so low-entropy tails still spread over all
        // 64 bits (the multiply alone mixes upward only).
        h ^= h >> 33;
        h = h.wrapping_mul(0xff51_afd7_ed55_8ccd);
        h ^= h >> 33;
        Fp(h)
    }

    /// Combines several fingerprints into one (order-sensitive).
    pub fn combine(parts: &[Fp]) -> Fp {
        let mut h = JobHasher::new();
        for p in parts {
            h.write_u64(p.0);
        }
        Fp(h.finish())
    }
}

/// Incremental builder for heterogeneous query keys.
pub struct FpBuilder(JobHasher);

impl FpBuilder {
    pub fn new() -> FpBuilder {
        FpBuilder(JobHasher::new())
    }

    pub fn str(mut self, s: &str) -> FpBuilder {
        self.0.write_str(s);
        self
    }

    pub fn u64(mut self, v: u64) -> FpBuilder {
        self.0.write_u64(v);
        self
    }

    pub fn fp(mut self, f: Fp) -> FpBuilder {
        self.0.write_u64(f.0);
        self
    }

    pub fn finish(self) -> Fp {
        Fp(self.0.finish())
    }
}

impl Default for FpBuilder {
    fn default() -> Self {
        FpBuilder::new()
    }
}

/// Interned handle for a pipeline stage (`parse_xml`, `wf_behavior`, …).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct StageId(u32);

/// Hit/miss/recompute counters for one stage.
#[derive(Clone, Debug, Default)]
pub struct StageStats {
    pub name: String,
    /// Lookups answered from the memo table or the disk layer.
    pub hits: u64,
    /// Lookups that had to execute the query.
    pub misses: u64,
    /// The subset of misses where the stage had already executed in an
    /// earlier run (or for this exact key before): downstream work that
    /// an edit genuinely invalidated.
    pub recomputes: u64,
}

/// A snapshot of all per-stage counters.
#[derive(Clone, Debug, Default)]
pub struct CacheStats {
    pub stages: Vec<StageStats>,
}

impl CacheStats {
    pub fn total_hits(&self) -> u64 {
        self.stages.iter().map(|s| s.hits).sum()
    }

    pub fn total_misses(&self) -> u64 {
        self.stages.iter().map(|s| s.misses).sum()
    }

    pub fn total_recomputes(&self) -> u64 {
        self.stages.iter().map(|s| s.recomputes).sum()
    }

    /// Hit percentage over all lookups (100.0 when nothing was looked
    /// up, which only happens before the first query runs).
    pub fn hit_rate(&self) -> f64 {
        let hits = self.total_hits();
        let total = hits + self.total_misses();
        if total == 0 {
            100.0
        } else {
            hits as f64 * 100.0 / total as f64
        }
    }

    /// Counter deltas since an earlier snapshot of the same database.
    ///
    /// Stages are matched positionally; stages interned after the
    /// earlier snapshot diff against zero.
    pub fn since(&self, earlier: &CacheStats) -> CacheStats {
        let stages = self
            .stages
            .iter()
            .enumerate()
            .map(|(i, s)| {
                let (h0, m0, r0) = earlier
                    .stages
                    .get(i)
                    .map(|e| (e.hits, e.misses, e.recomputes))
                    .unwrap_or((0, 0, 0));
                StageStats {
                    name: s.name.clone(),
                    hits: s.hits - h0,
                    misses: s.misses - m0,
                    recomputes: s.recomputes - r0,
                }
            })
            .collect();
        CacheStats { stages }
    }

    /// Multi-line human rendering; the first line carries the totals and
    /// the `hit rate NN.N%` figure scripts grep for.
    pub fn render(&self) -> String {
        let mut out = format!(
            "cache stats: {} hits, {} misses ({} recomputed), hit rate {:.1}%\n",
            self.total_hits(),
            self.total_misses(),
            self.total_recomputes(),
            self.hit_rate()
        );
        let width = self
            .stages
            .iter()
            .filter(|s| s.hits + s.misses > 0)
            .map(|s| s.name.len())
            .max()
            .unwrap_or(0);
        for s in &self.stages {
            if s.hits + s.misses == 0 {
                continue;
            }
            out.push_str(&format!(
                "  {:w$}  {:>5} hits  {:>5} misses  {:>5} recomputed\n",
                s.name,
                s.hits,
                s.misses,
                s.recomputes,
                w = width
            ));
        }
        out
    }
}

struct StageData {
    name: &'static str,
    name_fp: u64,
    label: perf::Label,
    hits: u64,
    misses: u64,
    recomputes: u64,
    /// Whether this stage executed in a generation before the current
    /// one (used to classify misses as recomputes).
    ran_before: Option<u64>,
    /// Every key this stage has ever executed for.
    seen: HashSet<u64>,
}

struct Entry {
    value: Rc<dyn Any>,
    touched: u64,
}

/// Journal-backed persistent layer for byte-valued queries.
struct DiskCache {
    journal: Journal,
    map: HashMap<(u64, u64), Rc<Vec<u8>>>,
    broken: bool,
}

/// Hash the disk format version into the journal header so stale caches
/// from an incompatible layout are discarded wholesale.
fn disk_format_hash() -> u64 {
    let mut h = JobHasher::new();
    h.write_str("tut-query disk cache v2");
    h.finish()
}

/// The memo database: interned stages, an in-memory memo table, stats,
/// and an optional journal-backed disk layer for byte-valued results.
pub struct QueryDb {
    stages: Vec<StageData>,
    by_name: HashMap<&'static str, u32>,
    memo: HashMap<(u32, u64), Entry>,
    generation: u64,
    disk: Option<DiskCache>,
}

impl QueryDb {
    pub fn new() -> QueryDb {
        QueryDb {
            stages: Vec::new(),
            by_name: HashMap::new(),
            memo: HashMap::new(),
            generation: 0,
            disk: None,
        }
    }

    /// Interns a stage name, creating its `query.<name>` profiler label
    /// on first use.
    pub fn stage(&mut self, name: &'static str) -> StageId {
        if let Some(&id) = self.by_name.get(name) {
            return StageId(id);
        }
        let id = self.stages.len() as u32;
        let mut h = JobHasher::new();
        h.write_str(name);
        self.stages.push(StageData {
            name,
            name_fp: h.finish(),
            label: perf::label(&format!("query.{name}")),
            hits: 0,
            misses: 0,
            recomputes: 0,
            ran_before: None,
            seen: HashSet::new(),
        });
        self.by_name.insert(name, id);
        StageId(id)
    }

    /// Marks the start of a new top-level run (one `check` invocation or
    /// one `watch` iteration). Needed for recompute classification and
    /// generation-based eviction.
    pub fn begin_run(&mut self) {
        self.generation += 1;
    }

    /// Opens (or creates) the on-disk layer at `path`. Replays every
    /// record of a compatible journal into the lookup map; an absent,
    /// corrupt, or format-incompatible journal is recreated empty.
    pub fn open_disk(&mut self, path: &Path) -> Result<usize, String> {
        let format = disk_format_hash();
        let mut replayed: HashMap<(u64, u64), Rc<Vec<u8>>> = HashMap::new();
        let journal = match Journal::open(path) {
            Ok(rec) if rec.job_hash == format => {
                for payload in &rec.records {
                    if payload.len() < 16 {
                        continue;
                    }
                    let stage = u64::from_le_bytes(payload[0..8].try_into().unwrap());
                    let key = u64::from_le_bytes(payload[8..16].try_into().unwrap());
                    replayed.insert((stage, key), Rc::new(payload[16..].to_vec()));
                }
                rec.journal
            }
            _ => Journal::create(path, format).map_err(|e| e.to_string())?,
        };
        let n = replayed.len();
        self.disk = Some(DiskCache {
            journal,
            map: replayed,
            broken: false,
        });
        Ok(n)
    }

    /// Whether a disk layer is attached and healthy.
    pub fn disk_ok(&self) -> bool {
        self.disk.as_ref().is_some_and(|d| !d.broken)
    }

    /// Memoized query execution. On a hit the cached `Rc` is returned;
    /// on a miss `compute` runs under a `query.<stage>` profiler frame
    /// (it may recursively issue further queries through the `&mut
    /// QueryDb` it receives).
    pub fn memo<T, F>(&mut self, stage: StageId, key: Fp, compute: F) -> Rc<T>
    where
        T: 'static,
        F: FnOnce(&mut QueryDb) -> T,
    {
        if let Some(entry) = self.memo.get_mut(&(stage.0, key.0)) {
            entry.touched = self.generation;
            if let Ok(v) = entry.value.clone().downcast::<T>() {
                self.count_hit(stage);
                return v;
            }
        }
        self.count_miss(stage, key);
        let value = {
            let _span = perf::enter(self.stages[stage.0 as usize].label);
            Rc::new(compute(self))
        };
        self.memo.insert(
            (stage.0, key.0),
            Entry {
                value: value.clone(),
                touched: self.generation,
            },
        );
        value
    }

    /// Memoized byte-valued query with disk persistence: consults the
    /// in-memory table, then the disk layer, then computes and writes
    /// through to both.
    pub fn memo_bytes<F>(&mut self, stage: StageId, key: Fp, compute: F) -> Rc<Vec<u8>>
    where
        F: FnOnce(&mut QueryDb) -> Vec<u8>,
    {
        if let Some(entry) = self.memo.get_mut(&(stage.0, key.0)) {
            entry.touched = self.generation;
            if let Ok(v) = entry.value.clone().downcast::<Vec<u8>>() {
                self.count_hit(stage);
                return v;
            }
        }
        let name_fp = self.stages[stage.0 as usize].name_fp;
        if let Some(disk) = &self.disk {
            if let Some(bytes) = disk.map.get(&(name_fp, key.0)) {
                let value = bytes.clone();
                self.count_hit(stage);
                self.memo.insert(
                    (stage.0, key.0),
                    Entry {
                        value: value.clone(),
                        touched: self.generation,
                    },
                );
                return value;
            }
        }
        self.count_miss(stage, key);
        let value = {
            let _span = perf::enter(self.stages[stage.0 as usize].label);
            Rc::new(compute(self))
        };
        self.persist(name_fp, key, &value);
        self.memo.insert(
            (stage.0, key.0),
            Entry {
                value: value.clone(),
                touched: self.generation,
            },
        );
        value
    }

    fn persist(&mut self, name_fp: u64, key: Fp, payload: &[u8]) {
        let Some(disk) = &mut self.disk else {
            return;
        };
        if disk.broken || payload.len() + 16 > MAX_RECORD_LEN as usize {
            return;
        }
        let mut record = Vec::with_capacity(payload.len() + 16);
        record.extend_from_slice(&name_fp.to_le_bytes());
        record.extend_from_slice(&key.0.to_le_bytes());
        record.extend_from_slice(payload);
        if disk.journal.append(&record).is_err() || disk.journal.commit().is_err() {
            disk.broken = true;
            return;
        }
        disk.map.insert((name_fp, key.0), Rc::new(payload.to_vec()));
    }

    fn count_hit(&mut self, stage: StageId) {
        self.stages[stage.0 as usize].hits += 1;
    }

    fn count_miss(&mut self, stage: StageId, key: Fp) {
        let generation = self.generation;
        let s = &mut self.stages[stage.0 as usize];
        s.misses += 1;
        let executed_earlier = s.ran_before.is_some_and(|g| g < generation);
        if executed_earlier || s.seen.contains(&key.0) {
            s.recomputes += 1;
        }
        s.seen.insert(key.0);
        s.ran_before = Some(generation);
    }

    /// Snapshot of all counters.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            stages: self
                .stages
                .iter()
                .map(|s| StageStats {
                    name: s.name.to_string(),
                    hits: s.hits,
                    misses: s.misses,
                    recomputes: s.recomputes,
                })
                .collect(),
        }
    }

    /// Number of live memo entries.
    pub fn memo_len(&self) -> usize {
        self.memo.len()
    }

    /// Evicts memo entries not touched in the last `keep` generations
    /// (long-running `watch` sessions call this to bound memory).
    pub fn evict_older_than(&mut self, keep: u64) {
        let generation = self.generation;
        self.memo.retain(|_, e| e.touched + keep >= generation);
    }
}

impl Default for QueryDb {
    fn default() -> Self {
        QueryDb::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn temp_path(tag: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!(
            "tut-query-test-{}-{}.tutj",
            std::process::id(),
            tag
        ));
        let _ = std::fs::remove_file(&p);
        p
    }

    #[test]
    fn memo_caches_and_counts() {
        let mut db = QueryDb::new();
        let stage = db.stage("double");
        db.begin_run();
        let mut calls = 0;
        let v = db.memo(stage, Fp(21), |_| {
            calls += 1;
            42u64
        });
        assert_eq!(*v, 42);
        let v2 = db.memo(stage, Fp(21), |_| {
            calls += 1;
            0u64
        });
        assert_eq!(*v2, 42);
        assert_eq!(calls, 1);
        let st = db.stats();
        assert_eq!(st.stages[0].hits, 1);
        assert_eq!(st.stages[0].misses, 1);
        assert_eq!(st.stages[0].recomputes, 0);
    }

    #[test]
    fn nested_queries_share_the_db() {
        let mut db = QueryDb::new();
        let inner = db.stage("inner");
        let outer = db.stage("outer");
        db.begin_run();
        let v = db.memo(outer, Fp(1), |db| {
            let a = db.memo(inner, Fp(2), |_| 10u64);
            *a + 1
        });
        assert_eq!(*v, 11);
        assert_eq!(db.stats().total_misses(), 2);
    }

    #[test]
    fn miss_after_earlier_run_counts_as_recompute() {
        let mut db = QueryDb::new();
        let stage = db.stage("wf");
        db.begin_run();
        db.memo(stage, Fp(1), |_| 1u64);
        db.begin_run();
        // Same stage, new key: the input changed, so this is downstream
        // recomputation, not first-time work.
        db.memo(stage, Fp(2), |_| 2u64);
        let st = db.stats();
        assert_eq!(st.stages[0].misses, 2);
        assert_eq!(st.stages[0].recomputes, 1);
    }

    #[test]
    fn two_misses_in_first_run_are_not_recomputes() {
        let mut db = QueryDb::new();
        let stage = db.stage("per_class");
        db.begin_run();
        db.memo(stage, Fp(1), |_| 1u64);
        db.memo(stage, Fp(2), |_| 2u64);
        assert_eq!(db.stats().stages[0].recomputes, 0);
    }

    #[test]
    fn eviction_then_recompute_is_counted() {
        let mut db = QueryDb::new();
        let stage = db.stage("s");
        db.begin_run();
        db.memo(stage, Fp(1), |_| 1u64);
        db.begin_run();
        db.begin_run();
        db.evict_older_than(1);
        assert_eq!(db.memo_len(), 0);
        db.memo(stage, Fp(1), |_| 1u64);
        assert_eq!(db.stats().stages[0].recomputes, 1);
    }

    #[test]
    fn stats_since_subtracts() {
        let mut db = QueryDb::new();
        let stage = db.stage("s");
        db.begin_run();
        db.memo(stage, Fp(1), |_| 1u64);
        let before = db.stats();
        db.begin_run();
        db.memo(stage, Fp(1), |_| 1u64);
        db.memo(stage, Fp(2), |_| 2u64);
        let delta = db.stats().since(&before);
        assert_eq!(delta.stages[0].hits, 1);
        assert_eq!(delta.stages[0].misses, 1);
        assert_eq!(delta.hit_rate(), 50.0);
    }

    #[test]
    fn render_carries_hit_rate_line() {
        let mut db = QueryDb::new();
        let stage = db.stage("s");
        db.begin_run();
        db.memo(stage, Fp(1), |_| 1u64);
        db.memo(stage, Fp(1), |_| 1u64);
        let text = db.stats().render();
        assert!(text.contains("hit rate 50.0%"), "{text}");
    }

    #[test]
    fn fp_is_length_prefixed() {
        // "ab" + "c" must not collide with "a" + "bc".
        let a = FpBuilder::new().str("ab").str("c").finish();
        let b = FpBuilder::new().str("a").str("bc").finish();
        assert_ne!(a, b);
        assert_eq!(Fp::of_str("x"), Fp::of_str("x"));
    }

    #[test]
    fn disk_layer_round_trips_across_processes() {
        let path = temp_path("roundtrip");
        let key = Fp::of_str("payload-key");
        {
            let mut db = QueryDb::new();
            let stage = db.stage("report");
            db.open_disk(&path).unwrap();
            db.begin_run();
            let v = db.memo_bytes(stage, key, |_| b"hello".to_vec());
            assert_eq!(&**v, b"hello");
            assert_eq!(db.stats().total_misses(), 1);
        }
        {
            // Fresh database: the memo table is empty but the journal
            // replays, so the lookup is a hit and never recomputes.
            let mut db = QueryDb::new();
            let stage = db.stage("report");
            assert_eq!(db.open_disk(&path).unwrap(), 1);
            db.begin_run();
            let v = db.memo_bytes(stage, key, |_| panic!("must not recompute"));
            assert_eq!(&**v, b"hello");
            let st = db.stats();
            assert_eq!(st.total_hits(), 1);
            assert_eq!(st.hit_rate(), 100.0);
        }
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn incompatible_disk_format_is_discarded() {
        let path = temp_path("stale");
        {
            let mut j = Journal::create(&path, 0xDEAD).unwrap();
            j.append(b"0123456789abcdef-payload").unwrap();
            j.commit().unwrap();
        }
        let mut db = QueryDb::new();
        assert_eq!(db.open_disk(&path).unwrap(), 0);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn query_frames_reach_the_profiler() {
        let mut db = QueryDb::new();
        let stage = db.stage("frame_test");
        perf::reset();
        perf::enable();
        db.begin_run();
        db.memo(stage, Fp(7), |_| 7u64);
        db.memo(stage, Fp(7), |_| 7u64); // hit: no second frame
        perf::disable();
        let report = perf::drain();
        let folded = report.to_folded();
        assert_eq!(
            folded
                .lines()
                .filter(|l| l.contains("query.frame_test"))
                .count(),
            1,
            "{folded}"
        );
    }
}
