//! Rendering a [`DiagnosticBag`] for humans (text) and tools (JSON).

use std::fmt::Write as _;

use crate::bag::DiagnosticBag;
use crate::diagnostic::Diagnostic;
use crate::source::SourceMap;
use crate::span::Span;

/// Renders the bag in rustc-style plain text.
///
/// Each diagnostic prints as
///
/// ```text
/// error[E0110]: expected `;`
///  --> model.xml:4:17
///   |
/// 4 |   send reply(x)
///   |                ^
///   = note: statements are `;`-terminated
///   = help: insert `;`
/// ```
///
/// followed by a final summary line (`"2 errors, 1 warning"`). Spans are
/// resolved against `source` when one is supplied; without a source map
/// (or for span-less findings) the location and excerpt lines are omitted.
pub fn render_bag_text(bag: &DiagnosticBag, source: Option<&SourceMap>) -> String {
    let mut out = String::new();
    for d in bag {
        render_one_text(&mut out, d, source);
        out.push('\n');
    }
    let _ = writeln!(out, "{}", bag.summary());
    out
}

fn render_one_text(out: &mut String, d: &Diagnostic, source: Option<&SourceMap>) {
    let _ = write!(out, "{}[{}]: {}", d.severity, d.code, d.message);
    if let Some(element) = &d.element {
        let _ = write!(out, " ({element})");
    }
    out.push('\n');
    if let (Some(span), Some(sm)) = (d.span, source) {
        render_excerpt(out, span, sm, "^");
    }
    for label in &d.labels {
        if let Some(sm) = source {
            let _ = writeln!(out, "  label: {}", label.message);
            render_excerpt(out, label.span, sm, "-");
        } else {
            let _ = writeln!(out, "  label: {} ({})", label.message, label.span);
        }
    }
    for note in &d.notes {
        let _ = writeln!(out, "  = note: {note}");
    }
    if let Some(help) = &d.help {
        let _ = writeln!(out, "  = help: {help}");
    }
}

/// Writes the ` --> file:line:col` pointer and the underlined source line.
fn render_excerpt(out: &mut String, span: Span, sm: &SourceMap, mark: &str) {
    let at = sm.locate(span.start);
    let _ = writeln!(out, " --> {}:{}", sm.name(), at);
    let Some(line_text) = sm.line(at.line) else {
        return;
    };
    let gutter = at.line.to_string();
    let pad = " ".repeat(gutter.len());
    let _ = writeln!(out, "{pad} |");
    let _ = writeln!(out, "{gutter} | {line_text}");
    // Underline the part of the span that falls on the excerpted line.
    let end = sm.locate(span.end);
    let width = if end.line == at.line && end.column > at.column {
        end.column - at.column
    } else {
        1
    };
    let width = width
        .min(line_text.len().saturating_sub(at.column - 1))
        .max(1);
    let _ = writeln!(
        out,
        "{pad} | {}{}",
        " ".repeat(at.column - 1),
        mark.repeat(width)
    );
}

/// Renders the bag as machine-readable JSON.
///
/// The shape is stable:
///
/// ```text
/// {
///   "summary": {"errors": 2, "warnings": 1, "total": 3},
///   "diagnostics": [
///     {"severity": "error", "code": "E0110", "message": "...",
///      "element": "class3" | null,
///      "span": {"start": 4, "end": 5, "line": 1, "column": 5} | null,
///      "labels": [{"start": ..., "end": ..., "message": "..."}],
///      "notes": ["..."], "help": "..." | null}
///   ]
/// }
/// ```
///
/// `line`/`column` appear inside `span` only when a [`SourceMap`] is
/// supplied. The output is a single line of minified JSON.
pub fn render_bag_json(bag: &DiagnosticBag, source: Option<&SourceMap>) -> String {
    let mut out = String::new();
    out.push_str("{\"summary\":{");
    let _ = write!(
        out,
        "\"errors\":{},\"warnings\":{},\"total\":{}",
        bag.error_count(),
        bag.warning_count(),
        bag.len()
    );
    out.push_str("},\"diagnostics\":[");
    for (i, d) in bag.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        render_one_json(&mut out, d, source);
    }
    out.push_str("]}");
    out
}

fn render_one_json(out: &mut String, d: &Diagnostic, source: Option<&SourceMap>) {
    out.push('{');
    let _ = write!(out, "\"severity\":{}", json_string(d.severity.name()));
    let _ = write!(out, ",\"code\":{}", json_string(d.code));
    let _ = write!(out, ",\"message\":{}", json_string(&d.message));
    match &d.element {
        Some(e) => {
            let _ = write!(out, ",\"element\":{}", json_string(e));
        }
        None => out.push_str(",\"element\":null"),
    }
    match d.span {
        Some(span) => {
            let _ = write!(
                out,
                ",\"span\":{{\"start\":{},\"end\":{}",
                span.start, span.end
            );
            if let Some(sm) = source {
                let at = sm.locate(span.start);
                let _ = write!(out, ",\"line\":{},\"column\":{}", at.line, at.column);
            }
            out.push('}');
        }
        None => out.push_str(",\"span\":null"),
    }
    out.push_str(",\"labels\":[");
    for (i, label) in d.labels.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "{{\"start\":{},\"end\":{},\"message\":{}}}",
            label.span.start,
            label.span.end,
            json_string(&label.message)
        );
    }
    out.push_str("],\"notes\":[");
    for (i, note) in d.notes.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&json_string(note));
    }
    out.push(']');
    match &d.help {
        Some(h) => {
            let _ = write!(out, ",\"help\":{}", json_string(h));
        }
        None => out.push_str(",\"help\":null"),
    }
    out.push('}');
}

/// Escapes a string per RFC 8259 and wraps it in quotes.
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diagnostic::Diagnostic;

    fn sample() -> (DiagnosticBag, SourceMap) {
        let sm = SourceMap::new("model.act", "x := 1\nsend reply(x)\n");
        let mut bag = DiagnosticBag::new();
        bag.push(
            Diagnostic::error("E0110", "expected `;`")
                .with_span(Span::new(20, 21))
                .with_label(Span::new(7, 11), "statement started here")
                .with_note("statements are `;`-terminated")
                .with_help("insert `;`"),
        );
        bag.push(Diagnostic::warning("W0207", "process ungrouped").with_element("class2"));
        (bag, sm)
    }

    #[test]
    fn text_renderer_shows_location_excerpt_and_summary() {
        let (bag, sm) = sample();
        let text = render_bag_text(&bag, Some(&sm));
        assert!(text.contains("error[E0110]: expected `;`"), "{text}");
        assert!(text.contains(" --> model.act:2:14"), "{text}");
        assert!(text.contains("2 | send reply(x)"), "{text}");
        assert!(
            text.contains("  = note: statements are `;`-terminated"),
            "{text}"
        );
        assert!(text.contains("  = help: insert `;`"), "{text}");
        assert!(
            text.contains("warning[W0207]: process ungrouped (class2)"),
            "{text}"
        );
        assert!(text.ends_with("1 error, 1 warning\n"), "{text}");
    }

    #[test]
    fn text_renderer_without_source_map_omits_excerpts() {
        let (bag, _) = sample();
        let text = render_bag_text(&bag, None);
        assert!(!text.contains("-->"), "{text}");
        assert!(text.contains("error[E0110]"), "{text}");
    }

    #[test]
    fn caret_is_placed_under_the_offending_column() {
        let sm = SourceMap::new("f", "abcdef\n");
        let mut bag = DiagnosticBag::new();
        bag.push(Diagnostic::error("E1", "bad").with_span(Span::new(2, 5)));
        let text = render_bag_text(&bag, Some(&sm));
        assert!(text.contains("1 | abcdef\n  |   ^^^\n"), "{text}");
    }

    #[test]
    fn json_renderer_is_stable_and_escaped() {
        let (bag, sm) = sample();
        let json = render_bag_json(&bag, Some(&sm));
        assert!(json.starts_with("{\"summary\":{\"errors\":1,\"warnings\":1,\"total\":2}"));
        assert!(json.contains("\"code\":\"E0110\""), "{json}");
        assert!(json.contains("\"span\":{\"start\":20,\"end\":21,\"line\":2,\"column\":14}"));
        assert!(json.contains("\"element\":\"class2\""), "{json}");
        assert!(json.contains("\"message\":\"expected `;`\""), "{json}");
        assert!(json.contains("\"help\":\"insert `;`\""), "{json}");
        // Escaping round-trip for quotes, backslashes, and control bytes.
        assert_eq!(json_string("a\"b\\c\nd\u{1}"), "\"a\\\"b\\\\c\\nd\\u0001\"");
    }

    #[test]
    fn json_without_source_map_has_offsets_only() {
        let (bag, _) = sample();
        let json = render_bag_json(&bag, None);
        assert!(
            json.contains("\"span\":{\"start\":20,\"end\":21}"),
            "{json}"
        );
        assert!(json.contains("\"span\":null"), "{json}");
    }
}
