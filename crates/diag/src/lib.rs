//! Compiler-grade spanned diagnostics for the TUT-Profile model front end.
//!
//! The paper's tool flow (§3, Figure 2) starts from UML model parsing and
//! feeds results back to the designer; the quality of that feedback is what
//! makes a UML flow productive. This crate is the shared diagnostics
//! substrate every front-end layer reports through:
//!
//! * [`Span`] — a byte range into a source text.
//! * [`SourceMap`] — resolves byte offsets to line:column and renders
//!   source excerpts.
//! * [`Diagnostic`] — one finding: a stable code (`E0101`, `W0207`, …), a
//!   [`Severity`], a message, an optional primary span plus labeled
//!   secondary spans, notes, and a help suggestion.
//! * [`DiagnosticBag`] — multi-error accumulation, severity sorting, and
//!   error/warning tallies, so one pass over a model reports everything.
//! * [`render`] — a rustc-style text renderer with source excerpts and a
//!   machine-readable JSON renderer.
//!
//! # Diagnostic code registry
//!
//! Codes are stable across releases; renderers and tests key on them.
//! `E` codes are errors, `W` codes warnings. The authoritative copy of
//! this table lives in `DESIGN.md` (section "Diagnostics").
//!
//! | Range | Layer | Meaning |
//! |-------|-------|---------|
//! | E0101 | `tut-uml::xml` | XML syntax error |
//! | E0102 | `tut-uml::xmi` | XMI structure error |
//! | E0103 | `tut-profile-core::interchange` | profile-application decoding error |
//! | E0110 | `tut-uml::textual` | action-language syntax error |
//! | E0111 | `tut-uml::textual` | unknown name (signal, builtin, cost class) |
//! | E0112 | `tut-uml::textual` | malformed literal / arity in the parser |
//! | E0201–E0215, W0204–W0214 | `tut-profile::rules` | TUT-Profile design rules |
//! | E0301–E0315 | `tut-uml::validate` | model well-formedness |
//! | E0316–E0318 | `tut-uml::action` | action type-check |
//! | E0401–E0402 | `tut-codegen` | code-generation dry run |
//!
//! # Example
//!
//! ```
//! use tut_diag::{Diagnostic, DiagnosticBag, SourceMap, Span};
//!
//! let source = SourceMap::new("guard.act", "len($p) > \n");
//! let mut bag = DiagnosticBag::new();
//! bag.push(
//!     Diagnostic::error("E0110", "expected an expression")
//!         .with_span(Span::point(10))
//!         .with_help("binary operators need a right-hand side"),
//! );
//! assert!(bag.has_errors());
//! let text = tut_diag::render::render_bag_text(&bag, Some(&source));
//! assert!(text.contains("error[E0110]"));
//! assert!(text.contains("guard.act:1:11"));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bag;
pub mod diagnostic;
pub mod render;
pub mod source;
pub mod span;

pub use bag::DiagnosticBag;
pub use diagnostic::{Diagnostic, Label, Severity};
pub use render::{render_bag_json, render_bag_text};
pub use source::{locate_in, LineCol, SourceMap};
pub use span::Span;
