//! Mapping byte offsets to human line:column positions.

use std::fmt;

use crate::span::Span;

/// A 1-based line and column position.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct LineCol {
    /// 1-based line number.
    pub line: usize,
    /// 1-based column number (in bytes within the line; the sources this
    /// suite handles are ASCII-dominated, so byte == display column).
    pub column: usize,
}

impl fmt::Display for LineCol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.line, self.column)
    }
}

/// A named source text with a precomputed line index.
///
/// Construction is `O(len)`; every [`SourceMap::locate`] afterwards is a
/// binary search over line starts. The renderer uses [`SourceMap::line`]
/// to excerpt the offending line under a diagnostic.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct SourceMap {
    name: String,
    text: String,
    line_starts: Vec<usize>,
}

impl SourceMap {
    /// Indexes `text` under the given display `name` (usually a file path).
    pub fn new(name: impl Into<String>, text: impl Into<String>) -> SourceMap {
        let text = text.into();
        let mut line_starts = vec![0];
        for (i, b) in text.bytes().enumerate() {
            if b == b'\n' {
                line_starts.push(i + 1);
            }
        }
        SourceMap {
            name: name.into(),
            text,
            line_starts,
        }
    }

    /// The display name given at construction.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The full source text.
    pub fn text(&self) -> &str {
        &self.text
    }

    /// Resolves a byte offset to its 1-based line and column. Offsets past
    /// the end of the text resolve to one past the final character.
    pub fn locate(&self, offset: usize) -> LineCol {
        let offset = offset.min(self.text.len());
        let line_index = match self.line_starts.binary_search(&offset) {
            Ok(i) => i,
            Err(i) => i - 1,
        };
        LineCol {
            line: line_index + 1,
            column: offset - self.line_starts[line_index] + 1,
        }
    }

    /// Resolves a span's start position.
    pub fn locate_span(&self, span: Span) -> LineCol {
        self.locate(span.start)
    }

    /// Returns the text of a 1-based line, without its trailing newline.
    pub fn line(&self, line: usize) -> Option<&str> {
        let start = *self.line_starts.get(line.checked_sub(1)?)?;
        let end = self
            .line_starts
            .get(line)
            .map(|&next| next - 1)
            .unwrap_or(self.text.len());
        Some(self.text[start..end].trim_end_matches('\r'))
    }

    /// Number of lines in the source (a trailing newline does not open a
    /// new line unless followed by text — but the index keeps it, matching
    /// editor conventions).
    pub fn line_count(&self) -> usize {
        self.line_starts.len()
    }
}

/// Resolves a byte offset to line:column with a single forward scan and
/// no allocation, for error paths that need one position out of a text
/// they do not own (a [`SourceMap`] would clone and index the whole
/// document for that single lookup). Agrees with [`SourceMap::locate`]
/// on every offset.
pub fn locate_in(text: &str, offset: usize) -> LineCol {
    let offset = offset.min(text.len());
    let mut line = 1;
    let mut line_start = 0;
    for (i, b) in text.bytes().enumerate().take(offset) {
        if b == b'\n' {
            line += 1;
            line_start = i + 1;
        }
    }
    LineCol {
        line,
        column: offset - line_start + 1,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn locates_offsets_across_lines() {
        let sm = SourceMap::new("f", "ab\ncd\n\nxyz");
        assert_eq!(sm.locate(0), LineCol { line: 1, column: 1 });
        assert_eq!(sm.locate(1), LineCol { line: 1, column: 2 });
        assert_eq!(sm.locate(3), LineCol { line: 2, column: 1 });
        assert_eq!(sm.locate(6), LineCol { line: 3, column: 1 });
        assert_eq!(sm.locate(7), LineCol { line: 4, column: 1 });
        assert_eq!(sm.locate(9), LineCol { line: 4, column: 3 });
        // Past the end clamps to one past the final character.
        assert_eq!(sm.locate(1000), LineCol { line: 4, column: 4 });
        assert_eq!(sm.locate(0).to_string(), "1:1");
    }

    #[test]
    fn extracts_lines() {
        let sm = SourceMap::new("f", "ab\ncd\r\nlast");
        assert_eq!(sm.line(1), Some("ab"));
        assert_eq!(sm.line(2), Some("cd"), "carriage return stripped");
        assert_eq!(sm.line(3), Some("last"));
        assert_eq!(sm.line(4), None);
        assert_eq!(sm.line(0), None);
        assert_eq!(sm.line_count(), 3);
    }

    #[test]
    fn empty_source() {
        let sm = SourceMap::new("empty", "");
        assert_eq!(sm.locate(0), LineCol { line: 1, column: 1 });
        assert_eq!(sm.line(1), Some(""));
    }

    /// The binary-search index and the scan-free helper must agree on a
    /// multi-line fixture at every byte offset, including past-the-end.
    #[test]
    fn locate_agrees_with_locate_in_on_multiline_fixture() {
        let fixture = "<?xml version=\"1.0\"?>\n<model name=\"tutmac\">\n\n  <class name=\"A\"/>\n  <class name=\"B\">\n  </class>\n</model>\n";
        let sm = SourceMap::new("fixture.xml", fixture);
        for offset in 0..=fixture.len() + 2 {
            assert_eq!(
                sm.locate(offset),
                locate_in(fixture, offset),
                "offset {offset}"
            );
        }
        // Spot checks pinning absolute positions on the fixture.
        let class_a = fixture.find("<class").unwrap();
        assert_eq!(sm.locate(class_a), LineCol { line: 4, column: 3 });
        assert_eq!(sm.locate(fixture.len()), LineCol { line: 8, column: 1 });
    }

    #[test]
    fn locate_in_handles_crlf_and_blank_lines() {
        let fixture = "a\r\nbb\r\n\r\nccc";
        assert_eq!(locate_in(fixture, 0), LineCol { line: 1, column: 1 });
        // The '\r' belongs to line 1; only '\n' opens a new line.
        assert_eq!(locate_in(fixture, 1), LineCol { line: 1, column: 2 });
        assert_eq!(locate_in(fixture, 3), LineCol { line: 2, column: 1 });
        assert_eq!(locate_in(fixture, 7), LineCol { line: 3, column: 1 });
        assert_eq!(locate_in(fixture, 9), LineCol { line: 4, column: 1 });
        assert_eq!(locate_in(fixture, 11), LineCol { line: 4, column: 3 });
        let sm = SourceMap::new("crlf", fixture);
        for offset in 0..=fixture.len() {
            assert_eq!(sm.locate(offset), locate_in(fixture, offset));
        }
    }
}
