//! Multi-error accumulation.

use std::fmt;

use crate::diagnostic::{Diagnostic, Severity};

/// An ordered collection of [`Diagnostic`]s.
///
/// Front-end passes push into one bag instead of failing fast, so a single
/// run over a model reports every problem at once. [`DiagnosticBag::sort`]
/// orders the report most-severe-first (then by source position), which is
/// the order the renderers present.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct DiagnosticBag {
    diagnostics: Vec<Diagnostic>,
}

impl DiagnosticBag {
    /// Creates an empty bag.
    pub fn new() -> DiagnosticBag {
        DiagnosticBag::default()
    }

    /// Adds one diagnostic.
    pub fn push(&mut self, diagnostic: Diagnostic) {
        self.diagnostics.push(diagnostic);
    }

    /// Moves every diagnostic of `other` into this bag.
    pub fn merge(&mut self, other: DiagnosticBag) {
        self.diagnostics.extend(other.diagnostics);
    }

    /// Merges a cached fragment whose spans are relative to a
    /// sub-document starting at byte `base`, rebasing every span on the
    /// way in. With `base == 0` this appends the fragment verbatim, so
    /// a warm replay of cached fragments is byte-identical to the cold
    /// pass that produced them.
    pub fn merge_fragment(&mut self, fragment: &[Diagnostic], base: usize) {
        self.diagnostics
            .extend(fragment.iter().map(|d| d.rebased(base)));
    }

    /// Number of diagnostics collected.
    pub fn len(&self) -> usize {
        self.diagnostics.len()
    }

    /// True when nothing was reported.
    pub fn is_empty(&self) -> bool {
        self.diagnostics.is_empty()
    }

    /// True when at least one error-severity diagnostic was reported.
    pub fn has_errors(&self) -> bool {
        self.diagnostics.iter().any(Diagnostic::is_error)
    }

    /// Number of error-severity diagnostics.
    pub fn error_count(&self) -> usize {
        self.diagnostics.iter().filter(|d| d.is_error()).count()
    }

    /// Number of warning-severity diagnostics.
    pub fn warning_count(&self) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Warning)
            .count()
    }

    /// The highest severity present, or `None` for an empty bag.
    pub fn max_severity(&self) -> Option<Severity> {
        self.diagnostics.iter().map(|d| d.severity).max()
    }

    /// Iterates in current order.
    pub fn iter(&self) -> std::slice::Iter<'_, Diagnostic> {
        self.diagnostics.iter()
    }

    /// Mutable iteration, used by drivers to attach spans after the fact.
    pub fn iter_mut(&mut self) -> std::slice::IterMut<'_, Diagnostic> {
        self.diagnostics.iter_mut()
    }

    /// Consumes the bag, returning the diagnostics.
    pub fn into_vec(self) -> Vec<Diagnostic> {
        self.diagnostics
    }

    /// Sorts the report: errors first, then warnings, then notes; within a
    /// severity by source position (spanned findings before span-less
    /// ones), then by code. The sort is stable, so insertion order breaks
    /// remaining ties.
    pub fn sort(&mut self) {
        self.diagnostics.sort_by(|a, b| {
            b.severity
                .cmp(&a.severity)
                .then_with(|| span_key(a).cmp(&span_key(b)))
                .then_with(|| a.code.cmp(b.code))
        });
    }

    /// The first diagnostic, if any (useful after [`DiagnosticBag::sort`]
    /// to surface the most severe finding).
    pub fn first(&self) -> Option<&Diagnostic> {
        self.diagnostics.first()
    }

    /// A one-line tally such as `"2 errors, 1 warning"`.
    pub fn summary(&self) -> String {
        fn plural(n: usize, word: &str) -> String {
            format!("{n} {word}{}", if n == 1 { "" } else { "s" })
        }
        let errors = self.error_count();
        let warnings = self.warning_count();
        match (errors, warnings) {
            (0, 0) => "no findings".to_owned(),
            (0, w) => plural(w, "warning"),
            (e, 0) => plural(e, "error"),
            (e, w) => format!("{}, {}", plural(e, "error"), plural(w, "warning")),
        }
    }
}

fn span_key(d: &Diagnostic) -> (usize, usize) {
    match d.span {
        Some(s) => (s.start, s.end),
        None => (usize::MAX, usize::MAX),
    }
}

impl Extend<Diagnostic> for DiagnosticBag {
    fn extend<T: IntoIterator<Item = Diagnostic>>(&mut self, iter: T) {
        self.diagnostics.extend(iter);
    }
}

impl FromIterator<Diagnostic> for DiagnosticBag {
    fn from_iter<T: IntoIterator<Item = Diagnostic>>(iter: T) -> DiagnosticBag {
        DiagnosticBag {
            diagnostics: iter.into_iter().collect(),
        }
    }
}

impl IntoIterator for DiagnosticBag {
    type Item = Diagnostic;
    type IntoIter = std::vec::IntoIter<Diagnostic>;
    fn into_iter(self) -> Self::IntoIter {
        self.diagnostics.into_iter()
    }
}

impl<'a> IntoIterator for &'a DiagnosticBag {
    type Item = &'a Diagnostic;
    type IntoIter = std::slice::Iter<'a, Diagnostic>;
    fn into_iter(self) -> Self::IntoIter {
        self.diagnostics.iter()
    }
}

impl fmt::Display for DiagnosticBag {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, d) in self.diagnostics.iter().enumerate() {
            if i > 0 {
                writeln!(f)?;
            }
            write!(f, "{d}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::Span;

    #[test]
    fn tallies_and_summary() {
        let mut bag = DiagnosticBag::new();
        assert!(bag.is_empty());
        assert_eq!(bag.summary(), "no findings");
        assert_eq!(bag.max_severity(), None);
        bag.push(Diagnostic::warning("W0207", "w1"));
        bag.push(Diagnostic::error("E0110", "e1"));
        bag.push(Diagnostic::error("E0301", "e2"));
        assert_eq!(bag.len(), 3);
        assert!(bag.has_errors());
        assert_eq!(bag.error_count(), 2);
        assert_eq!(bag.warning_count(), 1);
        assert_eq!(bag.max_severity(), Some(Severity::Error));
        assert_eq!(bag.summary(), "2 errors, 1 warning");
    }

    #[test]
    fn sort_orders_by_severity_then_position() {
        let mut bag = DiagnosticBag::new();
        bag.push(Diagnostic::warning("W0001", "early warning").with_span(Span::new(0, 1)));
        bag.push(Diagnostic::error("E0002", "late error").with_span(Span::new(50, 51)));
        bag.push(Diagnostic::error("E0001", "spanless error"));
        bag.push(Diagnostic::error("E0003", "early error").with_span(Span::new(2, 3)));
        bag.sort();
        let codes: Vec<_> = bag.iter().map(|d| d.code).collect();
        assert_eq!(codes, ["E0003", "E0002", "E0001", "W0001"]);
        assert_eq!(bag.first().unwrap().code, "E0003");
    }

    #[test]
    fn merge_and_collect() {
        let mut a: DiagnosticBag = [Diagnostic::error("E1", "x")].into_iter().collect();
        let mut b = DiagnosticBag::new();
        b.push(Diagnostic::warning("W1", "y"));
        a.merge(b);
        assert_eq!(a.len(), 2);
        a.extend([Diagnostic::note("N1", "z")]);
        assert_eq!(a.into_vec().len(), 3);
    }

    #[test]
    fn display_lists_compact_lines() {
        let mut bag = DiagnosticBag::new();
        bag.push(Diagnostic::error("E1", "one"));
        bag.push(Diagnostic::warning("W1", "two"));
        assert_eq!(bag.to_string(), "error[E1]: one\nwarning[W1]: two");
    }
}
