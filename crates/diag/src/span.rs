//! Byte spans into a source text.

use std::fmt;

/// A half-open byte range `[start, end)` into some source text.
///
/// Spans are plain byte offsets; resolving them to line:column is the job
/// of [`crate::SourceMap`]. A zero-length span marks a point (e.g. an
/// unexpected end of input).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct Span {
    /// Byte offset of the first character covered.
    pub start: usize,
    /// Byte offset one past the last character covered.
    pub end: usize,
}

impl Span {
    /// The empty span at offset zero, used by programmatically built nodes
    /// that have no source location.
    pub const NONE: Span = Span { start: 0, end: 0 };

    /// Creates a span; `end` is clamped to be at least `start`.
    pub fn new(start: usize, end: usize) -> Span {
        Span {
            start,
            end: end.max(start),
        }
    }

    /// A zero-length span marking a single position.
    pub fn point(at: usize) -> Span {
        Span { start: at, end: at }
    }

    /// Length of the span in bytes.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// True when the span covers no bytes.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// The smallest span covering both `self` and `other`.
    pub fn merge(&self, other: Span) -> Span {
        Span {
            start: self.start.min(other.start),
            end: self.end.max(other.end),
        }
    }

    /// Shifts the span by `base` bytes, for mapping a span inside an
    /// embedded fragment (e.g. an action string in an XML attribute) back
    /// into the enclosing document.
    pub fn offset(&self, base: usize) -> Span {
        Span {
            start: self.start + base,
            end: self.end + base,
        }
    }
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}..{}", self.start, self.end)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_merge() {
        let a = Span::new(2, 5);
        assert_eq!(a.len(), 3);
        assert!(!a.is_empty());
        let b = Span::point(9);
        assert!(b.is_empty());
        assert_eq!(a.merge(b), Span::new(2, 9));
        assert_eq!(Span::new(5, 2), Span::new(5, 5), "end clamped to start");
        assert_eq!(a.offset(10), Span::new(12, 15));
        assert_eq!(a.to_string(), "2..5");
    }
}
