//! The [`Diagnostic`] type: one finding with a stable code.

use std::fmt;

use crate::span::Span;

/// How serious a diagnostic is.
///
/// The ordering is semantic: `Note < Warning < Error`, so
/// `bag.max_severity() >= Some(Severity::Error)` asks "did anything fail".
/// This is the *single* severity model shared by UML well-formedness
/// checking, the TUT-Profile design rules, the action-language front end,
/// and code generation.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum Severity {
    /// Informational; never affects exit status.
    Note,
    /// Advisory: the model is usable but suspicious.
    Warning,
    /// The model violates a rule and must be fixed before code
    /// generation / simulation.
    Error,
}

impl Severity {
    /// The lowercase renderer keyword (`"error"`, `"warning"`, `"note"`).
    pub fn name(self) -> &'static str {
        match self {
            Severity::Note => "note",
            Severity::Warning => "warning",
            Severity::Error => "error",
        }
    }
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A secondary span with its own message, rendered under the primary
/// excerpt (`= label: ...` lines in the text renderer).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Label {
    /// The labelled range.
    pub span: Span,
    /// What the range means.
    pub message: String,
}

/// One diagnostic: a stable code, a severity, a message, and optional
/// location/context attachments.
///
/// Codes are short stable identifiers (`E0101`, `W0207`) listed in the
/// crate-level registry; tooling keys on them, so they must not change
/// meaning across releases.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Diagnostic {
    /// Severity of the finding.
    pub severity: Severity,
    /// Stable diagnostic code, e.g. `"E0110"`.
    pub code: &'static str,
    /// Human-readable, lowercase, single-sentence description.
    pub message: String,
    /// Primary source span, when the finding is attributable to text.
    pub span: Option<Span>,
    /// Secondary labelled spans.
    pub labels: Vec<Label>,
    /// Free-form notes appended to the rendering.
    pub notes: Vec<String>,
    /// A concrete suggestion for fixing the problem.
    pub help: Option<String>,
    /// The model element at fault, in its display form (e.g. `"class3"`),
    /// for findings about model structure rather than text. Drivers that
    /// know where each element was declared (the XMI reader's span index)
    /// use this to attach a [`Span`] after the fact.
    pub element: Option<String>,
}

impl Diagnostic {
    /// Creates a diagnostic with the given severity.
    pub fn new(severity: Severity, code: &'static str, message: impl Into<String>) -> Diagnostic {
        Diagnostic {
            severity,
            code,
            message: message.into(),
            span: None,
            labels: Vec::new(),
            notes: Vec::new(),
            help: None,
            element: None,
        }
    }

    /// An error-severity diagnostic.
    pub fn error(code: &'static str, message: impl Into<String>) -> Diagnostic {
        Diagnostic::new(Severity::Error, code, message)
    }

    /// A warning-severity diagnostic.
    pub fn warning(code: &'static str, message: impl Into<String>) -> Diagnostic {
        Diagnostic::new(Severity::Warning, code, message)
    }

    /// A note-severity diagnostic.
    pub fn note(code: &'static str, message: impl Into<String>) -> Diagnostic {
        Diagnostic::new(Severity::Note, code, message)
    }

    /// Attaches the primary span.
    pub fn with_span(mut self, span: Span) -> Diagnostic {
        self.span = Some(span);
        self
    }

    /// Attaches a labelled secondary span.
    pub fn with_label(mut self, span: Span, message: impl Into<String>) -> Diagnostic {
        self.labels.push(Label {
            span,
            message: message.into(),
        });
        self
    }

    /// Appends a note line.
    pub fn with_note(mut self, note: impl Into<String>) -> Diagnostic {
        self.notes.push(note.into());
        self
    }

    /// Attaches a fix suggestion.
    pub fn with_help(mut self, help: impl Into<String>) -> Diagnostic {
        self.help = Some(help.into());
        self
    }

    /// Attaches the offending model element (display form).
    pub fn with_element(mut self, element: impl Into<String>) -> Diagnostic {
        self.element = Some(element.into());
        self
    }

    /// True for error severity.
    pub fn is_error(&self) -> bool {
        self.severity == Severity::Error
    }

    /// Returns a copy with the primary span and every label shifted by
    /// `base` bytes, mapping a fragment-relative diagnostic (cached
    /// against a sub-document) back into the enclosing document.
    /// [`Span::NONE`] spans stay `NONE` — they mark "no location", not
    /// offset zero.
    pub fn rebased(&self, base: usize) -> Diagnostic {
        let mut out = self.clone();
        if let Some(span) = out.span {
            if span != Span::NONE {
                out.span = Some(span.offset(base));
            }
        }
        for label in &mut out.labels {
            if label.span != Span::NONE {
                label.span = label.span.offset(base);
            }
        }
        out
    }
}

/// `Display` renders the compact one-line form (no source excerpt):
/// `error[E0110]: expected `;` (class3)`.
impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}[{}]: {}", self.severity, self.code, self.message)?;
        if let Some(element) = &self.element {
            write!(f, " ({element})")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn severity_orders_semantically() {
        assert!(Severity::Note < Severity::Warning);
        assert!(Severity::Warning < Severity::Error);
        assert_eq!(Severity::Error.to_string(), "error");
    }

    #[test]
    fn builder_and_display() {
        let d = Diagnostic::error("E0110", "expected `;`")
            .with_span(Span::new(4, 5))
            .with_label(Span::new(0, 3), "statement started here")
            .with_note("statements are `;`-terminated")
            .with_help("insert `;`")
            .with_element("class3");
        assert!(d.is_error());
        assert_eq!(d.span, Some(Span::new(4, 5)));
        assert_eq!(d.labels.len(), 1);
        assert_eq!(d.to_string(), "error[E0110]: expected `;` (class3)");
        let w = Diagnostic::warning("W0207", "ungrouped");
        assert!(!w.is_error());
        assert_eq!(w.to_string(), "warning[W0207]: ungrouped");
        assert_eq!(Diagnostic::note("N0001", "fyi").severity, Severity::Note);
    }
}
