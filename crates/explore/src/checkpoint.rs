//! Checkpoint hooks: how the optimisers externalise resumable progress.
//!
//! Both searches already decompose into an ordered list of independent,
//! deterministic work units — annealing *restarts* for grouping (each
//! fully determined by its derived seed) and contiguous candidate
//! *shards* for the exhaustive mapping search. A checkpoint sink
//! ([`ExploreCheckpoint`]) observes each finished unit and can replay
//! units finished by an earlier, interrupted run so they are skipped
//! instead of recomputed.
//!
//! Because every unit's result is a pure function of the problem and the
//! unit index, a run resumed from any prefix of completed units is
//! **bit-identical** to an uninterrupted run — the hooks only decide
//! *whether* a unit is recomputed, never *what* it produces. The durable
//! implementation lives in the bench crate, backed by `tut_store`
//! journals; this crate only defines the seam (plus [`NoCheckpoint`],
//! the zero-cost default).
//!
//! Replayed units deliberately do not tick the progress meter — the
//! driver accounts for them up front via `tut_trace::Progress::set_resumed`,
//! so live heartbeats show `done/total (resumed N)` without
//! double-counting.

/// One finished annealing restart of the grouping search, as persisted
/// and replayed.
#[derive(Clone, PartialEq, Debug)]
pub struct RestartOutcome {
    /// The restart's best objective value.
    pub objective: f64,
    /// The restart's best assignment (`assignment[node] = group`).
    pub assignment: Vec<usize>,
}

/// One finished shard of the exhaustive mapping search: the first strict
/// minimum in the shard as `(cost, candidate index)`, or `None` for an
/// empty shard.
pub type ShardBest = Option<(f64, u64)>;

/// A sink for completed work units, with replay of units a previous run
/// already finished.
///
/// Implementations must be [`Sync`]: both optimisers invoke the hooks
/// from inside their scoped worker threads. All methods default to
/// no-ops / "nothing recorded", so a sink only overrides the pairs it
/// cares about.
pub trait ExploreCheckpoint: Sync {
    /// Returns grouping restart `restart` if a previous run completed
    /// it, to be used verbatim instead of re-annealing.
    fn replay_restart(&self, restart: usize) -> Option<RestartOutcome> {
        let _ = restart;
        None
    }

    /// Observes a freshly computed grouping restart.
    fn restart_done(&self, restart: usize, outcome: &RestartOutcome) {
        let _ = (restart, outcome);
    }

    /// Returns mapping shard `shard` if a previous run completed it.
    fn replay_mapping_shard(&self, shard: usize) -> Option<ShardBest> {
        let _ = shard;
        None
    }

    /// Observes a freshly computed mapping shard.
    fn mapping_shard_done(&self, shard: usize, best: &ShardBest) {
        let _ = (shard, best);
    }
}

/// The default sink: records nothing, replays nothing. The checkpointed
/// entry points with `NoCheckpoint` behave exactly like their observed
/// counterparts.
#[derive(Clone, Copy, Default, Debug)]
pub struct NoCheckpoint;

impl ExploreCheckpoint for NoCheckpoint {}

#[cfg(test)]
mod tests {
    use std::collections::HashMap;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Mutex;

    use tut_trace::{NoopSink, Progress};

    use super::*;
    use crate::commgraph::CommGraph;
    use crate::grouping::{partition, partition_checkpointed, GroupingOptions};
    use crate::mapping::{optimise_mapping, optimise_mapping_checkpointed, MappingOptions};

    /// An in-memory sink that records everything and replays a chosen
    /// prefix — the pure-logic stand-in for the journal-backed store.
    #[derive(Default)]
    struct MemCheckpoint {
        restarts: Mutex<HashMap<usize, RestartOutcome>>,
        shards: Mutex<HashMap<usize, ShardBest>>,
        replay_restarts: HashMap<usize, RestartOutcome>,
        replay_shards: HashMap<usize, ShardBest>,
        recomputed: AtomicUsize,
    }

    impl ExploreCheckpoint for MemCheckpoint {
        fn replay_restart(&self, restart: usize) -> Option<RestartOutcome> {
            self.replay_restarts.get(&restart).cloned()
        }
        fn restart_done(&self, restart: usize, outcome: &RestartOutcome) {
            self.recomputed.fetch_add(1, Ordering::SeqCst);
            self.restarts
                .lock()
                .unwrap()
                .insert(restart, outcome.clone());
        }
        fn replay_mapping_shard(&self, shard: usize) -> Option<ShardBest> {
            self.replay_shards.get(&shard).copied()
        }
        fn mapping_shard_done(&self, shard: usize, best: &ShardBest) {
            self.recomputed.fetch_add(1, Ordering::SeqCst);
            self.shards.lock().unwrap().insert(shard, *best);
        }
    }

    fn two_communities() -> CommGraph {
        let mut g = CommGraph::default();
        for name in ["a0", "a1", "a2", "b0", "b1", "b2"] {
            g.intern(name);
        }
        g.add_edge(0, 1, 10);
        g.add_edge(1, 2, 10);
        g.add_edge(0, 2, 10);
        g.add_edge(3, 4, 10);
        g.add_edge(4, 5, 10);
        g.add_edge(3, 5, 10);
        g.add_edge(2, 3, 1);
        g
    }

    fn small_problem() -> crate::mapping::MappingProblem {
        use tut_profile::application::ProcessType;
        use tut_profile::platform::ComponentKind;
        crate::mapping::MappingProblem {
            group_names: vec!["g1".into(), "g2".into(), "hw".into()],
            group_cycles: vec![1000, 900, 50],
            group_kinds: vec![
                ProcessType::General,
                ProcessType::General,
                ProcessType::Hardware,
            ],
            comm: vec![vec![0, 100, 5], vec![100, 0, 0], vec![5, 0, 0]],
            pes: vec![
                crate::mapping::PeInfo {
                    frequency_mhz: 50,
                    kind: ComponentKind::General,
                },
                crate::mapping::PeInfo {
                    frequency_mhz: 50,
                    kind: ComponentKind::General,
                },
                crate::mapping::PeInfo {
                    frequency_mhz: 100,
                    kind: ComponentKind::HwAccelerator,
                },
            ],
            distance: vec![vec![0, 1, 2], vec![1, 0, 2], vec![2, 2, 0]],
        }
    }

    /// Interrupt-at-every-boundary for grouping: for every prefix of
    /// completed restarts, resuming from that prefix reproduces the
    /// uninterrupted solution bit for bit, serial and parallel, and only
    /// the missing restarts are recomputed.
    #[test]
    fn grouping_resume_from_any_prefix_is_bit_identical() {
        let g = two_communities();
        let options = GroupingOptions {
            groups: 2,
            restarts: 4,
            annealing_iterations: 400,
            ..GroupingOptions::default()
        };
        let reference = partition(&g, &options);

        // First pass records every restart.
        let recording = MemCheckpoint::default();
        let first = partition_checkpointed(
            &g,
            &options,
            &mut NoopSink,
            &Progress::disabled(),
            &recording,
        );
        assert_eq!(first, reference, "a checkpoint sink is an observer");
        let recorded = recording.restarts.into_inner().unwrap();
        assert_eq!(recorded.len(), 4, "every restart reported");

        for prefix in 0..=recorded.len() {
            for threads in [1usize, 3] {
                let resume = MemCheckpoint {
                    replay_restarts: (0..prefix).map(|r| (r, recorded[&r].clone())).collect(),
                    ..MemCheckpoint::default()
                };
                let options = GroupingOptions {
                    threads,
                    ..options.clone()
                };
                let resumed = partition_checkpointed(
                    &g,
                    &options,
                    &mut NoopSink,
                    &Progress::disabled(),
                    &resume,
                );
                assert_eq!(resumed.assignment, reference.assignment);
                assert_eq!(
                    resumed.objective.to_bits(),
                    reference.objective.to_bits(),
                    "prefix {prefix} at {threads} threads diverged"
                );
                assert_eq!(
                    resume.recomputed.load(Ordering::SeqCst),
                    recorded.len() - prefix,
                    "exactly the missing restarts are recomputed"
                );
            }
        }
    }

    /// The same property for the mapping search's fixed shards.
    #[test]
    fn mapping_resume_from_any_prefix_is_bit_identical() {
        let problem = small_problem();
        let options = MappingOptions::default();
        let reference = optimise_mapping(&problem, &options);

        let recording = MemCheckpoint::default();
        let first = optimise_mapping_checkpointed(
            &problem,
            &options,
            &mut NoopSink,
            &Progress::disabled(),
            &recording,
        );
        assert_eq!(first, reference, "a checkpoint sink is an observer");
        let recorded = recording.shards.into_inner().unwrap();
        assert!(!recorded.is_empty());

        for prefix in 0..=recorded.len() {
            for threads in [1usize, 4] {
                let resume = MemCheckpoint {
                    replay_shards: (0..prefix).map(|s| (s, recorded[&s])).collect(),
                    ..MemCheckpoint::default()
                };
                let options = MappingOptions {
                    threads,
                    ..options.clone()
                };
                let resumed = optimise_mapping_checkpointed(
                    &problem,
                    &options,
                    &mut NoopSink,
                    &Progress::disabled(),
                    &resume,
                );
                assert_eq!(resumed.assignment, reference.assignment);
                assert_eq!(
                    resumed.cost.to_bits(),
                    reference.cost.to_bits(),
                    "prefix {prefix} at {threads} threads diverged"
                );
                assert_eq!(
                    resume.recomputed.load(Ordering::SeqCst),
                    recorded.len() - prefix,
                    "exactly the missing shards are recomputed"
                );
            }
        }
    }
}
