//! Deterministic work sharding for the parallel optimisers.
//!
//! Both parallel searches (exhaustive mapping, multi-start annealing)
//! follow the same discipline: split a totally ordered candidate space
//! into contiguous shards, let each `std::thread::scope` worker reduce
//! its shard independently, then reduce the per-shard bests **in shard
//! order** with a `(value, first-index)` tie-break. Because the serial
//! path enumerates the same space in the same order and keeps the first
//! strict minimum, the parallel result is bit-identical to the serial
//! one at every thread count.

use std::ops::Range;

/// Resolves a requested worker count: `0` means "use the machine"
/// (`std::thread::available_parallelism`), anything else is taken
/// literally. Always returns at least 1.
pub fn resolve_threads(requested: usize) -> usize {
    if requested == 0 {
        std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1)
    } else {
        requested
    }
}

/// Splits `0..total` into at most `shards` contiguous, non-empty,
/// covering ranges (fewer when `total < shards`). The first
/// `total % shards` ranges are one element longer, so shard sizes differ
/// by at most one.
pub fn shard_ranges(total: u64, shards: usize) -> Vec<Range<u64>> {
    if total == 0 {
        return Vec::new();
    }
    let shards = (shards.max(1) as u64).min(total);
    let base = total / shards;
    let extra = total % shards;
    let mut ranges = Vec::with_capacity(shards as usize);
    let mut start = 0;
    for shard in 0..shards {
        let len = base + u64::from(shard < extra);
        ranges.push(start..start + len);
        start += len;
    }
    ranges
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resolve_zero_uses_the_machine() {
        assert!(resolve_threads(0) >= 1);
        assert_eq!(resolve_threads(3), 3);
    }

    #[test]
    fn shards_cover_exactly_without_overlap() {
        for total in [1u64, 2, 7, 64, 1000] {
            for shards in [1usize, 2, 3, 4, 7, 100] {
                let ranges = shard_ranges(total, shards);
                assert!(ranges.len() <= shards && !ranges.is_empty());
                let mut expected = 0;
                for range in &ranges {
                    assert_eq!(range.start, expected, "contiguous");
                    assert!(range.end > range.start, "non-empty");
                    expected = range.end;
                }
                assert_eq!(expected, total, "covering");
                let sizes: Vec<u64> = ranges.iter().map(|r| r.end - r.start).collect();
                let (min, max) = (sizes.iter().min().unwrap(), sizes.iter().max().unwrap());
                assert!(max - min <= 1, "balanced: {sizes:?}");
            }
        }
    }

    #[test]
    fn empty_space_yields_no_shards() {
        assert!(shard_ranges(0, 4).is_empty());
    }
}
