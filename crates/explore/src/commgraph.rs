//! The weighted process-communication graph.

use std::collections::BTreeMap;

use tut_profile::SystemModel;
use tut_profiling::ProfilingReport;
use tut_uml::instances::{InstanceTree, RoutingTable};

/// An undirected weighted graph over process instances (by dotted name).
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct CommGraph {
    nodes: Vec<String>,
    /// Upper-triangle edge weights: `(min_index, max_index) -> weight`.
    edges: BTreeMap<(usize, usize), u64>,
    /// Per-node computation weight (cycles), when known.
    loads: Vec<u64>,
}

impl CommGraph {
    /// Builds the graph from a profiling report: edge weights are signal
    /// counts between processes, node loads are per-process cycles.
    pub fn from_report(report: &ProfilingReport) -> CommGraph {
        let mut graph = CommGraph::default();
        for (process, cycles) in &report.process_cycles {
            let index = graph.intern(process);
            graph.loads[index] = *cycles;
        }
        for transfer in &report.process_transfers {
            let a = graph.intern(&transfer.sender);
            let b = graph.intern(&transfer.receiver);
            graph.add_edge(a, b, transfer.count);
        }
        graph
    }

    /// Builds the graph statically from the model: every resolved signal
    /// route contributes weight 1 (no execution needed — the paper's
    /// "static analysis" path). Node loads are unknown (0).
    ///
    /// # Errors
    ///
    /// Returns a message when the model has no application top.
    pub fn from_static(system: &SystemModel) -> Result<CommGraph, String> {
        let top = system
            .application()
            .top()
            .ok_or_else(|| "no \u{ab}Application\u{bb} class".to_owned())?;
        let tree = InstanceTree::build(&system.model, top).map_err(|e| e.to_string())?;
        let table = RoutingTable::build(&system.model, &tree);
        let mut graph = CommGraph::default();
        for (&(sender, _, _), receivers) in table.iter() {
            for receiver in receivers {
                let a = graph.intern(&tree.display_name(&system.model, sender));
                let b = graph.intern(&tree.display_name(&system.model, receiver.instance));
                graph.add_edge(a, b, 1);
            }
        }
        Ok(graph)
    }

    /// Returns the index of `name`, adding the node if absent.
    pub fn intern(&mut self, name: &str) -> usize {
        if let Some(index) = self.nodes.iter().position(|n| n == name) {
            return index;
        }
        self.nodes.push(name.to_owned());
        self.loads.push(0);
        self.nodes.len() - 1
    }

    /// Sets the computation load of a node.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    pub fn set_load(&mut self, node: usize, cycles: u64) {
        self.loads[node] = cycles;
    }

    /// Adds weight to the undirected edge between two node indices
    /// (self-edges are ignored).
    pub fn add_edge(&mut self, a: usize, b: usize, weight: u64) {
        if a == b {
            return;
        }
        let key = (a.min(b), a.max(b));
        *self.edges.entry(key).or_default() += weight;
    }

    /// Node names in index order.
    pub fn nodes(&self) -> &[String] {
        &self.nodes
    }

    /// Index of a node by name.
    pub fn index_of(&self, name: &str) -> Option<usize> {
        self.nodes.iter().position(|n| n == name)
    }

    /// Node computation loads (cycles; 0 when unknown).
    pub fn loads(&self) -> &[u64] {
        &self.loads
    }

    /// The weight between two nodes (0 when unconnected).
    pub fn weight(&self, a: usize, b: usize) -> u64 {
        if a == b {
            return 0;
        }
        self.edges.get(&(a.min(b), a.max(b))).copied().unwrap_or(0)
    }

    /// Iterates `(a, b, weight)` over all edges.
    pub fn edges(&self) -> impl Iterator<Item = (usize, usize, u64)> + '_ {
        self.edges.iter().map(|(&(a, b), &w)| (a, b, w))
    }

    /// Per-node adjacency lists: `adjacency()[a]` holds `(b, weight)` for
    /// every edge incident to `a`. Built once by the optimisers so a
    /// single-node move can be evaluated in O(degree) instead of O(E).
    pub fn adjacency(&self) -> Vec<Vec<(usize, u64)>> {
        let mut adjacency = vec![Vec::new(); self.len()];
        for (a, b, w) in self.edges() {
            adjacency[a].push((b, w));
            adjacency[b].push((a, w));
        }
        adjacency
    }

    /// Total weight crossing a partition: the sum of weights of edges
    /// whose endpoints are in different parts.
    pub fn cut_weight(&self, assignment: &[usize]) -> u64 {
        self.edges()
            .filter(|&(a, b, _)| assignment[a] != assignment[b])
            .map(|(_, _, w)| w)
            .sum()
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True when the graph has no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diamond() -> CommGraph {
        let mut g = CommGraph::default();
        let a = g.intern("a");
        let b = g.intern("b");
        let c = g.intern("c");
        let d = g.intern("d");
        g.add_edge(a, b, 10);
        g.add_edge(b, c, 1);
        g.add_edge(c, d, 10);
        g.add_edge(a, d, 1);
        g
    }

    #[test]
    fn edges_accumulate_symmetrically() {
        let mut g = CommGraph::default();
        let a = g.intern("a");
        let b = g.intern("b");
        g.add_edge(a, b, 3);
        g.add_edge(b, a, 4);
        assert_eq!(g.weight(a, b), 7);
        assert_eq!(g.weight(b, a), 7);
        g.add_edge(a, a, 99);
        assert_eq!(g.weight(a, a), 0, "self edges ignored");
    }

    #[test]
    fn cut_weight_counts_crossings() {
        let g = diamond();
        // {a,b} | {c,d}: crossing edges bc (1) and ad (1).
        assert_eq!(g.cut_weight(&[0, 0, 1, 1]), 2);
        // {a,d} | {b,c}: crossing ab (10) and cd (10).
        assert_eq!(g.cut_weight(&[0, 1, 1, 0]), 20);
        // everything together: nothing crosses.
        assert_eq!(g.cut_weight(&[0, 0, 0, 0]), 0);
    }

    #[test]
    fn static_graph_from_tutmac_connects_the_pipeline() {
        let system = tutmac::build_tutmac_system(&tutmac::TutmacConfig::light_load()).unwrap();
        let g = CommGraph::from_static(&system).unwrap();
        let rec = g.index_of("ui.msduRec").unwrap();
        let frag = g.index_of("dp.frag").unwrap();
        assert!(g.weight(rec, frag) > 0, "msduRec talks to frag");
        let crc = g.index_of("dp.crc").unwrap();
        let rca = g.index_of("rca").unwrap();
        assert!(g.weight(crc, rca) > 0, "crc talks to rca");
    }
}
