//! Rewriting a system model with a new grouping or mapping.
//!
//! §3.3: "When the mapping is fixed (indicated by a tagged value), it
//! cannot be changed automatically by profiling tools during the design
//! process." These functions are those profiling tools — fixed groupings
//! and mappings are left untouched, everything else is rewritten.

use tut_profile::SystemModel;
use tut_profile_core::TagValue;
use tut_uml::ids::{ClassId, PropertyId};

/// Rewrites the `«PlatformMapping»` dependencies: every *non-fixed* group
/// in `groups` is re-mapped to `instances[assignment[i]]`; fixed mappings
/// are preserved.
///
/// Returns the number of mappings changed.
///
/// # Panics
///
/// Panics if `assignment` and `groups` lengths differ or an assignment
/// index is out of range.
pub fn apply_mapping(
    system: &mut SystemModel,
    groups: &[ClassId],
    instances: &[PropertyId],
    assignment: &[usize],
) -> usize {
    assert_eq!(groups.len(), assignment.len(), "one element per group");
    let existing = system.mapping().mappings();
    let mut changed = 0;
    for (index, &group) in groups.iter().enumerate() {
        let target = instances[assignment[index]];
        let current = existing.iter().find(|m| m.group == group);
        if let Some(mapping) = current {
            if mapping.fixed {
                continue; // §3.3: fixed mappings are off limits.
            }
            if mapping.instance == target {
                continue;
            }
            system.unmap(mapping.dependency);
        }
        system.map_group(group, target, false);
        changed += 1;
    }
    changed
}

/// Rewrites the `«ProcessGrouping»` dependencies: every process in
/// `parts` is re-assigned to `groups[assignment[i]]`, except processes
/// whose current grouping is fixed or whose current group is fixed.
///
/// Returns the number of processes moved.
///
/// # Panics
///
/// Panics on length mismatches or out-of-range assignments.
pub fn apply_grouping(
    system: &mut SystemModel,
    parts: &[PropertyId],
    groups: &[ClassId],
    assignment: &[usize],
) -> usize {
    assert_eq!(parts.len(), assignment.len(), "one group per process");
    let mut moved = 0;
    for (index, &part) in parts.iter().enumerate() {
        let target = groups[assignment[index]];
        let app = system.application();
        let current_group = app.group_of(part);
        if current_group == Some(target) {
            continue;
        }
        // Respect fixed groupings and fixed groups.
        if let Some(dep) = app.grouping_dependency(part) {
            let grouping_fixed = system
                .tag_value(dep, system.tut.process_grouping, "Fixed")
                .and_then(TagValue::as_bool)
                .unwrap_or(false);
            let group_fixed = current_group
                .and_then(|g| {
                    system
                        .tag_value(g, system.tut.process_group, "Fixed")
                        .and_then(TagValue::as_bool)
                })
                .unwrap_or(false);
            if grouping_fixed || group_fixed {
                continue;
            }
            system.apps.clear_element(dep);
        }
        system.assign_to_group(part, target);
        moved += 1;
    }
    moved
}

#[cfg(test)]
mod tests {
    use super::*;
    use tut_profile::application::ProcessType;
    use tut_profile::platform::ComponentKind;

    fn sample() -> (SystemModel, Vec<ClassId>, Vec<PropertyId>, Vec<PropertyId>) {
        let mut s = SystemModel::new("S");
        let top = s.model.add_class("Top");
        s.apply(top, |t| t.application).unwrap();
        let comp = s.model.add_class("Worker");
        s.apply(comp, |t| t.application_component).unwrap();
        let p1 = s.model.add_part(top, "p1", comp);
        let p2 = s.model.add_part(top, "p2", comp);
        for p in [p1, p2] {
            s.apply(p, |t| t.application_process).unwrap();
        }
        let g1 = s.add_process_group("g1", false, ProcessType::General);
        let g2 = s.add_process_group("g2", false, ProcessType::General);
        s.assign_to_group(p1, g1);
        s.assign_to_group(p2, g2);

        let platform = s.model.add_class("Plat");
        s.apply(platform, |t| t.platform).unwrap();
        let nios = s.add_platform_component("Nios", ComponentKind::General, 50, 1.0, 0.1);
        let cpu1 = s.add_platform_instance(platform, "cpu1", nios, 1, 0);
        let cpu2 = s.add_platform_instance(platform, "cpu2", nios, 2, 0);
        s.map_group(g1, cpu1, false);
        s.map_group(g2, cpu2, true); // fixed!
        (s, vec![g1, g2], vec![p1, p2], vec![cpu1, cpu2])
    }

    #[test]
    fn apply_mapping_moves_non_fixed_only() {
        let (mut s, groups, _parts, cpus) = sample();
        // Try to put everything on cpu2.
        let changed = apply_mapping(&mut s, &groups, &cpus, &[1, 0]);
        assert_eq!(changed, 1, "only g1 moves; g2 is fixed");
        let view = s.mapping();
        assert_eq!(view.instance_of(groups[0]), Some(cpus[1]));
        assert_eq!(
            view.instance_of(groups[1]),
            Some(cpus[1]),
            "fixed stays on cpu2"
        );
    }

    #[test]
    fn apply_mapping_is_idempotent() {
        let (mut s, groups, _parts, cpus) = sample();
        assert_eq!(apply_mapping(&mut s, &groups, &cpus, &[0, 1]), 0);
    }

    #[test]
    fn apply_grouping_moves_processes() {
        let (mut s, groups, parts, _) = sample();
        let moved = apply_grouping(&mut s, &parts, &groups, &[1, 1]);
        assert_eq!(moved, 1, "p1 moves to g2; p2 already there");
        let app = s.application();
        assert_eq!(app.group_of(parts[0]), Some(groups[1]));
    }

    #[test]
    fn fixed_group_membership_is_preserved() {
        let (mut s, mut groups, parts, _) = sample();
        let fixed_group = s.add_process_group("locked", true, ProcessType::General);
        groups.push(fixed_group);
        // Move p1 into the fixed group, then try to move it out.
        apply_grouping(&mut s, &[parts[0]], &groups, &[2]);
        assert_eq!(s.application().group_of(parts[0]), Some(fixed_group));
        let moved = apply_grouping(&mut s, &[parts[0]], &groups, &[0]);
        assert_eq!(moved, 0, "fixed group keeps its member");
        assert_eq!(s.application().group_of(parts[0]), Some(fixed_group));
    }
}
