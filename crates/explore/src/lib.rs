//! Architecture exploration: grouping and mapping optimisation.
//!
//! The paper uses grouping and mapping as *the* performance levers: "The
//! objective in grouping has been to minimize the communication between
//! process groups, which enhances the performance if groups are mapped to
//! different processing elements" (§4.1), and "The process groups and
//! mapping are modified to improve performance" (§4.4). §3.1 promises
//! "tools for automatic grouping according to the profiling information"
//! as future work — this crate is that tool:
//!
//! * [`commgraph`] — the weighted process-communication graph, built from
//!   a profiling report (dynamic) or from the model's routing structure
//!   (static), the two analysis paths of §3.1.
//! * [`grouping`] — graph partitioning that minimises inter-group
//!   communication: greedy agglomeration, Kernighan–Lin-style refinement,
//!   and seeded simulated annealing, honouring `Fixed` groups.
//! * [`mapping`] — group→element assignment search minimising an
//!   estimated makespan (computation + bus communication), with exhaustive
//!   search for small systems and annealing beyond, evaluated statically
//!   or by re-simulation.
//! * [`apply`] — rewriting a [`tut_profile::SystemModel`] with a new
//!   grouping/mapping while respecting `Fixed` tagged values (§3.3: fixed
//!   mappings "cannot be changed automatically by profiling tools").
//! * [`objective`] — the grouping objective, maintained incrementally so
//!   a candidate single-node move costs O(degree) instead of O(E), with a
//!   debug-mode cross-check against the full recompute.
//! * [`checkpoint`] — the resumability seam: both optimisers report each
//!   finished work unit (annealing restart, mapping shard) to an
//!   [`ExploreCheckpoint`] sink and replay units an interrupted run
//!   already completed, so a resumed search is bit-identical to an
//!   uninterrupted one. The durable journal-backed sink lives in the
//!   bench crate (`tut-store`).
//! * [`parallel`] — deterministic work sharding: both optimisers split
//!   their candidate spaces across `std::thread::scope` workers and
//!   reduce per-shard bests in enumeration order, so results are
//!   bit-identical at every thread count.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod apply;
pub mod checkpoint;
pub mod commgraph;
pub mod grouping;
pub mod mapping;
pub mod objective;
pub mod parallel;

pub use checkpoint::{ExploreCheckpoint, NoCheckpoint, RestartOutcome, ShardBest};
pub use commgraph::CommGraph;
pub use grouping::{
    partition, partition_checkpointed, partition_observed, partition_with, refine, GroupingOptions,
    GroupingSolution,
};
pub use mapping::{
    optimise_mapping, optimise_mapping_checkpointed, optimise_mapping_observed,
    optimise_mapping_with, MappingOptions, MappingSolution,
};
pub use objective::{full_objective, ObjectiveState};
