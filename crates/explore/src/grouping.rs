//! Grouping optimisation: partition the communication graph into K
//! groups minimising inter-group communication.
//!
//! The paper lists the grouping criteria (§3.1): "preliminary scheduling
//! …, workload distribution, communication between process groups,
//! dependencies between process groups, and size of a process group". The
//! objective here combines the two quantitative ones: cut weight
//! (communication) plus a load-imbalance penalty (workload distribution).
//!
//! The inner loops evaluate candidate single-node moves through the
//! incremental [`ObjectiveState`], so a move costs O(degree + groups)
//! instead of the O(E) full recompute (which survives as the debug-mode
//! cross-check). The annealing phase is multi-start: `restarts`
//! independent runs with distinct SplitMix64 seeds, executed across
//! `threads` workers with a deterministic reduction, so the result is
//! bit-identical at every thread count.

use tut_trace::perf;
use tut_trace::{Clock, NoopSink, Progress, Recorder, SplitMix64, TraceSink};

use crate::checkpoint::{ExploreCheckpoint, NoCheckpoint, RestartOutcome};
use crate::commgraph::CommGraph;
use crate::objective::ObjectiveState;
use crate::parallel;

/// Options for [`partition`].
#[derive(Clone, PartialEq, Debug)]
pub struct GroupingOptions {
    /// Number of groups to form.
    pub groups: usize,
    /// Relative weight of the load-imbalance penalty against the cut
    /// weight (0 = communication only).
    pub balance_weight: f64,
    /// Nodes pinned to a group (`Fixed` processes): `(node index, group)`.
    pub pinned: Vec<(usize, usize)>,
    /// Simulated-annealing iterations per restart (0 disables the
    /// annealing pass).
    pub annealing_iterations: u32,
    /// RNG seed for the annealing pass (runs are reproducible). Each
    /// restart derives its own independent SplitMix64 stream from this.
    pub seed: u64,
    /// Independent annealing restarts; the best result wins (ties go to
    /// the lowest restart index). 0 disables the annealing pass.
    pub restarts: u32,
    /// Worker threads for the annealing restarts: 1 = serial, 0 = use
    /// `std::thread::available_parallelism`. The solution is bit-identical
    /// at every thread count.
    pub threads: usize,
}

impl Default for GroupingOptions {
    fn default() -> Self {
        GroupingOptions {
            groups: 4,
            balance_weight: 0.2,
            pinned: Vec::new(),
            annealing_iterations: 20_000,
            seed: 0x7075_7475,
            restarts: 4,
            threads: 1,
        }
    }
}

/// A grouping result.
#[derive(Clone, PartialEq, Debug)]
pub struct GroupingSolution {
    /// `assignment[node] = group`.
    pub assignment: Vec<usize>,
    /// The solution's cut weight (inter-group communication).
    pub cut_weight: u64,
    /// The solution's combined objective value.
    pub objective: f64,
}

/// Partitions the graph into `options.groups` groups.
///
/// Three phases:
/// 1. **Greedy agglomeration** — start with every node alone, repeatedly
///    merge the cluster pair joined by the heaviest inter-cluster weight
///    until `groups` clusters remain (respecting pins: clusters pinned to
///    different groups never merge).
/// 2. **Refinement** — single-node moves while they improve the
///    objective (a Kernighan–Lin-style pass).
/// 3. **Annealing** — `restarts` seeded simulated-annealing runs over
///    single-node moves, keeping the best solution seen across all of
///    them.
///
/// # Panics
///
/// Panics if `options.groups` is 0, a pin is out of range, or two pins
/// contradict each other.
pub fn partition(graph: &CommGraph, options: &GroupingOptions) -> GroupingSolution {
    partition_with(graph, options, &mut NoopSink)
}

/// [`partition`] with tracing: each phase becomes a host-clock span on
/// the `tool/explore.grouping` track, and every annealing restart reports
/// progress so long exploration runs are visible in a trace viewer. With
/// `options.threads > 1` the restarts record into per-thread
/// [`Recorder`]s that are replayed into `tracer` afterwards, so the trace
/// stays complete.
pub fn partition_with<T: TraceSink>(
    graph: &CommGraph,
    options: &GroupingOptions,
    tracer: &mut T,
) -> GroupingSolution {
    partition_observed(graph, options, tracer, &Progress::disabled())
}

/// [`partition_with`] plus host observability: the three phases and every
/// annealing restart become self-profiler frames (see
/// [`tut_trace::perf`]), and each finished restart ticks `progress` and
/// reports its best objective, so long multi-restart runs show a live
/// stderr heartbeat. Observation never changes the solution.
pub fn partition_observed<T: TraceSink>(
    graph: &CommGraph,
    options: &GroupingOptions,
    tracer: &mut T,
    progress: &Progress,
) -> GroupingSolution {
    partition_checkpointed(graph, options, tracer, progress, &NoCheckpoint)
}

/// [`partition_observed`] with a checkpoint sink: every finished
/// annealing restart is reported to `checkpoint`, and restarts a
/// previous interrupted run already completed are replayed from it
/// instead of recomputed. Each restart is a pure function of its derived
/// seed, so the solution is bit-identical whether a restart was replayed
/// or re-annealed — at every thread count.
pub fn partition_checkpointed<T: TraceSink, C: ExploreCheckpoint>(
    graph: &CommGraph,
    options: &GroupingOptions,
    tracer: &mut T,
    progress: &Progress,
    checkpoint: &C,
) -> GroupingSolution {
    assert!(options.groups > 0, "need at least one group");
    let track = tracer.track("tool/explore.grouping", Clock::Host);
    let mut phase_start = tracer.host_now_ns();
    let mut phase_span = |tracer: &mut T, name: &str| {
        let now = tracer.host_now_ns();
        tracer.span(track, name, phase_start, now.saturating_sub(phase_start));
        phase_start = now;
    };
    let n = graph.len();
    if n == 0 {
        return GroupingSolution {
            assignment: Vec::new(),
            cut_weight: 0,
            objective: 0.0,
        };
    }

    let pinned = pin_table(n, options);

    // ---- Phase 1: greedy agglomeration ---------------------------------
    let perf_span = perf::enter_named("explore.grouping.agglomerate");
    let assignment = agglomerate(graph, options, &pinned);
    phase_span(tracer, "agglomerate");

    // ---- Phase 2: greedy single-node refinement -------------------------
    let perf_span = perf_span.then_named("explore.grouping.refine");
    let adjacency = graph.adjacency();
    let mut state = ObjectiveState::new(
        graph,
        &adjacency,
        assignment,
        options.groups,
        options.balance_weight,
    );
    let current = refine_state(&mut state, &pinned);
    phase_span(tracer, "refine");

    // ---- Phase 3: multi-start simulated annealing ------------------------
    let _perf_span = perf_span.then_named("explore.grouping.anneal");
    let refined: Vec<usize> = state.assignment().to_vec();
    let mut best_assignment = refined.clone();
    let mut best = current;
    if options.annealing_iterations > 0 && options.restarts > 0 && n > 1 && options.groups > 1 {
        // Independent seed per restart, derived from the option seed.
        let mut seeder = SplitMix64::new(options.seed);
        let seeds: Vec<u64> = (0..options.restarts).map(|_| seeder.next_u64()).collect();
        let threads = parallel::resolve_threads(options.threads).min(seeds.len());
        let outcomes: Vec<AnnealOutcome> = if threads <= 1 {
            seeds
                .iter()
                .enumerate()
                .map(|(restart, &seed)| {
                    restart_with_checkpoint(checkpoint, restart, || {
                        anneal_run(
                            graph, &adjacency, options, &pinned, &refined, current, restart, seed,
                            tracer, progress,
                        )
                    })
                })
                .collect()
        } else {
            anneal_parallel(
                graph, &adjacency, options, &pinned, &refined, current, &seeds, threads, tracer,
                progress, checkpoint,
            )
        };
        // Deterministic reduction: strict improvement only, so ties go to
        // the lowest restart index — identical to the serial scan.
        for outcome in outcomes {
            if outcome.objective < best {
                best = outcome.objective;
                best_assignment = outcome.assignment;
            }
        }
    }
    phase_span(tracer, "anneal");
    tracer.add("explore.grouping.runs", 1);

    GroupingSolution {
        cut_weight: graph.cut_weight(&best_assignment),
        objective: best,
        assignment: best_assignment,
    }
}

/// Runs the greedy single-node refinement pass (phase 2 of [`partition`])
/// in place, returning the resulting objective value. Exposed so the
/// refinement cost can be benchmarked against a full-recompute baseline.
pub fn refine(graph: &CommGraph, assignment: &mut Vec<usize>, options: &GroupingOptions) -> f64 {
    let pinned = pin_table(graph.len(), options);
    let adjacency = graph.adjacency();
    let mut state = ObjectiveState::new(
        graph,
        &adjacency,
        std::mem::take(assignment),
        options.groups,
        options.balance_weight,
    );
    let value = refine_state(&mut state, &pinned);
    *assignment = state.assignment().to_vec();
    value
}

/// Builds the node → pinned-group table, validating the pins.
fn pin_table(n: usize, options: &GroupingOptions) -> Vec<Option<usize>> {
    let mut pinned: Vec<Option<usize>> = vec![None; n];
    for &(node, group) in &options.pinned {
        assert!(node < n, "pinned node out of range");
        assert!(group < options.groups, "pinned group out of range");
        assert!(
            pinned[node].is_none() || pinned[node] == Some(group),
            "contradictory pins for node {node}"
        );
        pinned[node] = Some(group);
    }
    pinned
}

/// Phase 1: greedy agglomeration down to `options.groups` clusters,
/// normalised to group indices honouring the pins.
fn agglomerate(
    graph: &CommGraph,
    options: &GroupingOptions,
    pinned: &[Option<usize>],
) -> Vec<usize> {
    let n = graph.len();
    // cluster id per node; clusters carry an optional pinned group.
    let mut cluster: Vec<usize> = (0..n).collect();
    let mut cluster_pin: Vec<Option<usize>> = pinned.to_vec();
    let mut cluster_count = n;
    while cluster_count > options.groups {
        // Heaviest inter-cluster edge whose clusters may merge.
        let mut best: Option<(usize, usize, u64)> = None;
        for (a, b, w) in graph.edges() {
            let (ca, cb) = (cluster[a], cluster[b]);
            if ca == cb {
                continue;
            }
            let compatible = match (cluster_pin[ca], cluster_pin[cb]) {
                (Some(x), Some(y)) => x == y,
                _ => true,
            };
            if compatible && w > best.map(|(_, _, bw)| bw).unwrap_or(0) {
                best = Some((ca, cb, w));
            }
        }
        let (ca, cb) = match best {
            Some((ca, cb, _)) => (ca, cb),
            None => {
                // No weighted merge available: merge two arbitrary
                // compatible clusters (unconnected components).
                let mut ids: Vec<usize> = cluster.clone();
                ids.sort_unstable();
                ids.dedup();
                let mut found = None;
                'outer: for (i, &ca) in ids.iter().enumerate() {
                    for &cb in &ids[i + 1..] {
                        let ok = match (cluster_pin[ca], cluster_pin[cb]) {
                            (Some(x), Some(y)) => x == y,
                            _ => true,
                        };
                        if ok {
                            found = Some((ca, cb));
                            break 'outer;
                        }
                    }
                }
                match found {
                    Some(pair) => pair,
                    None => break, // only mutually-pinned clusters remain
                }
            }
        };
        let merged_pin = cluster_pin[ca].or(cluster_pin[cb]);
        for c in cluster.iter_mut() {
            if *c == cb {
                *c = ca;
            }
        }
        cluster_pin[ca] = merged_pin;
        cluster_count -= 1;
    }

    // Normalise cluster ids to 0..groups, honouring pins.
    let mut ids: Vec<usize> = cluster.clone();
    ids.sort_unstable();
    ids.dedup();
    let mut id_to_group: std::collections::HashMap<usize, usize> = Default::default();
    let mut used = vec![false; options.groups];
    for &id in &ids {
        if let Some(g) = cluster_pin[id] {
            id_to_group.insert(id, g);
            used[g] = true;
        }
    }
    let mut next_free = 0usize;
    for &id in &ids {
        if id_to_group.contains_key(&id) {
            continue;
        }
        while next_free < options.groups && used[next_free] {
            next_free += 1;
        }
        let g = if next_free < options.groups {
            used[next_free] = true;
            next_free
        } else {
            // More clusters than groups (pin deadlock): overflow into
            // group 0.
            0
        };
        id_to_group.insert(id, g);
    }
    cluster.iter().map(|c| id_to_group[c]).collect()
}

/// Phase 2: single-node moves while they improve the objective, priced
/// incrementally. Returns the final objective value.
fn refine_state(state: &mut ObjectiveState<'_>, pinned: &[Option<usize>]) -> f64 {
    let groups = pinned_groups(state);
    let mut current = state.value();
    let mut improved = true;
    while improved {
        improved = false;
        for (node, pin) in pinned.iter().enumerate() {
            if pin.is_some() {
                continue;
            }
            for group in 0..groups {
                if group == state.group_of(node) {
                    continue;
                }
                let candidate = state.peek_move(node, group);
                if candidate < current {
                    state.apply_move(node, group);
                    current = candidate;
                    improved = true;
                }
            }
        }
    }
    current
}

/// The group count an [`ObjectiveState`] was built with (its load table
/// length).
fn pinned_groups(state: &ObjectiveState<'_>) -> usize {
    state.groups()
}

/// One annealing restart's result.
struct AnnealOutcome {
    assignment: Vec<usize>,
    objective: f64,
    /// Temperature after the last iteration — cooling runs once per
    /// iteration unconditionally, so this depends only on the iteration
    /// count, never on pin density or group count. Observed by the
    /// cooling-schedule regression test.
    #[cfg_attr(not(test), allow(dead_code))]
    final_temperature: f64,
}

/// Replays `restart` from the checkpoint sink when a previous run
/// finished it, otherwise computes it with `run` and reports it. A
/// replayed restart carries a zero final temperature (the field is a
/// test-only observation of freshly annealed runs) and deliberately does
/// not tick progress — the driver pre-accounts replays via
/// `Progress::set_resumed`.
fn restart_with_checkpoint<C: ExploreCheckpoint>(
    checkpoint: &C,
    restart: usize,
    run: impl FnOnce() -> AnnealOutcome,
) -> AnnealOutcome {
    if let Some(prev) = checkpoint.replay_restart(restart) {
        return AnnealOutcome {
            assignment: prev.assignment,
            objective: prev.objective,
            final_temperature: 0.0,
        };
    }
    let outcome = run();
    checkpoint.restart_done(
        restart,
        &RestartOutcome {
            objective: outcome.objective,
            assignment: outcome.assignment.clone(),
        },
    );
    outcome
}

/// One seeded simulated-annealing run from the refined assignment.
///
/// RNG discipline: exactly two index draws per iteration (node, group)
/// plus one float draw for uphill candidates, and the temperature cools
/// exactly once per iteration — pinned samples and same-group samples
/// skip only the move, not the cooling, so the effective schedule is
/// identical regardless of pin density.
#[allow(clippy::too_many_arguments)]
fn anneal_run<T: TraceSink>(
    graph: &CommGraph,
    adjacency: &[Vec<(usize, u64)>],
    options: &GroupingOptions,
    pinned: &[Option<usize>],
    start: &[usize],
    start_objective: f64,
    restart: usize,
    seed: u64,
    tracer: &mut T,
    progress: &Progress,
) -> AnnealOutcome {
    // One self-profiler frame per restart: counts and per-restart host
    // time aggregate under `explore.grouping.anneal`.
    let _restart_span = perf::enter_named("explore.grouping.restart");
    let n = graph.len();
    let track = tracer.track("tool/explore.grouping", Clock::Host);
    let mut state = ObjectiveState::new(
        graph,
        adjacency,
        start.to_vec(),
        options.groups,
        options.balance_weight,
    );
    let mut current = start_objective;
    let mut best = current;
    let mut best_assignment = start.to_vec();
    let mut rng = SplitMix64::new(seed);
    let mut temperature = (start_objective / n as f64).max(1.0);
    let iterations = options.annealing_iterations;
    // Progress heartbeat: ~16 reports across the whole pass.
    let report_every = (iterations / 16).max(1);
    for iteration in 0..iterations {
        if tracer.enabled() && iteration % report_every == 0 {
            let now = tracer.host_now_ns();
            tracer.instant(
                track,
                &format!("anneal r{restart} {iteration}/{iterations}"),
                now,
            );
            tracer.counter(track, "grouping.objective", now, best);
        }
        let node = rng.next_index(n);
        let group = rng.next_index(options.groups);
        if pinned[node].is_none() && group != state.group_of(node) {
            let candidate = state.peek_move(node, group);
            let accept = candidate <= current
                || rng.next_f64() < ((current - candidate) / temperature).exp();
            if accept {
                state.apply_move(node, group);
                current = candidate;
                if candidate < best {
                    best = candidate;
                    best_assignment = state.assignment().to_vec();
                }
            }
        }
        // Cool once per iteration, unconditionally: the schedule must not
        // depend on how many samples hit pinned nodes or no-op moves.
        temperature = (temperature * 0.9997).max(0.01);
    }
    progress.record_best(best);
    progress.tick();
    AnnealOutcome {
        assignment: best_assignment,
        objective: best,
        final_temperature: temperature,
    }
}

/// Runs the restarts across `threads` scoped workers. Each worker records
/// into its own [`Recorder`] (when tracing is enabled) which is replayed
/// into the parent sink afterwards, in restart order, with host
/// timestamps re-based onto the parent clock.
#[allow(clippy::too_many_arguments)]
fn anneal_parallel<T: TraceSink, C: ExploreCheckpoint>(
    graph: &CommGraph,
    adjacency: &[Vec<(usize, u64)>],
    options: &GroupingOptions,
    pinned: &[Option<usize>],
    start: &[usize],
    start_objective: f64,
    seeds: &[u64],
    threads: usize,
    tracer: &mut T,
    progress: &Progress,
    checkpoint: &C,
) -> Vec<AnnealOutcome> {
    let enabled = tracer.enabled();
    let spawn_ns = tracer.host_now_ns();
    let shards = parallel::shard_ranges(seeds.len() as u64, threads);
    let mut per_shard: Vec<Vec<(AnnealOutcome, Option<Recorder>)>> = std::thread::scope(|scope| {
        let handles: Vec<_> = shards
            .iter()
            .map(|range| {
                let range = range.clone();
                scope.spawn(move || {
                    range
                        .map(|r| {
                            let restart = r as usize;
                            let seed = seeds[restart];
                            let mut recorder = enabled.then(Recorder::new);
                            let outcome = restart_with_checkpoint(checkpoint, restart, || {
                                match recorder.as_mut() {
                                    Some(rec) => anneal_run(
                                        graph,
                                        adjacency,
                                        options,
                                        pinned,
                                        start,
                                        start_objective,
                                        restart,
                                        seed,
                                        rec,
                                        progress,
                                    ),
                                    None => anneal_run(
                                        graph,
                                        adjacency,
                                        options,
                                        pinned,
                                        start,
                                        start_objective,
                                        restart,
                                        seed,
                                        &mut NoopSink,
                                        progress,
                                    ),
                                }
                            });
                            (outcome, recorder)
                        })
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("annealing worker panicked"))
            .collect()
    });
    let mut outcomes = Vec::with_capacity(seeds.len());
    for shard in per_shard.iter_mut() {
        for (outcome, recorder) in shard.drain(..) {
            if let Some(recorder) = &recorder {
                recorder.replay_into(tracer, spawn_ns);
            }
            outcomes.push(outcome);
        }
    }
    outcomes
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Two 3-cliques joined by one light edge.
    fn two_communities() -> CommGraph {
        let mut g = CommGraph::default();
        for name in ["a0", "a1", "a2", "b0", "b1", "b2"] {
            g.intern(name);
        }
        g.add_edge(0, 1, 10);
        g.add_edge(1, 2, 10);
        g.add_edge(0, 2, 10);
        g.add_edge(3, 4, 10);
        g.add_edge(4, 5, 10);
        g.add_edge(3, 5, 10);
        g.add_edge(2, 3, 1);
        g
    }

    #[test]
    fn partition_finds_the_natural_cut() {
        let g = two_communities();
        let solution = partition(
            &g,
            &GroupingOptions {
                groups: 2,
                balance_weight: 0.0,
                ..GroupingOptions::default()
            },
        );
        assert_eq!(solution.cut_weight, 1, "only the bridge edge crosses");
        assert_eq!(solution.assignment[0], solution.assignment[1]);
        assert_eq!(solution.assignment[0], solution.assignment[2]);
        assert_eq!(solution.assignment[3], solution.assignment[4]);
        assert_ne!(solution.assignment[0], solution.assignment[3]);
    }

    #[test]
    fn pins_are_respected() {
        let g = two_communities();
        let solution = partition(
            &g,
            &GroupingOptions {
                groups: 2,
                balance_weight: 0.0,
                pinned: vec![(0, 1), (3, 0)],
                ..GroupingOptions::default()
            },
        );
        assert_eq!(solution.assignment[0], 1);
        assert_eq!(solution.assignment[3], 0);
    }

    #[test]
    fn single_group_collapses_everything() {
        let g = two_communities();
        let solution = partition(
            &g,
            &GroupingOptions {
                groups: 1,
                ..GroupingOptions::default()
            },
        );
        assert!(solution.assignment.iter().all(|&g| g == 0));
        assert_eq!(solution.cut_weight, 0);
    }

    #[test]
    fn deterministic_with_same_seed() {
        let g = two_communities();
        let options = GroupingOptions::default();
        assert_eq!(partition(&g, &options), partition(&g, &options));
    }

    #[test]
    fn empty_graph_is_fine() {
        let g = CommGraph::default();
        let solution = partition(&g, &GroupingOptions::default());
        assert!(solution.assignment.is_empty());
    }

    #[test]
    fn parallel_restarts_match_serial_bit_for_bit() {
        let g = two_communities();
        for threads in [2usize, 4] {
            for seed in [1u64, 99, 0xDEAD] {
                let serial = partition(
                    &g,
                    &GroupingOptions {
                        groups: 2,
                        seed,
                        restarts: 5,
                        threads: 1,
                        ..GroupingOptions::default()
                    },
                );
                let parallel = partition(
                    &g,
                    &GroupingOptions {
                        groups: 2,
                        seed,
                        restarts: 5,
                        threads,
                        ..GroupingOptions::default()
                    },
                );
                assert_eq!(serial.assignment, parallel.assignment);
                assert_eq!(serial.cut_weight, parallel.cut_weight);
                assert_eq!(
                    serial.objective.to_bits(),
                    parallel.objective.to_bits(),
                    "objective must be bit-identical at {threads} threads"
                );
            }
        }
    }

    /// Regression for the cooling bug: the annealing temperature schedule
    /// must depend only on the iteration count, not on how many sampled
    /// moves were skipped because the node was pinned.
    #[test]
    fn cooling_schedule_is_pin_independent() {
        let g = two_communities();
        let adjacency = g.adjacency();
        let mut options = GroupingOptions {
            groups: 2,
            balance_weight: 0.0,
            annealing_iterations: 500,
            ..GroupingOptions::default()
        };
        let start = vec![0, 0, 0, 1, 1, 1];
        let free = anneal_run(
            &g,
            &adjacency,
            &options,
            &[None; 6],
            &start,
            1.0,
            0,
            42,
            &mut NoopSink,
            &Progress::disabled(),
        );
        // Pin five of the six nodes: most iterations sample a pinned node.
        options.pinned = vec![(0, 0), (1, 0), (2, 0), (3, 1), (4, 1)];
        let pinned_table = pin_table(6, &options);
        let pinned = anneal_run(
            &g,
            &adjacency,
            &options,
            &pinned_table,
            &start,
            1.0,
            0,
            42,
            &mut NoopSink,
            &Progress::disabled(),
        );
        assert_eq!(
            free.final_temperature.to_bits(),
            pinned.final_temperature.to_bits(),
            "pins must not change the number of cooling steps"
        );
    }

    #[test]
    fn traced_parallel_run_keeps_all_restart_heartbeats() {
        let g = two_communities();
        let options = GroupingOptions {
            groups: 2,
            restarts: 3,
            threads: 2,
            annealing_iterations: 160,
            ..GroupingOptions::default()
        };
        let mut recorder = Recorder::new();
        let traced = partition_with(&g, &options, &mut recorder);
        assert_eq!(traced, partition(&g, &options), "tracing is an observer");
        let names: Vec<&str> = recorder.events().iter().map(|e| e.name.as_str()).collect();
        for restart in 0..3 {
            let tag = format!("anneal r{restart} ");
            assert!(
                names.iter().any(|n| n.starts_with(&tag)),
                "restart {restart} heartbeats must survive the merge: {names:?}"
            );
        }
    }
}
