//! Grouping optimisation: partition the communication graph into K
//! groups minimising inter-group communication.
//!
//! The paper lists the grouping criteria (§3.1): "preliminary scheduling
//! …, workload distribution, communication between process groups,
//! dependencies between process groups, and size of a process group". The
//! objective here combines the two quantitative ones: cut weight
//! (communication) plus a load-imbalance penalty (workload distribution).

use tut_trace::{Clock, NoopSink, SplitMix64, TraceSink};

use crate::commgraph::CommGraph;

/// Options for [`partition`].
#[derive(Clone, PartialEq, Debug)]
pub struct GroupingOptions {
    /// Number of groups to form.
    pub groups: usize,
    /// Relative weight of the load-imbalance penalty against the cut
    /// weight (0 = communication only).
    pub balance_weight: f64,
    /// Nodes pinned to a group (`Fixed` processes): `(node index, group)`.
    pub pinned: Vec<(usize, usize)>,
    /// Simulated-annealing iterations (0 disables the annealing pass).
    pub annealing_iterations: u32,
    /// RNG seed for the annealing pass (runs are reproducible).
    pub seed: u64,
}

impl Default for GroupingOptions {
    fn default() -> Self {
        GroupingOptions {
            groups: 4,
            balance_weight: 0.2,
            pinned: Vec::new(),
            annealing_iterations: 20_000,
            seed: 0x7075_7475,
        }
    }
}

/// A grouping result.
#[derive(Clone, PartialEq, Debug)]
pub struct GroupingSolution {
    /// `assignment[node] = group`.
    pub assignment: Vec<usize>,
    /// The solution's cut weight (inter-group communication).
    pub cut_weight: u64,
    /// The solution's combined objective value.
    pub objective: f64,
}

fn objective(graph: &CommGraph, assignment: &[usize], options: &GroupingOptions) -> f64 {
    let cut = graph.cut_weight(assignment) as f64;
    if options.balance_weight == 0.0 {
        return cut;
    }
    let mut loads = vec![0u64; options.groups];
    for (node, &group) in assignment.iter().enumerate() {
        // Unknown loads fall back to 1 so balance still means "node
        // count" for static graphs.
        loads[group] += graph.loads()[node].max(1);
    }
    let total: u64 = loads.iter().sum();
    let mean = total as f64 / options.groups as f64;
    let imbalance: f64 =
        loads.iter().map(|&l| (l as f64 - mean).abs()).sum::<f64>() / options.groups as f64;
    cut + options.balance_weight * imbalance
}

/// Partitions the graph into `options.groups` groups.
///
/// Three phases:
/// 1. **Greedy agglomeration** — start with every node alone, repeatedly
///    merge the cluster pair joined by the heaviest inter-cluster weight
///    until `groups` clusters remain (respecting pins: clusters pinned to
///    different groups never merge).
/// 2. **Refinement** — single-node moves while they improve the
///    objective (a Kernighan–Lin-style pass).
/// 3. **Annealing** — seeded simulated annealing over single-node moves,
///    keeping the best solution seen.
///
/// # Panics
///
/// Panics if `options.groups` is 0, a pin is out of range, or two pins
/// contradict each other.
pub fn partition(graph: &CommGraph, options: &GroupingOptions) -> GroupingSolution {
    partition_with(graph, options, &mut NoopSink)
}

/// [`partition`] with tracing: each phase becomes a host-clock span on
/// the `tool/explore.grouping` track, and the annealing pass reports
/// progress so long exploration runs are visible in a trace viewer.
pub fn partition_with<T: TraceSink>(
    graph: &CommGraph,
    options: &GroupingOptions,
    tracer: &mut T,
) -> GroupingSolution {
    assert!(options.groups > 0, "need at least one group");
    let track = tracer.track("tool/explore.grouping", Clock::Host);
    let mut phase_start = tracer.host_now_ns();
    let mut phase_span = |tracer: &mut T, name: &str| {
        let now = tracer.host_now_ns();
        tracer.span(track, name, phase_start, now.saturating_sub(phase_start));
        phase_start = now;
    };
    let n = graph.len();
    if n == 0 {
        return GroupingSolution {
            assignment: Vec::new(),
            cut_weight: 0,
            objective: 0.0,
        };
    }

    // Pin table: node -> Some(group).
    let mut pinned: Vec<Option<usize>> = vec![None; n];
    for &(node, group) in &options.pinned {
        assert!(node < n, "pinned node out of range");
        assert!(group < options.groups, "pinned group out of range");
        assert!(
            pinned[node].is_none() || pinned[node] == Some(group),
            "contradictory pins for node {node}"
        );
        pinned[node] = Some(group);
    }

    // ---- Phase 1: greedy agglomeration ---------------------------------
    // cluster id per node; clusters carry an optional pinned group.
    let mut cluster: Vec<usize> = (0..n).collect();
    let mut cluster_pin: Vec<Option<usize>> = pinned.clone();
    let mut cluster_count = n;
    while cluster_count > options.groups {
        // Heaviest inter-cluster edge whose clusters may merge.
        let mut best: Option<(usize, usize, u64)> = None;
        for (a, b, w) in graph.edges() {
            let (ca, cb) = (cluster[a], cluster[b]);
            if ca == cb {
                continue;
            }
            let compatible = match (cluster_pin[ca], cluster_pin[cb]) {
                (Some(x), Some(y)) => x == y,
                _ => true,
            };
            if compatible && w > best.map(|(_, _, bw)| bw).unwrap_or(0) {
                best = Some((ca, cb, w));
            }
        }
        let (ca, cb) = match best {
            Some((ca, cb, _)) => (ca, cb),
            None => {
                // No weighted merge available: merge two arbitrary
                // compatible clusters (unconnected components).
                let mut ids: Vec<usize> = cluster.clone();
                ids.sort_unstable();
                ids.dedup();
                let mut found = None;
                'outer: for (i, &ca) in ids.iter().enumerate() {
                    for &cb in &ids[i + 1..] {
                        let ok = match (cluster_pin[ca], cluster_pin[cb]) {
                            (Some(x), Some(y)) => x == y,
                            _ => true,
                        };
                        if ok {
                            found = Some((ca, cb));
                            break 'outer;
                        }
                    }
                }
                match found {
                    Some(pair) => pair,
                    None => break, // only mutually-pinned clusters remain
                }
            }
        };
        let merged_pin = cluster_pin[ca].or(cluster_pin[cb]);
        for c in cluster.iter_mut() {
            if *c == cb {
                *c = ca;
            }
        }
        cluster_pin[ca] = merged_pin;
        cluster_count -= 1;
    }
    phase_span(tracer, "agglomerate");

    // Normalise cluster ids to 0..groups, honouring pins.
    let mut ids: Vec<usize> = cluster.clone();
    ids.sort_unstable();
    ids.dedup();
    let mut id_to_group: std::collections::HashMap<usize, usize> = Default::default();
    let mut used = vec![false; options.groups];
    for &id in &ids {
        if let Some(g) = cluster_pin[id] {
            id_to_group.insert(id, g);
            used[g] = true;
        }
    }
    let mut next_free = 0usize;
    for &id in &ids {
        if id_to_group.contains_key(&id) {
            continue;
        }
        while next_free < options.groups && used[next_free] {
            next_free += 1;
        }
        let g = if next_free < options.groups {
            used[next_free] = true;
            next_free
        } else {
            // More clusters than groups (pin deadlock): overflow into
            // group 0.
            0
        };
        id_to_group.insert(id, g);
    }
    let mut assignment: Vec<usize> = cluster.iter().map(|c| id_to_group[c]).collect();

    // ---- Phase 2: greedy single-node refinement -------------------------
    let mut current = objective(graph, &assignment, options);
    let mut improved = true;
    while improved {
        improved = false;
        for node in 0..n {
            if pinned[node].is_some() {
                continue;
            }
            let original = assignment[node];
            for group in 0..options.groups {
                if group == original {
                    continue;
                }
                assignment[node] = group;
                let candidate = objective(graph, &assignment, options);
                if candidate < current {
                    current = candidate;
                    improved = true;
                } else {
                    assignment[node] = original;
                }
            }
        }
    }
    phase_span(tracer, "refine");

    // ---- Phase 3: simulated annealing -----------------------------------
    let mut best_assignment = assignment.clone();
    let mut best = current;
    if options.annealing_iterations > 0 && n > 1 && options.groups > 1 {
        let mut rng = SplitMix64::new(options.seed);
        let mut temperature = (best / n as f64).max(1.0);
        // Progress heartbeat: ~16 reports across the whole pass.
        let report_every = (options.annealing_iterations / 16).max(1);
        for iteration in 0..options.annealing_iterations {
            if tracer.enabled() && iteration % report_every == 0 {
                let now = tracer.host_now_ns();
                tracer.instant(
                    track,
                    &format!("anneal {iteration}/{}", options.annealing_iterations),
                    now,
                );
                tracer.counter(track, "grouping.objective", now, best);
            }
            let node = rng.next_index(n);
            if pinned[node].is_some() {
                continue;
            }
            let original = assignment[node];
            let group = rng.next_index(options.groups);
            if group == original {
                continue;
            }
            assignment[node] = group;
            let candidate = objective(graph, &assignment, options);
            let accept = candidate <= current
                || rng.next_f64() < ((current - candidate) / temperature).exp();
            if accept {
                current = candidate;
                if candidate < best {
                    best = candidate;
                    best_assignment = assignment.clone();
                }
            } else {
                assignment[node] = original;
            }
            temperature = (temperature * 0.9997).max(0.01);
        }
    }
    phase_span(tracer, "anneal");
    tracer.add("explore.grouping.runs", 1);

    GroupingSolution {
        cut_weight: graph.cut_weight(&best_assignment),
        objective: best,
        assignment: best_assignment,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Two 3-cliques joined by one light edge.
    fn two_communities() -> CommGraph {
        let mut g = CommGraph::default();
        for name in ["a0", "a1", "a2", "b0", "b1", "b2"] {
            g.intern(name);
        }
        g.add_edge(0, 1, 10);
        g.add_edge(1, 2, 10);
        g.add_edge(0, 2, 10);
        g.add_edge(3, 4, 10);
        g.add_edge(4, 5, 10);
        g.add_edge(3, 5, 10);
        g.add_edge(2, 3, 1);
        g
    }

    #[test]
    fn partition_finds_the_natural_cut() {
        let g = two_communities();
        let solution = partition(
            &g,
            &GroupingOptions {
                groups: 2,
                balance_weight: 0.0,
                ..GroupingOptions::default()
            },
        );
        assert_eq!(solution.cut_weight, 1, "only the bridge edge crosses");
        assert_eq!(solution.assignment[0], solution.assignment[1]);
        assert_eq!(solution.assignment[0], solution.assignment[2]);
        assert_eq!(solution.assignment[3], solution.assignment[4]);
        assert_ne!(solution.assignment[0], solution.assignment[3]);
    }

    #[test]
    fn pins_are_respected() {
        let g = two_communities();
        let solution = partition(
            &g,
            &GroupingOptions {
                groups: 2,
                balance_weight: 0.0,
                pinned: vec![(0, 1), (3, 0)],
                ..GroupingOptions::default()
            },
        );
        assert_eq!(solution.assignment[0], 1);
        assert_eq!(solution.assignment[3], 0);
    }

    #[test]
    fn single_group_collapses_everything() {
        let g = two_communities();
        let solution = partition(
            &g,
            &GroupingOptions {
                groups: 1,
                ..GroupingOptions::default()
            },
        );
        assert!(solution.assignment.iter().all(|&g| g == 0));
        assert_eq!(solution.cut_weight, 0);
    }

    #[test]
    fn deterministic_with_same_seed() {
        let g = two_communities();
        let options = GroupingOptions::default();
        assert_eq!(partition(&g, &options), partition(&g, &options));
    }

    #[test]
    fn empty_graph_is_fine() {
        let g = CommGraph::default();
        let solution = partition(&g, &GroupingOptions::default());
        assert!(solution.assignment.is_empty());
    }
}
