//! Mapping optimisation: assign process groups to platform instances.

use tut_profile::application::ProcessType;
use tut_profile::platform::ComponentKind;
use tut_profile::SystemModel;
use tut_profiling::ProfilingReport;
use tut_trace::perf;
use tut_trace::{Clock, NoopSink, Progress, TraceSink};
use tut_uml::ids::{ClassId, PropertyId};

use crate::checkpoint::{ExploreCheckpoint, ShardBest};
use crate::parallel;

/// Shard count of the checkpointed search ([`optimise_mapping_checkpointed`]).
///
/// Deliberately **fixed** rather than derived from `options.threads`:
/// the shard boundaries define the checkpoint units persisted in a
/// journal, so they must be identical no matter how many workers the
/// original or the resumed run had. 32 shards keep every shard coarse
/// enough to be worth a checkpoint yet plenty to feed any realistic
/// worker count.
pub const CHECKPOINT_SHARDS: usize = 32;

/// One processing element as the optimiser sees it.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct PeInfo {
    /// Clock frequency in MHz.
    pub frequency_mhz: u64,
    /// Element kind.
    pub kind: ComponentKind,
}

/// The abstract mapping problem: group workloads, group kinds, the
/// inter-group communication matrix, the elements, and their pairwise
/// communication distances.
#[derive(Clone, PartialEq, Debug)]
pub struct MappingProblem {
    /// Group names (for reports).
    pub group_names: Vec<String>,
    /// Per-group computation in cycles (measured on the reference run).
    pub group_cycles: Vec<u64>,
    /// Per-group declared `ProcessType`.
    pub group_kinds: Vec<ProcessType>,
    /// Symmetric inter-group signal counts.
    pub comm: Vec<Vec<u64>>,
    /// The candidate elements.
    pub pes: Vec<PeInfo>,
    /// `distance[a][b]`: abstract bus cost between elements (0 on the
    /// same element, 1 on a shared segment, +1 per bridge hop).
    pub distance: Vec<Vec<u64>>,
}

/// Options for [`optimise_mapping`].
#[derive(Clone, PartialEq, Debug)]
pub struct MappingOptions {
    /// Weight of a communication unit against a computation time unit.
    pub comm_weight: f64,
    /// Pinned assignments (`Fixed` mappings): `(group, element)`.
    pub pinned: Vec<(usize, usize)>,
    /// Worker threads for the search: 1 = serial, 0 = use
    /// `std::thread::available_parallelism`. The solution is bit-identical
    /// at every thread count.
    pub threads: usize,
}

impl Default for MappingOptions {
    fn default() -> Self {
        MappingOptions {
            // One signal crossing one segment costs about two
            // cycles/MHz time units — calibrated against the TUTMAC
            // co-simulation so the static estimate and the simulated
            // bottleneck agree on the winner.
            comm_weight: 2.0,
            pinned: Vec::new(),
            threads: 1,
        }
    }
}

/// A mapping result.
#[derive(Clone, PartialEq, Debug)]
pub struct MappingSolution {
    /// `assignment[group] = element`.
    pub assignment: Vec<usize>,
    /// The estimated cost (bottleneck time + weighted communication).
    pub cost: f64,
}

/// How much slower `kind` work runs on a `pe` of the given kind, relative
/// to its natural element (mirrors [`tut_platform::CostModel`]).
fn kind_penalty(group: ProcessType, pe: ComponentKind) -> f64 {
    match (group, pe) {
        (ProcessType::General, ComponentKind::General) => 1.0,
        (ProcessType::General, ComponentKind::Dsp) => 2.0,
        (ProcessType::General, ComponentKind::HwAccelerator) => 32.0,
        (ProcessType::Dsp, ComponentKind::Dsp) => 0.25,
        (ProcessType::Dsp, ComponentKind::General) => 1.0,
        (ProcessType::Dsp, ComponentKind::HwAccelerator) => 32.0,
        (ProcessType::Hardware, ComponentKind::HwAccelerator) => 1.0 / 16.0,
        (ProcessType::Hardware, _) => 1.0,
    }
}

/// The cost of one assignment: bottleneck computation time plus weighted
/// communication distance.
pub fn mapping_cost(
    problem: &MappingProblem,
    assignment: &[usize],
    options: &MappingOptions,
) -> f64 {
    cost_into(problem, assignment, options, &mut Vec::new())
}

/// [`mapping_cost`] with a caller-owned scratch buffer so the inner
/// search loop does not allocate per candidate.
fn cost_into(
    problem: &MappingProblem,
    assignment: &[usize],
    options: &MappingOptions,
    loads: &mut Vec<f64>,
) -> f64 {
    loads.clear();
    loads.resize(problem.pes.len(), 0.0);
    for (group, &pe) in assignment.iter().enumerate() {
        let penalty = kind_penalty(problem.group_kinds[group], problem.pes[pe].kind);
        let time = problem.group_cycles[group] as f64 * penalty
            / problem.pes[pe].frequency_mhz.max(1) as f64;
        loads[pe] += time;
    }
    let bottleneck = loads.iter().cloned().fold(0.0, f64::max);
    // A light total-load term: placements that waste cycles below the
    // bottleneck (e.g. general code parked on the accelerator) still pay.
    let total: f64 = loads.iter().sum();
    let mut comm = 0.0;
    for g in 0..assignment.len() {
        for h in (g + 1)..assignment.len() {
            let signals = problem.comm[g][h] + problem.comm[h][g];
            if signals == 0 {
                continue;
            }
            let distance = problem.distance[assignment[g]][assignment[h]] as f64;
            comm += signals as f64 * distance * options.comm_weight;
        }
    }
    bottleneck + 0.2 * total + comm
}

/// Precomputed, order-preserving evaluation tables for the exhaustive
/// search's inner loop. Three folds are hoisted out of the per-candidate
/// cost: the `(group, PE)` time matrix (penalty lookup plus multiply and
/// divide), the non-zero communication pairs as an ordered term list
/// (skipping the `O(groups²)` zero scan), and the per-PE load fold over
/// the *pinned prefix* — every group below the lowest index the odometer
/// can touch contributes a constant load, summed once.
///
/// Evaluation replays exactly [`cost_into`]'s float operations in
/// exactly its order (same values, same accumulation sequence, same
/// parenthesisation), so every candidate cost is **bit-identical** to
/// the reference — pinned by `hoisted_eval_is_bit_identical_to_cost_into`.
struct CostTables<'a> {
    problem: &'a MappingProblem,
    pes: usize,
    /// `time[group * pes + pe]`: load contribution of `group` on `pe`.
    time: Vec<f64>,
    /// `(g, h, signals)` for `g < h` with any traffic, in pair order.
    comm_terms: Vec<(usize, usize, f64)>,
    comm_weight: f64,
    /// First group index the search may reassign; groups below it are
    /// folded into `prefix_loads`.
    lo: usize,
    prefix_loads: Vec<f64>,
}

impl<'a> CostTables<'a> {
    fn new(
        problem: &'a MappingProblem,
        options: &MappingOptions,
        base: &[usize],
        free: &[usize],
    ) -> CostTables<'a> {
        let pes = problem.pes.len();
        let groups = problem.group_cycles.len();
        let mut time = vec![0.0; groups * pes];
        for group in 0..groups {
            for pe in 0..pes {
                let penalty = kind_penalty(problem.group_kinds[group], problem.pes[pe].kind);
                time[group * pes + pe] = problem.group_cycles[group] as f64 * penalty
                    / problem.pes[pe].frequency_mhz.max(1) as f64;
            }
        }
        let mut comm_terms = Vec::new();
        for g in 0..groups {
            for h in (g + 1)..groups {
                let signals = problem.comm[g][h] + problem.comm[h][g];
                if signals != 0 {
                    comm_terms.push((g, h, signals as f64));
                }
            }
        }
        let lo = free.iter().copied().min().unwrap_or(groups);
        let mut prefix_loads = vec![0.0; pes];
        for (group, &pe) in base.iter().enumerate().take(lo) {
            prefix_loads[pe] += time[group * pes + pe];
        }
        CostTables {
            problem,
            pes,
            time,
            comm_terms,
            comm_weight: options.comm_weight,
            lo,
            prefix_loads,
        }
    }

    /// [`cost_into`], replayed from the tables.
    fn eval(&self, assignment: &[usize], loads: &mut Vec<f64>) -> f64 {
        loads.clear();
        loads.extend_from_slice(&self.prefix_loads);
        for (group, &pe) in assignment.iter().enumerate().skip(self.lo) {
            loads[pe] += self.time[group * self.pes + pe];
        }
        let bottleneck = loads.iter().cloned().fold(0.0, f64::max);
        let total: f64 = loads.iter().sum();
        let mut comm = 0.0;
        for &(g, h, signals) in &self.comm_terms {
            let distance = self.problem.distance[assignment[g]][assignment[h]] as f64;
            comm += signals * distance * self.comm_weight;
        }
        bottleneck + 0.2 * total + comm
    }
}

/// Finds the cost-minimal assignment by exhaustive search. Pinned groups
/// are collapsed out of the enumeration, so the space is
/// `pes^free_groups` (the paper's case is `4^4 = 256` unpinned, `4^3`
/// with the accelerator pin). For larger systems use a coarser group
/// count first.
///
/// The search shards across `options.threads` scoped workers; the
/// reduction keeps the first strict minimum in enumeration order, so the
/// result is bit-identical at every thread count.
///
/// # Panics
///
/// Panics if the problem is inconsistent (mismatched lengths, pins out of
/// range) or the pin-collapsed search space exceeds `10^7` candidates.
pub fn optimise_mapping(problem: &MappingProblem, options: &MappingOptions) -> MappingSolution {
    optimise_mapping_with(problem, options, &mut NoopSink)
}

/// [`optimise_mapping`] with tracing: the search becomes a host-clock
/// span on the `tool/explore.mapping` track and the candidate count is
/// recorded as the `explore.mapping.candidates` counter metric.
pub fn optimise_mapping_with<T: TraceSink>(
    problem: &MappingProblem,
    options: &MappingOptions,
    tracer: &mut T,
) -> MappingSolution {
    optimise_mapping_observed(problem, options, tracer, &Progress::disabled())
}

/// [`optimise_mapping_with`] plus host observability: the search and each
/// worker shard become self-profiler frames (see [`tut_trace::perf`]),
/// and every finished shard ticks `progress` by its candidate count and
/// reports its shard-best cost. Observation never changes the solution.
pub fn optimise_mapping_observed<T: TraceSink>(
    problem: &MappingProblem,
    options: &MappingOptions,
    tracer: &mut T,
    progress: &Progress,
) -> MappingSolution {
    let _search_span = perf::enter_named("explore.mapping.search");
    let track = tracer.track("tool/explore.mapping", Clock::Host);
    let search_start = tracer.host_now_ns();
    let (base, free, total) = pin_collapse(problem, options);
    let pes = problem.pes.len();

    let threads = parallel::resolve_threads(options.threads);
    let best = if threads <= 1 {
        scan_shard(problem, options, &base, &free, 0..total, progress)
    } else {
        let shards = parallel::shard_ranges(total, threads);
        let per_shard: Vec<Option<(f64, u64)>> = std::thread::scope(|scope| {
            let handles: Vec<_> = shards
                .iter()
                .map(|range| {
                    let range = range.clone();
                    let (base, free) = (&base, &free);
                    scope.spawn(move || scan_shard(problem, options, base, free, range, progress))
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("mapping worker panicked"))
                .collect()
        });
        // Deterministic reduction: shards are in enumeration order and
        // each carries its first strict minimum, so keeping the first
        // shard that strictly improves reproduces the serial scan.
        let mut best: Option<(f64, u64)> = None;
        for candidate in per_shard.into_iter().flatten() {
            if best.map(|(cost, _)| candidate.0 < cost).unwrap_or(true) {
                best = Some(candidate);
            }
        }
        best
    };
    let (cost, winner) = best.expect("at least one assignment is feasible");

    let mut assignment = base;
    decode_candidate(winner, pes, &free, &mut assignment);
    let now = tracer.host_now_ns();
    tracer.span(
        track,
        "search",
        search_start,
        now.saturating_sub(search_start),
    );
    tracer.add("explore.mapping.candidates", total);
    MappingSolution { assignment, cost }
}

/// [`optimise_mapping_observed`] with a checkpoint sink: the enumeration
/// is cut into [`CHECKPOINT_SHARDS`] fixed shards (thread-count
/// independent, so the checkpoint units of an interrupted run line up
/// with the resumed one), each finished shard's best is reported to
/// `checkpoint`, and shards a previous run completed are replayed
/// instead of rescanned. Each shard's best is a pure function of the
/// problem and the shard range, and the reduction keeps the first strict
/// minimum in shard order, so the solution is bit-identical to the
/// uninterrupted observed search — at every thread count.
pub fn optimise_mapping_checkpointed<T: TraceSink, C: ExploreCheckpoint>(
    problem: &MappingProblem,
    options: &MappingOptions,
    tracer: &mut T,
    progress: &Progress,
    checkpoint: &C,
) -> MappingSolution {
    let _search_span = perf::enter_named("explore.mapping.search");
    let track = tracer.track("tool/explore.mapping", Clock::Host);
    let search_start = tracer.host_now_ns();
    let (base, free, total) = pin_collapse(problem, options);
    let pes = problem.pes.len();

    let shards = parallel::shard_ranges(total, CHECKPOINT_SHARDS);
    let shard_best = |shard: usize, range: std::ops::Range<u64>| -> ShardBest {
        if let Some(prev) = checkpoint.replay_mapping_shard(shard) {
            return prev; // no progress tick: the driver pre-accounts replays
        }
        let best = scan_shard(problem, options, &base, &free, range, progress);
        checkpoint.mapping_shard_done(shard, &best);
        best
    };
    let threads = parallel::resolve_threads(options.threads).min(shards.len().max(1));
    let per_shard: Vec<ShardBest> = if threads <= 1 {
        shards
            .iter()
            .enumerate()
            .map(|(shard, range)| shard_best(shard, range.clone()))
            .collect()
    } else {
        // Workers claim contiguous runs of shard indices; each slot is
        // filled exactly once, so the vector is in shard order.
        let worker_ranges = parallel::shard_ranges(shards.len() as u64, threads);
        let mut results: Vec<Option<ShardBest>> = vec![None; shards.len()];
        std::thread::scope(|scope| {
            let mut rest = results.as_mut_slice();
            for range in &worker_ranges {
                let len = (range.end - range.start) as usize;
                let (chunk, tail) = rest.split_at_mut(len);
                rest = tail;
                let start = range.start as usize;
                let (shards, shard_best) = (&shards, &shard_best);
                scope.spawn(move || {
                    for (offset, slot) in chunk.iter_mut().enumerate() {
                        let shard = start + offset;
                        *slot = Some(shard_best(shard, shards[shard].clone()));
                    }
                });
            }
        });
        results
            .into_iter()
            .map(|b| b.expect("every worker fills its slots"))
            .collect()
    };
    // Deterministic reduction, identical to the observed search: first
    // strict minimum in shard (= enumeration) order.
    let mut best: Option<(f64, u64)> = None;
    for candidate in per_shard.into_iter().flatten() {
        if best.map(|(cost, _)| candidate.0 < cost).unwrap_or(true) {
            best = Some(candidate);
        }
    }
    let (cost, winner) = best.expect("at least one assignment is feasible");

    let mut assignment = base;
    decode_candidate(winner, pes, &free, &mut assignment);
    let now = tracer.host_now_ns();
    tracer.span(
        track,
        "search",
        search_start,
        now.saturating_sub(search_start),
    );
    tracer.add("explore.mapping.candidates", total);
    MappingSolution { assignment, cost }
}

/// Validates the problem, collapses pins out of the enumeration, and
/// returns `(base assignment, free group indices, candidate count)`.
///
/// # Panics
///
/// Panics if the problem is inconsistent (mismatched lengths, pins out
/// of range) or the pin-collapsed space exceeds `10^7` candidates.
fn pin_collapse(
    problem: &MappingProblem,
    options: &MappingOptions,
) -> (Vec<usize>, Vec<usize>, u64) {
    let groups = problem.group_cycles.len();
    assert_eq!(problem.group_kinds.len(), groups);
    assert_eq!(problem.comm.len(), groups);
    let pes = problem.pes.len();
    assert!(pes > 0, "need at least one element");

    let mut pinned: Vec<Option<usize>> = vec![None; groups];
    for &(group, pe) in &options.pinned {
        assert!(group < groups && pe < pes, "pin out of range");
        pinned[group] = Some(pe);
    }
    // Collapse pins out of the odometer: enumerate only the free groups.
    let base: Vec<usize> = pinned.iter().map(|pin| pin.unwrap_or(0)).collect();
    let free: Vec<usize> = (0..groups).filter(|&g| pinned[g].is_none()).collect();
    let space = (pes as f64).powi(free.len() as i32);
    assert!(space <= 1e7, "search space too large: {space}");
    let total = (pes as u64).pow(free.len() as u32);
    (base, free, total)
}

/// Writes candidate `index` into `assignment`: free group `free[j]` gets
/// digit `j` of `index` in base `pes` (digit 0 varies fastest, matching
/// the odometer).
fn decode_candidate(index: u64, pes: usize, free: &[usize], assignment: &mut [usize]) {
    let mut rem = index;
    for &group in free {
        assignment[group] = (rem % pes as u64) as usize;
        rem /= pes as u64;
    }
}

/// [`best_in_range`] as one observed worker shard: a self-profiler frame
/// plus a progress tick (by candidate count) and shard-best report.
fn scan_shard(
    problem: &MappingProblem,
    options: &MappingOptions,
    base: &[usize],
    free: &[usize],
    range: std::ops::Range<u64>,
    progress: &Progress,
) -> Option<(f64, u64)> {
    let _shard_span = perf::enter_named("explore.mapping.shard");
    let candidates = range.end.saturating_sub(range.start);
    let best = best_in_range(problem, options, base, free, range);
    if let Some((cost, _)) = best {
        progress.record_best(cost);
    }
    progress.tick_n(candidates);
    best
}

/// Scans candidates `range` (a contiguous slice of the pin-collapsed
/// enumeration) and returns the first strict minimum as
/// `(cost, candidate index)`.
fn best_in_range(
    problem: &MappingProblem,
    options: &MappingOptions,
    base: &[usize],
    free: &[usize],
    range: std::ops::Range<u64>,
) -> Option<(f64, u64)> {
    let pes = problem.pes.len();
    let mut assignment = base.to_vec();
    decode_candidate(range.start, pes, free, &mut assignment);
    let tables = CostTables::new(problem, options, base, free);
    let mut loads = Vec::new();
    let mut best: Option<(f64, u64)> = None;
    for index in range {
        let cost = tables.eval(&assignment, &mut loads);
        if best.map(|(c, _)| cost < c).unwrap_or(true) {
            best = Some((cost, index));
        }
        // Odometer increment over the free digits, digit 0 fastest.
        for &group in free {
            assignment[group] += 1;
            if assignment[group] < pes {
                break;
            }
            assignment[group] = 0;
        }
    }
    best
}

/// Builds a [`MappingProblem`] from a system and its profiling report:
/// group cycles and communication from the report (Table 4), elements and
/// distances from the platform view.
///
/// Returns the problem plus the group classes and instance parts in
/// problem order, so a solution can be applied back with
/// [`crate::apply::apply_mapping`].
///
/// # Errors
///
/// Returns a message when the system has no groups or platform instances.
pub fn problem_from_system(
    system: &SystemModel,
    report: &ProfilingReport,
) -> Result<(MappingProblem, Vec<ClassId>, Vec<PropertyId>), String> {
    let app = system.application();
    let platform = system.platform();
    let groups = app.groups();
    if groups.is_empty() {
        return Err("system has no process groups".into());
    }
    let instances = platform.instances();
    if instances.is_empty() {
        return Err("platform has no component instances".into());
    }

    let group_names: Vec<String> = groups.iter().map(|g| g.name.clone()).collect();
    let group_cycles: Vec<u64> = group_names
        .iter()
        .map(|name| report.group(name).map(|g| g.cycles).unwrap_or(0))
        .collect();
    let group_kinds: Vec<ProcessType> = groups.iter().map(|g| g.process_type).collect();

    let n = group_names.len();
    let mut comm = vec![vec![0u64; n]; n];
    for (i, a) in group_names.iter().enumerate() {
        for (j, b) in group_names.iter().enumerate() {
            comm[i][j] = report.signal_matrix.between(a, b).unwrap_or(0);
        }
    }

    let pes: Vec<PeInfo> = instances
        .iter()
        .map(|i| PeInfo {
            frequency_mhz: i.frequency.max(1) as u64,
            kind: i.kind,
        })
        .collect();

    // Segment distances: BFS over the bridge graph.
    let segments: Vec<PropertyId> = platform.segments().iter().map(|s| s.part).collect();
    let seg_index = |part: PropertyId| segments.iter().position(|&s| s == part);
    let mut seg_adjacent = vec![Vec::new(); segments.len()];
    for bridge in platform.bridges() {
        if let (Some(a), Some(b)) = (seg_index(bridge.a), seg_index(bridge.b)) {
            seg_adjacent[a].push(b);
            seg_adjacent[b].push(a);
        }
    }
    let seg_distance = |from: usize, to: usize| -> u64 {
        if from == to {
            return 1;
        }
        let mut dist = vec![u64::MAX; segments.len()];
        dist[from] = 1;
        let mut queue = std::collections::VecDeque::from([from]);
        while let Some(s) = queue.pop_front() {
            for &next in &seg_adjacent[s] {
                if dist[next] == u64::MAX {
                    dist[next] = dist[s] + 1;
                    queue.push_back(next);
                }
            }
        }
        if dist[to] == u64::MAX {
            8 // disconnected: strongly discourage
        } else {
            dist[to]
        }
    };

    let pe_segment: Vec<Option<usize>> = instances
        .iter()
        .map(|i| platform.segment_of(i.part).and_then(seg_index))
        .collect();
    let mut distance = vec![vec![0u64; pes.len()]; pes.len()];
    for a in 0..pes.len() {
        for b in 0..pes.len() {
            if a == b {
                continue;
            }
            distance[a][b] = match (pe_segment[a], pe_segment[b]) {
                (Some(sa), Some(sb)) => seg_distance(sa, sb),
                _ => 8,
            };
        }
    }

    let group_classes: Vec<ClassId> = groups.iter().map(|g| g.class).collect();
    let instance_parts: Vec<PropertyId> = instances.iter().map(|i| i.part).collect();
    Ok((
        MappingProblem {
            group_names,
            group_cycles,
            group_kinds,
            comm,
            pes,
            distance,
        },
        group_classes,
        instance_parts,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_problem() -> MappingProblem {
        MappingProblem {
            group_names: vec!["g1".into(), "g2".into(), "hw".into()],
            group_cycles: vec![1000, 900, 50],
            group_kinds: vec![
                ProcessType::General,
                ProcessType::General,
                ProcessType::Hardware,
            ],
            comm: vec![vec![0, 100, 5], vec![100, 0, 0], vec![5, 0, 0]],
            pes: vec![
                PeInfo {
                    frequency_mhz: 50,
                    kind: ComponentKind::General,
                },
                PeInfo {
                    frequency_mhz: 50,
                    kind: ComponentKind::General,
                },
                PeInfo {
                    frequency_mhz: 100,
                    kind: ComponentKind::HwAccelerator,
                },
            ],
            distance: vec![vec![0, 1, 2], vec![1, 0, 2], vec![2, 2, 0]],
        }
    }

    #[test]
    fn hardware_group_lands_on_the_accelerator() {
        // Make the hardware workload heavy and communication-free so the
        // accelerator's 16x compute advantage decides the placement.
        let mut problem = small_problem();
        problem.group_cycles[2] = 20_000;
        problem.comm[0][2] = 0;
        problem.comm[2][0] = 0;
        let solution = optimise_mapping(&problem, &MappingOptions::default());
        assert_eq!(solution.assignment[2], 2, "hw group -> accelerator");
    }

    #[test]
    fn light_chatty_hardware_group_colocates_instead() {
        // The paper-scale case: tiny CRC workload, frequent signals. The
        // optimiser correctly prefers co-location over the accelerator
        // when communication dominates.
        let solution = optimise_mapping(&small_problem(), &MappingOptions::default());
        assert_eq!(
            solution.assignment[2], solution.assignment[0],
            "chatty light group follows its peer"
        );
    }

    #[test]
    fn heavy_communicators_colocate_when_comm_dominates() {
        let options = MappingOptions {
            comm_weight: 1000.0,
            ..MappingOptions::default()
        };
        let solution = optimise_mapping(&small_problem(), &options);
        assert_eq!(
            solution.assignment[0], solution.assignment[1],
            "g1/g2 exchange 200 signals; with heavy comm weight they co-locate"
        );
    }

    #[test]
    fn load_balances_when_comm_is_free() {
        let options = MappingOptions {
            comm_weight: 0.0,
            ..MappingOptions::default()
        };
        let solution = optimise_mapping(&small_problem(), &options);
        assert_ne!(
            solution.assignment[0], solution.assignment[1],
            "with free communication the two heavy groups split"
        );
    }

    #[test]
    fn pins_are_respected() {
        let options = MappingOptions {
            pinned: vec![(0, 1)],
            ..MappingOptions::default()
        };
        let solution = optimise_mapping(&small_problem(), &options);
        assert_eq!(solution.assignment[0], 1);
    }

    #[test]
    fn cost_penalises_general_work_on_the_accelerator() {
        let problem = small_problem();
        let options = MappingOptions::default();
        let on_cpu = mapping_cost(&problem, &[0, 1, 2], &options);
        let on_acc = mapping_cost(&problem, &[2, 1, 2], &options);
        assert!(on_acc > on_cpu);
    }

    /// The hoisted evaluation tables must reproduce the reference
    /// [`cost_into`] bit-for-bit on every assignment, for every pin set
    /// (which moves the folded prefix boundary) and at a non-trivial
    /// comm weight (which exercises the ordered term list).
    #[test]
    fn hoisted_eval_is_bit_identical_to_cost_into() {
        let mut problem = small_problem();
        problem.comm[1][2] = 37; // extra asymmetric traffic in the term list
        let options = MappingOptions {
            comm_weight: 0.73,
            ..MappingOptions::default()
        };
        let groups = problem.group_cycles.len();
        let pes = problem.pes.len();
        let mut seed = 0x2bad_f00du64;
        let mut rng = move || {
            seed = seed
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (seed >> 33) as usize
        };
        for free in [vec![0, 1, 2], vec![1, 2], vec![2], vec![]] {
            let mut base: Vec<usize> = (0..groups).map(|g| g % pes).collect();
            let tables = CostTables::new(&problem, &options, &base, &free);
            let mut loads = Vec::new();
            let mut reference = Vec::new();
            for _ in 0..200 {
                for &g in &free {
                    base[g] = rng() % pes;
                }
                let hoisted = tables.eval(&base, &mut loads);
                let plain = cost_into(&problem, &base, &options, &mut reference);
                assert_eq!(
                    hoisted.to_bits(),
                    plain.to_bits(),
                    "free {free:?}, assignment {base:?}: {hoisted} vs {plain}"
                );
            }
        }
    }

    #[test]
    fn parallel_search_is_bit_identical_to_serial() {
        let problem = small_problem();
        for pinned in [vec![], vec![(2usize, 2usize)], vec![(0, 1), (2, 2)]] {
            let serial = optimise_mapping(
                &problem,
                &MappingOptions {
                    pinned: pinned.clone(),
                    threads: 1,
                    ..MappingOptions::default()
                },
            );
            for threads in [2usize, 4] {
                let parallel = optimise_mapping(
                    &problem,
                    &MappingOptions {
                        pinned: pinned.clone(),
                        threads,
                        ..MappingOptions::default()
                    },
                );
                assert_eq!(serial.assignment, parallel.assignment);
                assert_eq!(
                    serial.cost.to_bits(),
                    parallel.cost.to_bits(),
                    "cost must be bit-identical at {threads} threads (pins {pinned:?})"
                );
            }
        }
    }

    #[test]
    fn pin_collapse_shrinks_the_enumerated_space() {
        let problem = small_problem();
        let mut tracer = tut_trace::Recorder::new();
        optimise_mapping_with(
            &problem,
            &MappingOptions {
                pinned: vec![(2, 2)],
                ..MappingOptions::default()
            },
            &mut tracer,
        );
        assert_eq!(
            tracer.metrics.counter("explore.mapping.candidates"),
            Some(9),
            "3 pes ^ 2 free groups — the pinned group is out of the odometer"
        );
    }
}
