//! The grouping objective, evaluated two ways: a full O(E) recompute and
//! an incremental O(degree) state machine.
//!
//! The partitioner's inner loops (refinement, annealing) evaluate the
//! objective once per candidate single-node move. Recomputing the cut
//! weight from scratch makes every move cost O(E); [`ObjectiveState`]
//! instead maintains the cut weight and per-group loads so a move costs
//! O(degree + groups). The two evaluations are **bit-identical**: the cut
//! is carried as an exact `u64` and the imbalance term is recomputed with
//! the same float expression over the same integer loads, so
//! `ObjectiveState::value` equals [`full_objective`] on every reachable
//! state (cross-checked by a debug assertion on every applied move).

use crate::commgraph::CommGraph;

/// The full O(E) objective recompute: cut weight plus a load-imbalance
/// penalty (`balance_weight` = 0 means communication only). This is the
/// reference implementation the incremental state is checked against.
pub fn full_objective(
    graph: &CommGraph,
    assignment: &[usize],
    groups: usize,
    balance_weight: f64,
) -> f64 {
    let cut = graph.cut_weight(assignment) as f64;
    if balance_weight == 0.0 {
        return cut;
    }
    let mut loads = vec![0u64; groups];
    for (node, &group) in assignment.iter().enumerate() {
        // Unknown loads fall back to 1 so balance still means "node
        // count" for static graphs.
        loads[group] += graph.loads()[node].max(1);
    }
    cut + balance_weight * imbalance(&loads)
}

/// The mean absolute deviation of the group loads — identical float
/// expression in the full and incremental paths.
fn imbalance(loads: &[u64]) -> f64 {
    let total: u64 = loads.iter().sum();
    let mean = total as f64 / loads.len() as f64;
    loads.iter().map(|&l| (l as f64 - mean).abs()).sum::<f64>() / loads.len() as f64
}

/// Incrementally maintained objective for single-node moves.
///
/// Holds the current assignment, the exact cut weight, and per-group
/// loads. [`ObjectiveState::peek_move`] prices a candidate move in
/// O(degree + groups) without mutating; [`ObjectiveState::apply_move`]
/// commits it and (in debug builds) cross-checks the incremental value
/// against [`full_objective`].
#[derive(Clone, Debug)]
pub struct ObjectiveState<'g> {
    graph: &'g CommGraph,
    adjacency: &'g [Vec<(usize, u64)>],
    groups: usize,
    balance_weight: f64,
    assignment: Vec<usize>,
    group_loads: Vec<u64>,
    cut: u64,
}

impl<'g> ObjectiveState<'g> {
    /// Builds the state for `assignment` (one O(E + n) pass).
    ///
    /// # Panics
    ///
    /// Panics if `assignment` length differs from the graph, `groups` is
    /// 0, or an assignment is out of range.
    pub fn new(
        graph: &'g CommGraph,
        adjacency: &'g [Vec<(usize, u64)>],
        assignment: Vec<usize>,
        groups: usize,
        balance_weight: f64,
    ) -> ObjectiveState<'g> {
        assert_eq!(assignment.len(), graph.len(), "one assignment per node");
        assert!(groups > 0, "need at least one group");
        let mut group_loads = vec![0u64; groups];
        for (node, &group) in assignment.iter().enumerate() {
            assert!(group < groups, "assignment out of range");
            group_loads[group] += graph.loads()[node].max(1);
        }
        let cut = graph.cut_weight(&assignment);
        ObjectiveState {
            graph,
            adjacency,
            groups,
            balance_weight,
            assignment,
            group_loads,
            cut,
        }
    }

    /// The current assignment.
    pub fn assignment(&self) -> &[usize] {
        &self.assignment
    }

    /// The group `node` currently belongs to.
    pub fn group_of(&self, node: usize) -> usize {
        self.assignment[node]
    }

    /// The number of groups this state was built with.
    pub fn groups(&self) -> usize {
        self.groups
    }

    /// The current exact cut weight.
    pub fn cut(&self) -> u64 {
        self.cut
    }

    /// The current objective value (bit-identical to
    /// [`full_objective`] on the current assignment).
    pub fn value(&self) -> f64 {
        let cut = self.cut as f64;
        if self.balance_weight == 0.0 {
            return cut;
        }
        cut + self.balance_weight * imbalance(&self.group_loads)
    }

    /// The external edge weight from `node` into each of the two groups
    /// involved in a move: `(to current group, to target group)`.
    fn external_weights(&self, node: usize, to: usize) -> (u64, u64) {
        let from = self.assignment[node];
        let (mut w_from, mut w_to) = (0u64, 0u64);
        for &(peer, w) in &self.adjacency[node] {
            let g = self.assignment[peer];
            if g == from {
                w_from += w;
            } else if g == to {
                w_to += w;
            }
        }
        (w_from, w_to)
    }

    /// The objective value the state would have after moving `node` to
    /// group `to`, computed in O(degree + groups) without mutating.
    ///
    /// # Panics
    ///
    /// Panics if `node` or `to` is out of range.
    pub fn peek_move(&self, node: usize, to: usize) -> f64 {
        let from = self.assignment[node];
        if to == from {
            return self.value();
        }
        let (w_from, w_to) = self.external_weights(node, to);
        // Edges into the old group become cut, edges into the new group
        // become internal; everything else is unchanged.
        let cut = (self.cut + w_from - w_to) as f64;
        if self.balance_weight == 0.0 {
            return cut;
        }
        let load = self.graph.loads()[node].max(1);
        let adjusted = |group: usize| {
            let l = self.group_loads[group];
            if group == from {
                l - load
            } else if group == to {
                l + load
            } else {
                l
            }
        };
        // Same summation order as `imbalance` so the result is
        // bit-identical to a post-move recompute.
        let total: u64 = (0..self.groups).map(&adjusted).sum();
        let mean = total as f64 / self.groups as f64;
        let imbalance = (0..self.groups)
            .map(|g| (adjusted(g) as f64 - mean).abs())
            .sum::<f64>()
            / self.groups as f64;
        cut + self.balance_weight * imbalance
    }

    /// Commits the move of `node` to group `to`. In debug builds the
    /// incrementally maintained value is cross-checked (bit-exactly)
    /// against the full recompute.
    ///
    /// # Panics
    ///
    /// Panics if `node` or `to` is out of range.
    pub fn apply_move(&mut self, node: usize, to: usize) {
        let from = self.assignment[node];
        if to == from {
            return;
        }
        let (w_from, w_to) = self.external_weights(node, to);
        self.cut = self.cut + w_from - w_to;
        let load = self.graph.loads()[node].max(1);
        self.group_loads[from] -= load;
        self.group_loads[to] += load;
        self.assignment[node] = to;
        debug_assert_eq!(
            self.value().to_bits(),
            full_objective(
                self.graph,
                &self.assignment,
                self.groups,
                self.balance_weight
            )
            .to_bits(),
            "incremental objective diverged from the full recompute"
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tut_trace::SplitMix64;

    fn random_graph(rng: &mut SplitMix64, nodes: usize) -> CommGraph {
        let mut g = CommGraph::default();
        for i in 0..nodes {
            let index = g.intern(&format!("n{i}"));
            g.set_load(index, rng.next_below(50));
        }
        for _ in 0..nodes * 3 {
            let a = rng.next_index(nodes);
            let b = rng.next_index(nodes);
            g.add_edge(a, b, 1 + rng.next_below(20));
        }
        g
    }

    #[test]
    fn incremental_matches_full_under_random_moves() {
        let mut rng = SplitMix64::new(0xC0FFEE);
        for case in 0..20 {
            let nodes = 4 + rng.next_index(10);
            let groups = 2 + rng.next_index(3);
            let graph = random_graph(&mut rng, nodes);
            let adjacency = graph.adjacency();
            let balance = if case % 2 == 0 { 0.0 } else { 0.3 };
            let assignment: Vec<usize> = (0..nodes).map(|_| rng.next_index(groups)).collect();
            let mut state = ObjectiveState::new(&graph, &adjacency, assignment, groups, balance);
            for _ in 0..100 {
                let node = rng.next_index(nodes);
                let to = rng.next_index(groups);
                let peeked = state.peek_move(node, to);
                state.apply_move(node, to);
                // peek == value after apply, bit for bit.
                assert_eq!(peeked.to_bits(), state.value().to_bits());
                assert_eq!(
                    state.value().to_bits(),
                    full_objective(&graph, state.assignment(), groups, balance).to_bits()
                );
                assert_eq!(state.cut(), graph.cut_weight(state.assignment()));
            }
        }
    }

    #[test]
    fn peek_on_same_group_is_identity() {
        let mut rng = SplitMix64::new(7);
        let graph = random_graph(&mut rng, 6);
        let adjacency = graph.adjacency();
        let state = ObjectiveState::new(&graph, &adjacency, vec![0, 1, 0, 1, 0, 1], 2, 0.2);
        assert_eq!(
            state.peek_move(3, 1).to_bits(),
            state.value().to_bits(),
            "moving a node to its own group changes nothing"
        );
    }
}
