//! EFSM → C translation: one module per functional component.

use std::fmt::Write as _;

use tut_uml::action::Statement;
use tut_uml::ids::ClassId;
use tut_uml::statemachine::{StateMachine, Trigger};
use tut_uml::Model;

use crate::expr::emit_expr;

fn sanitize(name: &str) -> String {
    name.chars()
        .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
        .collect()
}

/// Emits C statements for an action list, indented by `depth` levels.
fn emit_statements(model: &Model, statements: &[Statement], depth: usize, out: &mut String) {
    let indent = "    ".repeat(depth);
    for statement in statements {
        match statement {
            Statement::Assign { var, expr } => {
                let _ = writeln!(out, "{indent}ctx->var_{var} = {};", emit_expr(expr));
            }
            Statement::Send { port, signal, args } => {
                let signal_name = model.signal(*signal).name();
                if args.is_empty() {
                    let _ = writeln!(
                        out,
                        "{indent}tut_rt_send(self, \"{port}\", \"{signal_name}\", 0, NULL, NULL);"
                    );
                } else {
                    let values: Vec<String> = args.iter().map(emit_expr).collect();
                    let names: Vec<String> = model
                        .signal(*signal)
                        .params()
                        .iter()
                        .map(|p| format!("\"{}\"", p.name))
                        .collect();
                    let _ = writeln!(
                        out,
                        "{indent}tut_rt_send(self, \"{port}\", \"{signal_name}\", {}, (const tut_rt_value_t[]){{{}}}, (const char *const[]){{{}}});",
                        args.len(),
                        values.join(", "),
                        names.join(", ")
                    );
                }
            }
            Statement::If {
                cond,
                then_branch,
                else_branch,
            } => {
                let _ = writeln!(out, "{indent}if (tut_rt_truthy({})) {{", emit_expr(cond));
                emit_statements(model, then_branch, depth + 1, out);
                if else_branch.is_empty() {
                    let _ = writeln!(out, "{indent}}}");
                } else {
                    let _ = writeln!(out, "{indent}}} else {{");
                    emit_statements(model, else_branch, depth + 1, out);
                    let _ = writeln!(out, "{indent}}}");
                }
            }
            Statement::While {
                cond,
                body,
                max_iter,
            } => {
                let _ = writeln!(out, "{indent}{{");
                let _ = writeln!(out, "{indent}    uint32_t tut_guard = 0;");
                let _ = writeln!(
                    out,
                    "{indent}    while (tut_rt_truthy({})) {{",
                    emit_expr(cond)
                );
                let _ = writeln!(
                    out,
                    "{indent}        if (tut_guard++ >= {max_iter}u) tut_rt_fatal(\"loop bound exceeded\");"
                );
                emit_statements(model, body, depth + 2, out);
                let _ = writeln!(out, "{indent}    }}");
                let _ = writeln!(out, "{indent}}}");
            }
            Statement::Compute { class, amount } => {
                let _ = writeln!(
                    out,
                    "{indent}tut_rt_compute(self, \"{}\", tut_rt_as_int({}));",
                    class.name(),
                    emit_expr(amount)
                );
            }
            Statement::Log { message, args } => {
                // Host-side rendering keeps the runtime simple: integer
                // argument values are appended after the template text.
                let rendered = message.replace('"', "'");
                if args.is_empty() {
                    let _ = writeln!(out, "{indent}tut_rt_user_log(self, \"{rendered}\");");
                } else {
                    let _ = writeln!(
                        out,
                        "{indent}{{ char tut_msg[256]; int tut_off = snprintf(tut_msg, sizeof tut_msg, \"{rendered}\");"
                    );
                    for arg in args {
                        let _ = writeln!(
                            out,
                            "{indent}  tut_off += snprintf(tut_msg + tut_off, sizeof tut_msg - (size_t)tut_off, \" %lld\", (long long)tut_rt_as_int({}));",
                            emit_expr(arg)
                        );
                    }
                    let _ = writeln!(
                        out,
                        "{indent}  (void)tut_off; tut_rt_user_log(self, tut_msg); }}"
                    );
                }
            }
            Statement::SetTimer { name, duration } => {
                let _ = writeln!(
                    out,
                    "{indent}tut_rt_set_timer(self, \"{name}\", tut_rt_as_int({}));",
                    emit_expr(duration)
                );
            }
            Statement::CancelTimer { name } => {
                let _ = writeln!(out, "{indent}tut_rt_cancel_timer(self, \"{name}\");");
            }
            Statement::Count { counter, amount } => {
                let _ = writeln!(
                    out,
                    "{indent}tut_rt_count(self, \"{counter}\", tut_rt_as_int({}));",
                    emit_expr(amount)
                );
            }
        }
    }
}

/// Emits the header (`<component>.h`) for a functional component.
pub fn emit_header(model: &Model, class: ClassId) -> String {
    let class_data = model.class(class);
    let name = sanitize(class_data.name()).to_lowercase();
    let sm = model.state_machine(
        class_data
            .behavior()
            .expect("emit_header requires an active class"),
    );
    let guard = format!("TUT_GEN_{}_H", name.to_uppercase());
    let mut out = crate::runtime::banner(model.name());
    let _ = writeln!(out, "#ifndef {guard}");
    let _ = writeln!(out, "#define {guard}");
    let _ = writeln!(out);
    let _ = writeln!(out, "#include \"tut_rt.h\"");
    let _ = writeln!(out);
    let _ = writeln!(out, "enum {{");
    for (id, state) in sm.states() {
        let _ = writeln!(
            out,
            "    {}_STATE_{} = {},",
            name.to_uppercase(),
            sanitize(state.name()),
            id.index()
        );
    }
    let _ = writeln!(out, "}};");
    let _ = writeln!(out);
    let _ = writeln!(out, "typedef struct {{");
    let _ = writeln!(out, "    int state;");
    for var in sm.variables() {
        let _ = writeln!(out, "    tut_rt_value_t var_{};", var.name);
    }
    let _ = writeln!(out, "}} {name}_ctx_t;");
    let _ = writeln!(out);
    let _ = writeln!(
        out,
        "void {name}_init({name}_ctx_t *ctx, tut_rt_process_t *self);"
    );
    let _ = writeln!(
        out,
        "void {name}_dispatch(void *raw_ctx, tut_rt_process_t *self, const tut_rt_signal_t *sig);"
    );
    let _ = writeln!(out);
    let _ = writeln!(out, "#endif /* {guard} */");
    out
}

/// Emits the implementation (`<component>.c`) for a functional component.
pub fn emit_source(model: &Model, class: ClassId) -> String {
    let class_data = model.class(class);
    let name = sanitize(class_data.name()).to_lowercase();
    let upper = name.to_uppercase();
    let sm_id = class_data
        .behavior()
        .expect("emit_source requires an active class");
    let sm = model.state_machine(sm_id);

    let mut out = crate::runtime::banner(model.name());
    let _ = writeln!(out, "#include \"{name}.h\"");
    let _ = writeln!(out);

    // Per-state entry functions.
    for (id, state) in sm.states() {
        let state_name = sanitize(state.name());
        let _ = writeln!(
            out,
            "static void {name}_enter_{state_name}({name}_ctx_t *ctx, tut_rt_process_t *self) {{"
        );
        let _ = writeln!(out, "    ctx->state = {upper}_STATE_{state_name};");
        let _ = writeln!(out, "    (void)ctx; (void)self;");
        emit_statements(model, state.entry(), 1, &mut out);
        let _ = writeln!(out, "}}");
        let _ = writeln!(out);
        let _ = id;
    }

    // Completion-transition loop (omitted entirely when the machine has
    // no completion transitions, keeping -Wunused-label clean).
    let has_completions = sm
        .transitions()
        .any(|(_, t)| matches!(t.trigger(), Trigger::Completion));
    let _ = writeln!(
        out,
        "static void {name}_completions({name}_ctx_t *ctx, tut_rt_process_t *self) {{"
    );
    if !has_completions {
        let _ = writeln!(out, "    (void)ctx; (void)self;");
        let _ = writeln!(out, "}}");
        let _ = writeln!(out);
        return emit_source_rest(model, class, sm, &name, &upper, out);
    }
    let _ = writeln!(
        out,
        "    for (int tut_round = 0; tut_round < 64; tut_round++) {{"
    );
    let _ = writeln!(out, "        switch (ctx->state) {{");
    for (state_id, state) in sm.states() {
        let completions: Vec<_> = sm
            .transitions_from(state_id)
            .filter(|(_, t)| matches!(t.trigger(), Trigger::Completion))
            .collect();
        if completions.is_empty() {
            continue;
        }
        let _ = writeln!(
            out,
            "        case {upper}_STATE_{}: {{",
            sanitize(state.name())
        );
        for (_, transition) in completions {
            let guard = transition
                .guard()
                .map(|g| format!("tut_rt_truthy({})", emit_expr(g)))
                .unwrap_or_else(|| "1".to_owned());
            let target = sanitize(sm.state(transition.target()).name());
            let _ = writeln!(out, "            if ({guard}) {{");
            emit_statements(model, transition.actions(), 4, &mut out);
            let _ = writeln!(out, "                {name}_enter_{target}(ctx, self);");
            let _ = writeln!(out, "                goto tut_continue;");
            let _ = writeln!(out, "            }}");
        }
        let _ = writeln!(out, "            return;");
        let _ = writeln!(out, "        }}");
    }
    let _ = writeln!(out, "        default: return;");
    let _ = writeln!(out, "        }}");
    let _ = writeln!(out, "        tut_continue:;");
    let _ = writeln!(out, "    }}");
    let _ = writeln!(out, "}}");
    let _ = writeln!(out);
    emit_source_rest(model, class, sm, &name, &upper, out)
}

/// Emits the `_init` and `_dispatch` functions (shared tail of
/// [`emit_source`]).
fn emit_source_rest(
    model: &Model,
    class: ClassId,
    sm: &StateMachine,
    name: &str,
    upper: &str,
    mut out: String,
) -> String {
    let _ = class;
    // Init: variables, initial state entry, completion transitions.
    let _ = writeln!(
        out,
        "void {name}_init({name}_ctx_t *ctx, tut_rt_process_t *self) {{"
    );
    for var in sm.variables() {
        let _ = writeln!(
            out,
            "    ctx->var_{} = {};",
            var.name,
            crate::expr::emit_expr(&tut_uml::action::Expr::Lit(var.init.clone()))
        );
    }
    let initial = sm
        .initial()
        .expect("checked machines have an initial state");
    let _ = writeln!(
        out,
        "    {name}_enter_{}(ctx, self);",
        sanitize(sm.state(initial).name())
    );
    let _ = writeln!(out, "    {name}_completions(ctx, self);");
    let _ = writeln!(out, "}}");
    let _ = writeln!(out);

    // Dispatch: switch on state, match signal/timer triggers in order.
    let _ = writeln!(
        out,
        "void {name}_dispatch(void *raw_ctx, tut_rt_process_t *self, const tut_rt_signal_t *sig) {{"
    );
    let _ = writeln!(out, "    {name}_ctx_t *ctx = ({name}_ctx_t *)raw_ctx;");
    let _ = writeln!(out, "    switch (ctx->state) {{");
    for (state_id, state) in sm.states() {
        let triggered: Vec<_> = sm
            .transitions_from(state_id)
            .filter(|(_, t)| !matches!(t.trigger(), Trigger::Completion))
            .collect();
        let _ = writeln!(out, "    case {upper}_STATE_{}: {{", sanitize(state.name()));
        for (_, transition) in triggered {
            let match_expr = match transition.trigger() {
                Trigger::Signal(sig_id) => format!(
                    "!sig->is_timer && strcmp(sig->name, \"{}\") == 0",
                    model.signal(*sig_id).name()
                ),
                Trigger::Timer(timer) => {
                    format!("sig->is_timer && strcmp(sig->name, \"{timer}\") == 0")
                }
                Trigger::Completion => unreachable!("filtered above"),
            };
            let guard = transition
                .guard()
                .map(|g| format!(" && tut_rt_truthy({})", emit_expr(g)))
                .unwrap_or_default();
            let target = sanitize(sm.state(transition.target()).name());
            let _ = writeln!(out, "        if (({match_expr}){guard}) {{");
            emit_statements(model, transition.actions(), 3, &mut out);
            let _ = writeln!(out, "            {name}_enter_{target}(ctx, self);");
            let _ = writeln!(out, "            {name}_completions(ctx, self);");
            let _ = writeln!(out, "            return;");
            let _ = writeln!(out, "        }}");
        }
        let _ = writeln!(out, "        break;");
        let _ = writeln!(out, "    }}");
    }
    let _ = writeln!(out, "    default: break;");
    let _ = writeln!(out, "    }}");
    let _ = writeln!(
        out,
        "    fprintf(tut_rt_log(), \"DROP %llu %s %s\\n\", (unsigned long long)tut_rt_now, self->name, sig->name);"
    );
    let _ = writeln!(out, "}}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use tut_uml::action::{BinOp, CostClass, Expr, Statement};
    use tut_uml::value::{DataType, Value};

    fn sample_model() -> (Model, ClassId) {
        let mut m = Model::new("Gen");
        let sig = m.add_signal("Ping");
        m.signal_mut(sig).add_param("n", DataType::Int);
        let class = m.add_class("Echo");
        let port = m.add_port(class, "io");
        m.port_mut(port).add_provided(sig);
        m.port_mut(port).add_required(sig);

        let mut sm = StateMachine::new("EchoB");
        sm.add_variable("count", DataType::Int, Value::Int(0));
        let idle = sm.add_state("Idle");
        let busy = sm.add_state_with_entry(
            "Busy",
            vec![Statement::Log {
                message: "busy now".into(),
                args: vec![Expr::var("count")],
            }],
        );
        sm.set_initial(idle);
        sm.add_transition(
            idle,
            busy,
            Trigger::Signal(sig),
            Some(Expr::param("n").bin(BinOp::Gt, Expr::int(0))),
            vec![
                Statement::Assign {
                    var: "count".into(),
                    expr: Expr::var("count").bin(BinOp::Add, Expr::int(1)),
                },
                Statement::Compute {
                    class: CostClass::Dsp,
                    amount: Expr::int(32),
                },
                Statement::Send {
                    port: "io".into(),
                    signal: sig,
                    args: vec![Expr::var("count")],
                },
                Statement::SetTimer {
                    name: "cooldown".into(),
                    duration: Expr::int(100),
                },
            ],
        );
        sm.add_transition(busy, idle, Trigger::Timer("cooldown".into()), None, vec![]);
        sm.add_transition(
            busy,
            idle,
            Trigger::Completion,
            Some(Expr::var("count").bin(BinOp::Gt, Expr::int(10))),
            vec![Statement::CancelTimer {
                name: "cooldown".into(),
            }],
        );
        m.add_state_machine(class, sm);
        (m, class)
    }

    #[test]
    fn header_declares_context_and_functions() {
        let (m, class) = sample_model();
        let h = emit_header(&m, class);
        assert!(h.contains("typedef struct"));
        assert!(h.contains("tut_rt_value_t var_count;"));
        assert!(h.contains("ECHO_STATE_Idle"));
        assert!(h.contains("void echo_init"));
        assert!(h.contains("void echo_dispatch"));
        assert!(h.contains("#ifndef TUT_GEN_ECHO_H"));
    }

    #[test]
    fn source_contains_all_semantic_pieces() {
        let (m, class) = sample_model();
        let c = emit_source(&m, class);
        // Trigger matching.
        assert!(c.contains("strcmp(sig->name, \"Ping\") == 0"));
        assert!(c.contains("sig->is_timer && strcmp(sig->name, \"cooldown\") == 0"));
        // Guard.
        assert!(c.contains("tut_rt_param(sig, \"n\")"));
        // Actions.
        assert!(c.contains("ctx->var_count ="));
        assert!(c.contains("tut_rt_compute(self, \"dsp\""));
        assert!(c.contains("tut_rt_send(self, \"io\", \"Ping\""));
        assert!(c.contains("tut_rt_set_timer(self, \"cooldown\""));
        assert!(c.contains("tut_rt_cancel_timer(self, \"cooldown\")"));
        // States, entry, completion loop, drop fallback.
        assert!(c.contains("echo_enter_Busy"));
        assert!(c.contains("echo_completions"));
        assert!(c.contains("DROP"));
    }

    #[test]
    fn generation_is_deterministic() {
        let (m, class) = sample_model();
        assert_eq!(emit_source(&m, class), emit_source(&m, class));
        assert_eq!(emit_header(&m, class), emit_header(&m, class));
    }
}
