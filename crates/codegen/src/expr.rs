//! Action-language expression → C translation.

use tut_uml::action::{BinOp, Builtin, Expr, UnaryOp};
use tut_uml::value::Value;

/// Emits the C form of an expression.
///
/// * Variables become `ctx->var_<name>`.
/// * Signal parameters become `tut_rt_param(sig, <index by name>)`
///   accessors: ints/bools read `.i`, buffers `.b`.
/// * Builtins call their `tut_rt_*` runtime equivalents.
///
/// Buffers are runtime-managed `tut_bytes_t` values; the runtime owns
/// reference counting, so expressions can nest freely.
pub fn emit_expr(expr: &Expr) -> String {
    match expr {
        Expr::Lit(value) => emit_literal(value),
        Expr::Var(name) => format!("ctx->var_{name}"),
        Expr::Param(name) => format!("tut_rt_param(sig, \"{name}\")"),
        Expr::Unary(op, e) => match op {
            UnaryOp::Not => format!("(!tut_rt_truthy({}))", emit_expr(e)),
            UnaryOp::Neg => format!("tut_rt_int(-(tut_rt_as_int({})))", emit_expr(e)),
        },
        Expr::Binary(op, lhs, rhs) => emit_binary(*op, lhs, rhs),
        Expr::Call(builtin, args) => {
            let rendered: Vec<String> = args.iter().map(emit_expr).collect();
            format!("{}({})", builtin_function(*builtin), rendered.join(", "))
        }
    }
}

fn emit_literal(value: &Value) -> String {
    match value {
        Value::Int(i) => format!("tut_rt_int(INT64_C({i}))"),
        Value::Bool(b) => format!("tut_rt_bool({})", if *b { 1 } else { 0 }),
        Value::Bytes(bytes) => {
            if bytes.is_empty() {
                "tut_rt_bytes_empty()".to_owned()
            } else {
                let data: Vec<String> = bytes.iter().map(|b| format!("0x{b:02x}")).collect();
                format!(
                    "tut_rt_bytes_lit((const uint8_t[]){{{}}}, {})",
                    data.join(", "),
                    bytes.len()
                )
            }
        }
        Value::Str(s) => format!("tut_rt_str({:?})", s),
    }
}

fn emit_binary(op: BinOp, lhs: &Expr, rhs: &Expr) -> String {
    let l = emit_expr(lhs);
    let r = emit_expr(rhs);
    match op {
        // `+` dispatches on runtime type (int add vs buffer concat),
        // mirroring the interpreter.
        BinOp::Add => format!("tut_rt_add({l}, {r})"),
        BinOp::And => format!("tut_rt_bool(tut_rt_truthy({l}) && tut_rt_truthy({r}))"),
        BinOp::Or => format!("tut_rt_bool(tut_rt_truthy({l}) || tut_rt_truthy({r}))"),
        BinOp::Eq => format!("tut_rt_bool(tut_rt_equal({l}, {r}))"),
        BinOp::Ne => format!("tut_rt_bool(!tut_rt_equal({l}, {r}))"),
        BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge => format!(
            "tut_rt_bool(tut_rt_as_int({l}) {} tut_rt_as_int({r}))",
            op.token()
        ),
        BinOp::Div => format!("tut_rt_int(tut_rt_div(tut_rt_as_int({l}), tut_rt_as_int({r})))"),
        BinOp::Mod => format!("tut_rt_int(tut_rt_mod(tut_rt_as_int({l}), tut_rt_as_int({r})))"),
        _ => format!(
            "tut_rt_int(tut_rt_as_int({l}) {} tut_rt_as_int({r}))",
            op.token()
        ),
    }
}

fn builtin_function(builtin: Builtin) -> &'static str {
    match builtin {
        Builtin::Len => "tut_rt_len",
        Builtin::Slice => "tut_rt_slice",
        Builtin::Concat => "tut_rt_concat",
        Builtin::ByteAt => "tut_rt_byte_at",
        Builtin::PackInt => "tut_rt_pack_int",
        Builtin::UnpackInt => "tut_rt_unpack_int",
        Builtin::Crc32 => "tut_rt_crc32",
        Builtin::Min => "tut_rt_min",
        Builtin::Max => "tut_rt_max",
        Builtin::Fill => "tut_rt_fill",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tut_uml::action::Expr as E;

    #[test]
    fn literals() {
        assert_eq!(emit_expr(&E::int(5)), "tut_rt_int(INT64_C(5))");
        assert_eq!(emit_expr(&E::bool(true)), "tut_rt_bool(1)");
        assert_eq!(
            emit_expr(&E::Lit(Value::Bytes(vec![0xab, 0x01]))),
            "tut_rt_bytes_lit((const uint8_t[]){0xab, 0x01}, 2)"
        );
        assert_eq!(
            emit_expr(&E::Lit(Value::Bytes(vec![]))),
            "tut_rt_bytes_empty()"
        );
    }

    #[test]
    fn variables_and_params() {
        assert_eq!(emit_expr(&E::var("count")), "ctx->var_count");
        assert_eq!(emit_expr(&E::param("pdu")), "tut_rt_param(sig, \"pdu\")");
    }

    #[test]
    fn arithmetic_and_comparison() {
        let e = E::var("x").bin(BinOp::Mul, E::int(2));
        assert_eq!(
            emit_expr(&e),
            "tut_rt_int(tut_rt_as_int(ctx->var_x) * tut_rt_as_int(tut_rt_int(INT64_C(2))))"
        );
        let cmp = E::var("x").bin(BinOp::Le, E::int(9));
        assert!(emit_expr(&cmp).contains("<="));
    }

    #[test]
    fn guarded_division() {
        let e = E::int(6).bin(BinOp::Div, E::var("d"));
        assert!(emit_expr(&e).contains("tut_rt_div"));
    }

    #[test]
    fn builtin_calls() {
        let e = E::call(Builtin::Crc32, vec![E::var("buf")]);
        assert_eq!(emit_expr(&e), "tut_rt_crc32(ctx->var_buf)");
        let e = E::call(Builtin::Slice, vec![E::var("b"), E::int(0), E::int(4)]);
        assert!(emit_expr(&e).starts_with("tut_rt_slice("));
    }

    #[test]
    fn logic_short_circuits_in_c() {
        let e = E::bool(false).bin(BinOp::And, E::var("x"));
        let c = emit_expr(&e);
        assert!(c.contains("&&"), "{c}");
    }
}
