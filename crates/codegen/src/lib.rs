//! Automatic C code generation from TUT-Profile application models.
//!
//! The paper's flow (Figure 2) generates "Application C code" from the UML
//! model, complements it with "run-time libraries & custom functions"
//! (the log instrumentation), and compiles it into the executable
//! application. This crate reproduces that stage:
//!
//! * [`runtime`] — the run-time library header (`tut_rt.h`): process
//!   contexts, signal descriptors, queue operations, timers, and the
//!   logging hooks that write the simulation log-file records.
//! * [`expr`] — the action-language → C expression translator.
//! * [`machine`] — the EFSM → C translator: one `…_dispatch` function per
//!   functional component, switching over states and triggers.
//! * [`project`] — whole-system generation: one `.h`/`.c` pair per
//!   `«ApplicationComponent»`, a `main.c` harness, and a `Makefile`.
//!
//! The generated code is valid C99 (compile-checked in the integration
//! tests when a C compiler is available) and is *observationally aligned*
//! with the interpreter in `tut-sim`: both implement the same
//! run-to-completion semantics over the same AST.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod expr;
pub mod machine;
pub mod project;
pub mod runtime;

pub use project::{dry_run_diagnostic, generate_project, GeneratedFile};
