//! Whole-system code generation.

use std::fmt::Write as _;

use tut_profile::SystemModel;
use tut_uml::instances::{InstanceTree, RoutingTable};

use crate::machine::{emit_header, emit_source};
use crate::runtime::{banner, RUNTIME_HEADER};

/// One generated output file.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct GeneratedFile {
    /// Relative file name (e.g. `management.c`).
    pub name: String,
    /// Full file contents.
    pub contents: String,
}

/// Errors produced by project generation.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum CodegenError {
    /// The model has no `«Application»` top-level class.
    NoApplication,
    /// Instance unfolding failed (cyclic composition).
    BadStructure(String),
}

impl std::fmt::Display for CodegenError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CodegenError::NoApplication => {
                f.write_str("model has no \u{ab}Application\u{bb} top-level class")
            }
            CodegenError::BadStructure(msg) => write!(f, "bad structure: {msg}"),
        }
    }
}

impl std::error::Error for CodegenError {}

impl CodegenError {
    /// Stable diagnostic code for this error (`E0401` / `E0402`).
    pub fn code(&self) -> &'static str {
        match self {
            CodegenError::NoApplication => "E0401",
            CodegenError::BadStructure(_) => "E0402",
        }
    }
}

fn sanitize(name: &str) -> String {
    name.chars()
        .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
        .collect()
}

/// Runs only the structural prerequisites of [`generate_project`] and
/// returns the diagnostic a dry run would report, if any. Both the cold
/// `repro check` pipeline and the incremental query engine go through
/// this one function so their findings are byte-identical.
pub fn dry_run_diagnostic(system: &SystemModel) -> Option<tut_diag::Diagnostic> {
    generate_project(system)
        .err()
        .map(|e| tut_diag::Diagnostic::error(e.code(), e.to_string()))
}

/// Generates the complete C project for a system: `tut_rt.h`, one
/// `.h`/`.c` pair per `«ApplicationComponent»`, a `main.c` harness with
/// the process registry and the signal wiring derived from the model's
/// composite structure, and a `Makefile`.
///
/// # Errors
///
/// Returns [`CodegenError`] when the model has no application top or its
/// composition is cyclic.
pub fn generate_project(system: &SystemModel) -> Result<Vec<GeneratedFile>, CodegenError> {
    let app = system.application();
    let top = app.top().ok_or(CodegenError::NoApplication)?;
    let tree = InstanceTree::build(&system.model, top)
        .map_err(|e| CodegenError::BadStructure(e.to_string()))?;
    let routing = RoutingTable::build(&system.model, &tree);
    let model = &system.model;

    let mut files = vec![GeneratedFile {
        name: "tut_rt.h".into(),
        contents: RUNTIME_HEADER.to_owned(),
    }];

    // One module per distinct active class that is actually instantiated.
    let mut classes: Vec<_> = tree
        .active_instances(model)
        .into_iter()
        .map(|i| tree.node(i).class)
        .collect();
    classes.sort();
    classes.dedup();
    for &class in &classes {
        let module = sanitize(model.class(class).name()).to_lowercase();
        files.push(GeneratedFile {
            name: format!("{module}.h"),
            contents: emit_header(model, class),
        });
        files.push(GeneratedFile {
            name: format!("{module}.c"),
            contents: emit_source(model, class),
        });
    }

    // main.c: contexts, registration, wiring, init, run. It is the one
    // translation unit that carries the runtime implementation.
    let mut main_c = banner(model.name());
    let _ = writeln!(main_c, "#define TUT_RT_IMPLEMENTATION");
    let _ = writeln!(main_c, "#include \"tut_rt.h\"");
    for &class in &classes {
        let module = sanitize(model.class(class).name()).to_lowercase();
        let _ = writeln!(main_c, "#include \"{module}.h\"");
    }
    let _ = writeln!(main_c);
    let actives = tree.active_instances(model);
    for &instance in &actives {
        let node = tree.node(instance);
        let module = sanitize(model.class(node.class).name()).to_lowercase();
        let ident = sanitize(&tree.display_name(model, instance));
        let display = tree.display_name(model, instance);
        let _ = writeln!(main_c, "static {module}_ctx_t ctx_{ident};");
        let _ = writeln!(
            main_c,
            "static tut_rt_process_t proc_{ident} = {{ \"{display}\", &ctx_{ident}, {module}_dispatch }};"
        );
    }
    let _ = writeln!(main_c);
    let _ = writeln!(main_c, "int main(void) {{");
    for &instance in &actives {
        let ident = sanitize(&tree.display_name(model, instance));
        let _ = writeln!(main_c, "    tut_rt_register(&proc_{ident});");
    }
    // Wiring from the precomputed routing table, in deterministic order.
    let mut wires: Vec<(String, String, String, String)> = Vec::new();
    for (&(sender, port, signal), receivers) in routing.iter() {
        for receiver in receivers {
            wires.push((
                tree.display_name(model, sender),
                model.port(port).name().to_owned(),
                model.signal(signal).name().to_owned(),
                tree.display_name(model, receiver.instance),
            ));
        }
    }
    wires.sort();
    for (sender, port, signal, receiver) in wires {
        let _ = writeln!(
            main_c,
            "    tut_rt_wire(\"{sender}\", \"{port}\", \"{signal}\", \"{receiver}\");"
        );
    }
    for &instance in &actives {
        let node = tree.node(instance);
        let module = sanitize(model.class(node.class).name()).to_lowercase();
        let ident = sanitize(&tree.display_name(model, instance));
        let _ = writeln!(main_c, "    {module}_init(&ctx_{ident}, &proc_{ident});");
    }
    let _ = writeln!(main_c, "    tut_rt_run(100000);");
    let _ = writeln!(main_c, "    return 0;");
    let _ = writeln!(main_c, "}}");
    files.push(GeneratedFile {
        name: "main.c".into(),
        contents: main_c,
    });

    // Makefile.
    let sources: Vec<String> = classes
        .iter()
        .map(|&c| format!("{}.c", sanitize(model.class(c).name()).to_lowercase()))
        .chain(["main.c".to_owned()])
        .collect();
    let mut makefile = String::new();
    let binary = sanitize(model.name()).to_lowercase();
    let _ = writeln!(makefile, "CC ?= cc");
    let _ = writeln!(makefile, "CFLAGS ?= -std=c99 -Wall -Wextra -O2");
    let _ = writeln!(makefile, "SRCS = {}", sources.join(" "));
    let _ = writeln!(makefile);
    let _ = writeln!(makefile, "{binary}: $(SRCS) tut_rt.h");
    let _ = writeln!(makefile, "\t$(CC) $(CFLAGS) -o $@ $(SRCS)");
    let _ = writeln!(makefile);
    let _ = writeln!(makefile, "clean:");
    let _ = writeln!(makefile, "\trm -f {binary}");
    files.push(GeneratedFile {
        name: "Makefile".into(),
        contents: makefile,
    });

    Ok(files)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tut_uml::action::{Expr, Statement};
    use tut_uml::statemachine::{StateMachine, Trigger};
    use tut_uml::value::DataType;

    fn sample_system() -> SystemModel {
        let mut s = SystemModel::new("GenSys");
        let top = s.model.add_class("Top");
        s.apply(top, |t| t.application).unwrap();
        let sig = s.model.add_signal("Data");
        s.model.signal_mut(sig).add_param("n", DataType::Int);

        let worker = s.model.add_class("Worker");
        s.apply(worker, |t| t.application_component).unwrap();
        let pin = s.model.add_port(worker, "in");
        let pout = s.model.add_port(worker, "out");
        s.model.port_mut(pin).add_provided(sig);
        s.model.port_mut(pout).add_required(sig);
        let mut sm = StateMachine::new("WorkerB");
        let st = sm.add_state("S");
        sm.set_initial(st);
        sm.add_transition(
            st,
            st,
            Trigger::Signal(sig),
            None,
            vec![Statement::Send {
                port: "out".into(),
                signal: sig,
                args: vec![Expr::param("n")],
            }],
        );
        s.model.add_state_machine(worker, sm);

        let a = s.model.add_part(top, "a", worker);
        let b = s.model.add_part(top, "b", worker);
        for part in [a, b] {
            s.apply(part, |t| t.application_process).unwrap();
        }
        s.model.add_connector(
            top,
            "ab",
            tut_uml::model::ConnectorEnd {
                part: Some(a),
                port: pout,
            },
            tut_uml::model::ConnectorEnd {
                part: Some(b),
                port: pin,
            },
        );
        s
    }

    #[test]
    fn project_contains_all_files() {
        let files = generate_project(&sample_system()).unwrap();
        let names: Vec<_> = files.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(
            names,
            vec!["tut_rt.h", "worker.h", "worker.c", "main.c", "Makefile"]
        );
    }

    #[test]
    fn main_registers_and_wires() {
        let files = generate_project(&sample_system()).unwrap();
        let main_c = &files.iter().find(|f| f.name == "main.c").unwrap().contents;
        assert!(main_c.contains("tut_rt_register(&proc_a);"));
        assert!(main_c.contains("tut_rt_register(&proc_b);"));
        assert!(main_c.contains("tut_rt_wire(\"a\", \"out\", \"Data\", \"b\");"));
        assert!(main_c.contains("worker_init(&ctx_a, &proc_a);"));
        assert!(main_c.contains("tut_rt_run("));
    }

    #[test]
    fn makefile_lists_sources() {
        let files = generate_project(&sample_system()).unwrap();
        let makefile = &files
            .iter()
            .find(|f| f.name == "Makefile")
            .unwrap()
            .contents;
        assert!(makefile.contains("worker.c main.c"));
        assert!(makefile.contains("-std=c99"));
    }

    #[test]
    fn missing_application_rejected() {
        let s = SystemModel::new("Empty");
        assert!(matches!(
            generate_project(&s),
            Err(CodegenError::NoApplication)
        ));
    }

    #[test]
    fn generation_is_deterministic() {
        let a = generate_project(&sample_system()).unwrap();
        let b = generate_project(&sample_system()).unwrap();
        assert_eq!(a, b);
    }
}
