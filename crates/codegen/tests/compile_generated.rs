//! End-to-end check of the generated C project: write it to a temp
//! directory, compile it with the host C compiler, run the binary, and
//! parse the log it prints. Skipped (with a note) when no compiler is
//! available.

use std::process::Command;

use tut_codegen::generate_project;
use tut_profile::SystemModel;
use tut_uml::action::{BinOp, CostClass, Expr, Statement};
use tut_uml::statemachine::{StateMachine, Trigger};
use tut_uml::value::{DataType, Value};

fn cc_available() -> bool {
    Command::new("cc")
        .arg("--version")
        .output()
        .map(|o| o.status.success())
        .unwrap_or(false)
}

/// A counting ping-pong that exercises sends, guards, computes, variables,
/// byte builtins, and timers.
fn sample_system() -> SystemModel {
    let mut s = SystemModel::new("CompileCheck");
    let top = s.model.add_class("Top");
    s.apply(top, |t| t.application).unwrap();

    let ping = s.model.add_signal("Ping");
    s.model.signal_mut(ping).add_param("n", DataType::Int);
    s.model
        .signal_mut(ping)
        .add_param("payload", DataType::Bytes);
    let pong = s.model.add_signal("Pong");
    s.model.signal_mut(pong).add_param("n", DataType::Int);

    // Driver: kicks off and counts down on Pong.
    let driver = s.model.add_class("Driver");
    s.apply(driver, |t| t.application_component).unwrap();
    let d_out = s.model.add_port(driver, "out");
    let d_in = s.model.add_port(driver, "in");
    s.model.port_mut(d_out).add_required(ping);
    s.model.port_mut(d_in).add_provided(pong);
    let mut sm = StateMachine::new("DriverB");
    sm.add_variable("n", DataType::Int, Value::Int(3));
    let start = sm.add_state_with_entry(
        "Start",
        vec![Statement::Send {
            port: "out".into(),
            signal: ping,
            args: vec![
                Expr::var("n"),
                Expr::call(
                    tut_uml::action::Builtin::Fill,
                    vec![Expr::int(0xAB), Expr::int(16)],
                ),
            ],
        }],
    );
    let wait = sm.add_state("Wait");
    sm.set_initial(start);
    sm.add_transition(start, wait, Trigger::Completion, None, vec![]);
    sm.add_transition(
        wait,
        wait,
        Trigger::Signal(pong),
        Some(Expr::param("n").bin(BinOp::Gt, Expr::int(0))),
        vec![
            Statement::Assign {
                var: "n".into(),
                expr: Expr::param("n"),
            },
            Statement::Send {
                port: "out".into(),
                signal: ping,
                args: vec![
                    Expr::var("n"),
                    Expr::call(
                        tut_uml::action::Builtin::Fill,
                        vec![Expr::int(0xCD), Expr::int(8)],
                    ),
                ],
            },
        ],
    );
    let done = sm.add_state_with_entry(
        "Done",
        vec![Statement::Log {
            message: "driver finished".into(),
            args: vec![Expr::var("n")],
        }],
    );
    sm.add_transition(
        wait,
        done,
        Trigger::Signal(pong),
        Some(Expr::param("n").bin(BinOp::Le, Expr::int(0))),
        vec![],
    );
    s.model.add_state_machine(driver, sm);

    // Responder: checks the CRC of the payload, replies with n-1.
    let responder = s.model.add_class("Responder");
    s.apply(responder, |t| t.application_component).unwrap();
    let r_in = s.model.add_port(responder, "in");
    let r_out = s.model.add_port(responder, "out");
    s.model.port_mut(r_in).add_provided(ping);
    s.model.port_mut(r_out).add_required(pong);
    let mut sm = StateMachine::new("ResponderB");
    sm.add_variable("crc", DataType::Int, Value::Int(0));
    let st = sm.add_state("S");
    sm.set_initial(st);
    sm.add_transition(
        st,
        st,
        Trigger::Signal(ping),
        None,
        vec![
            Statement::Assign {
                var: "crc".into(),
                expr: Expr::call(
                    tut_uml::action::Builtin::Crc32,
                    vec![Expr::param("payload")],
                ),
            },
            Statement::Compute {
                class: CostClass::Bit,
                amount: Expr::call(tut_uml::action::Builtin::Len, vec![Expr::param("payload")]),
            },
            Statement::Send {
                port: "out".into(),
                signal: pong,
                args: vec![Expr::param("n").bin(BinOp::Sub, Expr::int(1))],
            },
        ],
    );
    s.model.add_state_machine(responder, sm);

    let d_part = s.model.add_part(top, "driver", driver);
    let r_part = s.model.add_part(top, "responder", responder);
    for part in [d_part, r_part] {
        s.apply(part, |t| t.application_process).unwrap();
    }
    s.model.add_connector(
        top,
        "ping_wire",
        tut_uml::model::ConnectorEnd {
            part: Some(d_part),
            port: d_out,
        },
        tut_uml::model::ConnectorEnd {
            part: Some(r_part),
            port: r_in,
        },
    );
    s.model.add_connector(
        top,
        "pong_wire",
        tut_uml::model::ConnectorEnd {
            part: Some(r_part),
            port: r_out,
        },
        tut_uml::model::ConnectorEnd {
            part: Some(d_part),
            port: d_in,
        },
    );
    s
}

#[test]
fn generated_project_compiles_and_runs() {
    if !cc_available() {
        eprintln!("skipping: no C compiler on PATH");
        return;
    }
    let system = sample_system();
    let files = generate_project(&system).expect("generate");

    let dir = std::env::temp_dir().join(format!("tut_codegen_test_{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create temp dir");
    let mut sources = Vec::new();
    for file in &files {
        let path = dir.join(&file.name);
        std::fs::write(&path, &file.contents).expect("write generated file");
        if file.name.ends_with(".c") {
            sources.push(path);
        }
    }

    let binary = dir.join("app");
    let output = Command::new("cc")
        .arg("-std=c99")
        .arg("-Wall")
        .arg("-Wextra")
        .arg("-Werror")
        // Generated code legitimately leaves some helpers unused.
        .arg("-Wno-unused-function")
        .arg("-Wno-unused-parameter")
        .arg("-o")
        .arg(&binary)
        .args(&sources)
        .output()
        .expect("run cc");
    assert!(
        output.status.success(),
        "cc failed:\n{}",
        String::from_utf8_lossy(&output.stderr)
    );

    let run = Command::new(&binary).output().expect("run generated app");
    assert!(run.status.success());
    let log = String::from_utf8_lossy(&run.stdout);
    // 4 pings (n=3,3,2,1... actually n counts down via responder) and the
    // final USER record prove the full loop ran.
    assert!(log.contains("SIG"), "log:\n{log}");
    assert!(log.contains("Ping"), "log:\n{log}");
    assert!(log.contains("Pong"), "log:\n{log}");
    assert!(log.contains("driver finished"), "log:\n{log}");

    // The log text is parseable by the simulator's log parser (same
    // format as the Rust-side simulation log-file).
    let parsed = tut_sim::SimLog::parse(&log);
    assert!(parsed.is_ok(), "unparseable log: {parsed:?}\n{log}");

    std::fs::remove_dir_all(&dir).ok();
}
