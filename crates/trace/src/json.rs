//! A minimal JSON parser for validating exporter output in tests.
//!
//! Not a general-purpose library: it accepts standard JSON (RFC 8259),
//! keeps object keys in document order, and reports errors with byte
//! offsets. It exists so the golden-file tests can verify the Chrome
//! trace writer without external tools.

/// A parsed JSON value.
#[derive(Clone, PartialEq, Debug)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number (stored as `f64`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, keys in document order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Member lookup on objects.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The array items, if this is an array.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The string value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }
}

/// Parses a complete JSON document.
///
/// # Errors
///
/// Returns a message with the byte offset of the first syntax error.
pub fn parse(text: &str) -> Result<Json, String> {
    let bytes = text.as_bytes();
    let mut pos = 0;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing data at byte {pos}"));
    }
    Ok(value)
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        Some(b'{') => parse_object(bytes, pos),
        Some(b'[') => parse_array(bytes, pos),
        Some(b'"') => Ok(Json::Str(parse_string(bytes, pos)?)),
        Some(b't') => parse_literal(bytes, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_literal(bytes, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_literal(bytes, pos, "null", Json::Null),
        Some(c) if c.is_ascii_digit() || *c == b'-' => parse_number(bytes, pos),
        Some(c) => Err(format!("unexpected byte `{}` at {pos}", *c as char)),
        None => Err("unexpected end of input".into()),
    }
}

fn parse_literal(bytes: &[u8], pos: &mut usize, word: &str, value: Json) -> Result<Json, String> {
    if bytes[*pos..].starts_with(word.as_bytes()) {
        *pos += word.len();
        Ok(value)
    } else {
        Err(format!("bad literal at byte {pos} (expected `{word}`)"))
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while *pos < bytes.len()
        && (bytes[*pos].is_ascii_digit() || matches!(bytes[*pos], b'.' | b'e' | b'E' | b'+' | b'-'))
    {
        *pos += 1;
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).map_err(|_| "bad utf8".to_owned())?;
    text.parse::<f64>()
        .map(Json::Num)
        .map_err(|_| format!("bad number `{text}` at byte {start}"))
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    debug_assert_eq!(bytes[*pos], b'"');
    *pos += 1;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err("unterminated string".into()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b't') => out.push('\t'),
                    Some(b'r') => out.push('\r'),
                    Some(b'b') => out.push('\u{0008}'),
                    Some(b'f') => out.push('\u{000C}'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .ok_or("truncated \\u escape")?;
                        let hex = std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?;
                        let code = u32::from_str_radix(hex, 16).map_err(|_| "bad \\u escape")?;
                        // Surrogate pairs are not needed by our writers;
                        // map unpaired surrogates to the replacement char.
                        out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                        *pos += 4;
                    }
                    other => return Err(format!("bad escape {other:?} at byte {pos}")),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar.
                let rest = std::str::from_utf8(&bytes[*pos..])
                    .map_err(|_| format!("invalid utf8 at byte {pos}"))?;
                let c = rest.chars().next().expect("non-empty");
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_array(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    *pos += 1; // consume '['
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Arr(items));
    }
    loop {
        items.push(parse_value(bytes, pos)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            _ => return Err(format!("expected `,` or `]` at byte {pos}")),
        }
    }
}

fn parse_object(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    *pos += 1; // consume '{'
    let mut members = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Obj(members));
    }
    loop {
        skip_ws(bytes, pos);
        if bytes.get(*pos) != Some(&b'"') {
            return Err(format!("expected string key at byte {pos}"));
        }
        let key = parse_string(bytes, pos)?;
        skip_ws(bytes, pos);
        if bytes.get(*pos) != Some(&b':') {
            return Err(format!("expected `:` at byte {pos}"));
        }
        *pos += 1;
        let value = parse_value(bytes, pos)?;
        members.push((key, value));
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Obj(members));
            }
            _ => return Err(format!("expected `,` or `}}` at byte {pos}")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(parse("null").unwrap(), Json::Null);
        assert_eq!(parse("true").unwrap(), Json::Bool(true));
        assert_eq!(parse("-1.5e2").unwrap(), Json::Num(-150.0));
        assert_eq!(parse("\"a\\nb\"").unwrap(), Json::Str("a\nb".into()));
    }

    #[test]
    fn parses_nested_structures() {
        let doc = parse(r#"{"a": [1, {"b": "c"}], "d": {}}"#).unwrap();
        let a = doc.get("a").unwrap().as_array().unwrap();
        assert_eq!(a[0].as_f64(), Some(1.0));
        assert_eq!(a[1].get("b").and_then(Json::as_str), Some("c"));
        assert_eq!(doc.get("d"), Some(&Json::Obj(vec![])));
    }

    #[test]
    fn unicode_escapes() {
        assert_eq!(parse("\"\\u0041\"").unwrap(), Json::Str("A".into()));
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("[1] extra").is_err());
        assert!(parse("\"open").is_err());
        assert!(parse("{\"k\" 1}").is_err());
        assert!(parse("tru").is_err());
    }

    #[test]
    fn whitespace_is_tolerated() {
        let doc = parse(" {\n\t\"k\" :\r [ ] } ").unwrap();
        assert_eq!(doc.get("k").unwrap().as_array().unwrap().len(), 0);
    }
}
