//! Live progress heartbeats for long-running drivers.
//!
//! `explore`, `fault-sweep`, and `bench` can run for minutes at real
//! problem sizes; a [`Progress`] gives them a stderr heartbeat — points
//! done/total, points per second, an ETA, and the best objective seen so
//! far — without touching stdout, so `--json` and piped output stay
//! machine-clean (pinned by `crates/bench/tests/progress.rs`).
//!
//! The struct is `Sync`: worker threads share one `&Progress` and tick
//! it with atomics; emission is throttled to at most one line per
//! [`EMIT_EVERY_MS`]. A disabled instance ([`Progress::disabled`]) makes
//! every method a no-op, which is what `--no-progress` routes to.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// Minimum milliseconds between heartbeat lines.
pub const EMIT_EVERY_MS: u64 = 200;

/// Every heartbeat line starts with this marker (tests grep for it; it
/// must never appear on stdout).
pub const MARKER: &str = "[progress]";

/// A shared, throttled stderr progress meter.
pub struct Progress {
    enabled: bool,
    label: String,
    total: u64,
    done: AtomicU64,
    started: Instant,
    /// Milliseconds since `started` of the last emitted line.
    last_emit_ms: AtomicU64,
    /// Best (lowest) objective so far, as `f64::to_bits`; `u64::MAX`
    /// while unset. Objectives here are non-negative, so the bit pattern
    /// order matches the numeric order.
    best_bits: AtomicU64,
    /// Units replayed from a durable checkpoint rather than computed
    /// (`--resume`); shown as `(resumed N)` and counted into `done`.
    resumed: AtomicU64,
}

impl Progress {
    /// An enabled meter expecting `total` units of work.
    pub fn new(label: &str, total: u64) -> Progress {
        Progress {
            enabled: true,
            label: label.to_owned(),
            total,
            done: AtomicU64::new(0),
            started: Instant::now(),
            last_emit_ms: AtomicU64::new(0),
            best_bits: AtomicU64::new(u64::MAX),
            resumed: AtomicU64::new(0),
        }
    }

    /// A meter whose every method is a no-op (`--no-progress`).
    pub fn disabled() -> Progress {
        Progress {
            enabled: false,
            ..Progress::new("", 0)
        }
    }

    /// True when heartbeats are emitted.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Records one completed unit and maybe emits a heartbeat.
    pub fn tick(&self) {
        self.tick_n(1);
    }

    /// Records `n` completed units and maybe emits a heartbeat.
    pub fn tick_n(&self, n: u64) {
        if !self.enabled {
            return;
        }
        self.done.fetch_add(n, Ordering::Relaxed);
        self.maybe_emit();
    }

    /// Records `n` units as replayed from a durable checkpoint: they
    /// count into `done` (the work is genuinely complete) and heartbeats
    /// gain a `(resumed n)` tag so a resumed campaign is distinguishable
    /// from a fresh one. Drivers call this once, up front, after opening
    /// their journal.
    pub fn set_resumed(&self, n: u64) {
        if !self.enabled {
            return;
        }
        let previous = self.resumed.swap(n, Ordering::Relaxed);
        // `done` tracks resumed + computed; re-setting replaces the old
        // resumed contribution.
        self.done.fetch_add(n, Ordering::Relaxed);
        self.done.fetch_sub(previous, Ordering::Relaxed);
    }

    /// Records an objective value; the lowest seen so far is shown as
    /// `best` on subsequent heartbeats.
    pub fn record_best(&self, objective: f64) {
        if !self.enabled || !objective.is_finite() || objective < 0.0 {
            return;
        }
        let bits = objective.to_bits();
        self.best_bits.fetch_min(bits, Ordering::Relaxed);
    }

    fn best(&self) -> Option<f64> {
        let bits = self.best_bits.load(Ordering::Relaxed);
        (bits != u64::MAX).then(|| f64::from_bits(bits))
    }

    fn maybe_emit(&self) {
        let elapsed_ms = u64::try_from(self.started.elapsed().as_millis()).unwrap_or(u64::MAX);
        let last = self.last_emit_ms.load(Ordering::Relaxed);
        if elapsed_ms < last.saturating_add(EMIT_EVERY_MS) {
            return;
        }
        // One thread wins the slot; the rest skip this heartbeat.
        if self
            .last_emit_ms
            .compare_exchange(last, elapsed_ms, Ordering::Relaxed, Ordering::Relaxed)
            .is_err()
        {
            return;
        }
        let done = self.done.load(Ordering::Relaxed);
        eprintln!(
            "{}",
            render_line(
                &self.label,
                done,
                self.total,
                self.started.elapsed().as_secs_f64(),
                self.best(),
                self.resumed.load(Ordering::Relaxed),
            )
        );
    }

    /// Emits the final summary heartbeat (always, when enabled).
    pub fn finish(&self) {
        if !self.enabled {
            return;
        }
        let done = self.done.load(Ordering::Relaxed);
        let elapsed = self.started.elapsed().as_secs_f64();
        let rate = if elapsed > 0.0 {
            done as f64 / elapsed
        } else {
            0.0
        };
        let best = match self.best() {
            Some(best) => format!(" best {best:.1}"),
            None => String::new(),
        };
        let resumed = match self.resumed.load(Ordering::Relaxed) {
            0 => String::new(),
            n => format!(" (resumed {n})"),
        };
        eprintln!(
            "{MARKER} {} done {done}/{}{resumed} in {elapsed:.2}s ({rate:.1}/s){best}",
            self.label, self.total
        );
    }
}

/// Renders one heartbeat line (pure, so tests can pin the format).
/// `resumed > 0` appends a `(resumed N)` tag after the counts.
pub fn render_line(
    label: &str,
    done: u64,
    total: u64,
    elapsed_s: f64,
    best: Option<f64>,
    resumed: u64,
) -> String {
    let rate = if elapsed_s > 0.0 {
        done as f64 / elapsed_s
    } else {
        0.0
    };
    let percent = if total > 0 {
        done as f64 * 100.0 / total as f64
    } else {
        0.0
    };
    let eta = if rate > 0.0 && total > done {
        format!(" eta {:.1}s", (total - done) as f64 / rate)
    } else {
        String::new()
    };
    let best = match best {
        Some(best) => format!(" best {best:.1}"),
        None => String::new(),
    };
    let resumed = if resumed > 0 {
        format!(" (resumed {resumed})")
    } else {
        String::new()
    };
    format!("{MARKER} {label} {done}/{total}{resumed} ({percent:.0}%) {rate:.1}/s{eta}{best}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_line_shows_rate_eta_and_best() {
        let line = render_line("sweep", 3, 5, 1.5, Some(42.25), 0);
        assert!(line.starts_with(MARKER));
        assert!(line.contains("sweep 3/5 (60%)"));
        assert!(line.contains("2.0/s"));
        assert!(line.contains("eta 1.0s"));
        assert!(line.contains("best 42.2"), "{line}");
        assert!(!line.contains("resumed"), "{line}");
    }

    #[test]
    fn render_line_handles_zero_work() {
        let line = render_line("idle", 0, 0, 0.0, None, 0);
        assert!(line.contains("idle 0/0 (0%)"));
        assert!(!line.contains("eta"));
        assert!(!line.contains("best"));
    }

    #[test]
    fn render_line_tags_resumed_work() {
        let line = render_line("sweep", 3, 5, 1.5, None, 2);
        assert!(line.contains("sweep 3/5 (resumed 2) (60%)"), "{line}");
    }

    #[test]
    fn disabled_progress_is_inert() {
        let p = Progress::disabled();
        assert!(!p.is_enabled());
        p.tick();
        p.record_best(1.0);
        p.set_resumed(4);
        p.finish(); // must not print (verified by the binary-level test)
        assert_eq!(p.done.load(Ordering::Relaxed), 0);
    }

    #[test]
    fn set_resumed_counts_into_done_and_replaces() {
        let p = Progress::new("t", 10);
        p.set_resumed(4);
        p.tick();
        assert_eq!(p.done.load(Ordering::Relaxed), 5);
        // Re-setting replaces the resumed contribution, not adds to it.
        p.set_resumed(6);
        assert_eq!(p.done.load(Ordering::Relaxed), 7);
        assert_eq!(p.resumed.load(Ordering::Relaxed), 6);
    }

    #[test]
    fn best_keeps_the_minimum_across_threads() {
        let p = Progress::new("t", 10);
        std::thread::scope(|scope| {
            for v in [5.0f64, 3.0, 9.0] {
                let p = &p;
                scope.spawn(move || {
                    p.record_best(v);
                    p.tick();
                });
            }
        });
        assert_eq!(p.best(), Some(3.0));
        assert_eq!(p.done.load(Ordering::Relaxed), 3);
    }
}
