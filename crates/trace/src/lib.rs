//! Structured tracing and metrics for the TUT-Profile tool flow.
//!
//! The paper's whole methodology (Figure 2, §4.4) revolves around
//! *observing* an executing system: a simulation produces a log that a
//! profiling tool analyses to drive grouping and mapping iteration. This
//! crate is the observability substrate for that loop, built std-only
//! with zero external dependencies so the workspace stays buildable
//! offline:
//!
//! * [`sink::TraceSink`] — the instrumentation boundary. Hot code
//!   (`tut-sim`'s run-to-completion kernel, `tut-hibi`'s transfer
//!   scheduler) is generic over the sink, so the no-op implementation
//!   ([`sink::NoopSink`]) is statically dispatched and compiles away.
//! * [`recorder::Recorder`] — the collecting implementation: named
//!   tracks on two clock domains (simulated nanoseconds and a monotonic
//!   host clock for tool-stage timing), spans, instants, counter
//!   samples, plus an embedded [`metrics::MetricsRegistry`].
//! * [`metrics`] — counters, gauges, and log-linear histograms
//!   (constant-size, HdrHistogram-style bucketing) for latency and
//!   utilisation distributions.
//! * Exporters: [`chrome`] (trace-event JSON loadable in Perfetto or
//!   `chrome://tracing`), [`prom`] (Prometheus text exposition), and
//!   [`vcd`] (value-change-dump waveforms of per-segment busy/reserved
//!   lines, viewable in GTKWave).
//! * [`perf`] — the host-side self-profiler: scoped span timers over
//!   `std::time::Instant` with interned labels, a thread-local span
//!   stack, and per-thread buffers merged at drain. Renders a hotspot
//!   table, collapsed (flamegraph) stacks, and a Chrome trace; the
//!   [`perf::NoProf`]/[`perf::HostProf`] pair gives instrumented code
//!   the same statically-dispatched zero-cost-off discipline as
//!   [`sink::NoopSink`].
//! * [`progress`] — throttled stderr heartbeats (done/total, rate, ETA,
//!   best objective) for the long-running drivers; stdout stays
//!   machine-clean.
//! * [`json`] — a minimal JSON parser used to validate exporter output
//!   in tests without external tooling.
//! * [`rng`] — a SplitMix64 PRNG: the in-tree replacement for the
//!   `rand` crate used by `tut-explore`'s annealing pass and by seeded
//!   test-data generators across the workspace.
//!
//! # Example
//!
//! ```
//! use tut_trace::{Clock, Recorder, TraceSink};
//!
//! let mut rec = Recorder::new();
//! let cpu = rec.track("pe/cpu1", Clock::Sim);
//! rec.span(cpu, "step", 100, 40);
//! rec.counter(cpu, "queue_depth", 140, 2.0);
//! rec.observe("sim.signal_latency_ns", 1234);
//! let json = tut_trace::chrome::to_chrome_json(&rec);
//! assert!(json.contains("pe/cpu1"));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod chrome;
pub mod json;
pub mod metrics;
pub mod perf;
pub mod progress;
pub mod prom;
pub mod recorder;
pub mod rng;
pub mod sink;
pub mod vcd;

pub use metrics::{Histogram, MetricsRegistry};
pub use perf::{HostProf, NoProf, PerfReport, PerfSpan, Prof};
pub use progress::Progress;
pub use recorder::{EventKind, Recorder, TraceEvent};
pub use rng::SplitMix64;
pub use sink::{Clock, NoopSink, TraceSink, TrackId};
