//! Counters, gauges, and log-linear histograms.

use std::collections::BTreeMap;

/// Direct linear bucket indices cover values `0..LINEAR_CUTOFF`.
const LINEAR_CUTOFF: u64 = 32;
/// Sub-bucket resolution above the linear range: 2^SUB_BITS linear
/// sub-buckets per power-of-two octave (relative precision ~6%).
const SUB_BITS: u32 = 4;
const SUB_COUNT: usize = 1 << SUB_BITS;
/// First octave above the linear range starts at 2^5 = 32.
const FIRST_OCTAVE: u32 = 5;
/// Octaves 5..=63 inclusive.
const NUM_BUCKETS: usize = LINEAR_CUTOFF as usize + (64 - FIRST_OCTAVE as usize) * SUB_COUNT;

/// A fixed-size log-linear histogram of `u64` observations.
///
/// Values below 32 land in exact unit-width buckets; above that, each
/// power-of-two octave is split into 16 linear sub-buckets, so relative
/// error is bounded by 1/16 across the whole `u64` range — the classic
/// HdrHistogram bucketing, sized at 976 buckets (~8 KiB) per histogram.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Histogram {
    counts: Vec<u64>,
    count: u64,
    sum: u128,
    min: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Histogram {
        Histogram {
            counts: vec![0; NUM_BUCKETS],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// The bucket index a value falls into.
    pub fn bucket_index(value: u64) -> usize {
        if value < LINEAR_CUTOFF {
            value as usize
        } else {
            let msb = 63 - value.leading_zeros();
            let sub = ((value >> (msb - SUB_BITS)) as usize) & (SUB_COUNT - 1);
            LINEAR_CUTOFF as usize + (msb - FIRST_OCTAVE) as usize * SUB_COUNT + sub
        }
    }

    /// The inclusive `[low, high]` value range of bucket `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index >= Histogram::num_buckets()`.
    pub fn bucket_bounds(index: usize) -> (u64, u64) {
        assert!(index < NUM_BUCKETS, "bucket index out of range");
        if (index as u64) < LINEAR_CUTOFF {
            (index as u64, index as u64)
        } else {
            let rel = index - LINEAR_CUTOFF as usize;
            let octave = FIRST_OCTAVE + (rel / SUB_COUNT) as u32;
            let sub = (rel % SUB_COUNT) as u64;
            let width = 1u64 << (octave - SUB_BITS);
            let low = (1u64 << octave) + sub * width;
            (low, low.wrapping_add(width).wrapping_sub(1))
        }
    }

    /// Total number of buckets.
    pub fn num_buckets() -> usize {
        NUM_BUCKETS
    }

    /// Records one observation.
    pub fn record(&mut self, value: u64) {
        self.counts[Histogram::bucket_index(value)] += 1;
        self.count += 1;
        self.sum += u128::from(value);
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Number of recorded observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all observations.
    pub fn sum(&self) -> u128 {
        self.sum
    }

    /// Smallest observation (`None` when empty).
    pub fn min(&self) -> Option<u64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest observation (`None` when empty).
    pub fn max(&self) -> Option<u64> {
        (self.count > 0).then_some(self.max)
    }

    /// Arithmetic mean (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// The upper bound of the bucket containing the `q`-quantile
    /// (`q` in `[0, 1]`), or `None` when empty.
    pub fn quantile(&self, q: f64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0;
        for (index, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return Some(Histogram::bucket_bounds(index).1.min(self.max));
            }
        }
        Some(self.max)
    }

    /// Iterates non-empty buckets as `(low, high, count)`.
    pub fn nonzero_buckets(&self) -> impl Iterator<Item = (u64, u64, u64)> + '_ {
        self.counts
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(index, &c)| {
                let (low, high) = Histogram::bucket_bounds(index);
                (low, high, c)
            })
    }
}

/// A registry of named counters, gauges, and histograms.
///
/// Names use a dotted hierarchy (`sim.signal_latency_ns`,
/// `hibi.seg0.wait_ns`); the Prometheus exporter sanitises them to the
/// exposition charset. `BTreeMap` keeps exports deterministically
/// ordered.
#[derive(Clone, PartialEq, Debug, Default)]
pub struct MetricsRegistry {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, f64>,
    histograms: BTreeMap<String, Histogram>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> MetricsRegistry {
        MetricsRegistry::default()
    }

    /// Increments counter `name` by `by` (creating it at 0).
    pub fn add(&mut self, name: &str, by: u64) {
        if let Some(c) = self.counters.get_mut(name) {
            *c += by;
        } else {
            self.counters.insert(name.to_owned(), by);
        }
    }

    /// Sets gauge `name` to `value`.
    pub fn gauge(&mut self, name: &str, value: f64) {
        if let Some(g) = self.gauges.get_mut(name) {
            *g = value;
        } else {
            self.gauges.insert(name.to_owned(), value);
        }
    }

    /// Records `value` into histogram `name` (creating it empty).
    pub fn observe(&mut self, name: &str, value: u64) {
        if let Some(h) = self.histograms.get_mut(name) {
            h.record(value);
        } else {
            let mut h = Histogram::new();
            h.record(value);
            self.histograms.insert(name.to_owned(), h);
        }
    }

    /// The current value of counter `name`.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters.get(name).copied()
    }

    /// The current value of gauge `name`.
    pub fn gauge_value(&self, name: &str) -> Option<f64> {
        self.gauges.get(name).copied()
    }

    /// The histogram registered under `name`.
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms.get(name)
    }

    /// All counters in name order.
    pub fn counters(&self) -> impl Iterator<Item = (&str, u64)> {
        self.counters.iter().map(|(n, &v)| (n.as_str(), v))
    }

    /// All gauges in name order.
    pub fn gauges(&self) -> impl Iterator<Item = (&str, f64)> {
        self.gauges.iter().map(|(n, &v)| (n.as_str(), v))
    }

    /// All histograms in name order.
    pub fn histograms(&self) -> impl Iterator<Item = (&str, &Histogram)> {
        self.histograms.iter().map(|(n, h)| (n.as_str(), h))
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.histograms.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_lands_in_bucket_zero() {
        assert_eq!(Histogram::bucket_index(0), 0);
        assert_eq!(Histogram::bucket_bounds(0), (0, 0));
    }

    #[test]
    fn linear_range_is_exact() {
        for v in 0..LINEAR_CUTOFF {
            let index = Histogram::bucket_index(v);
            assert_eq!(index, v as usize);
            assert_eq!(Histogram::bucket_bounds(index), (v, v));
        }
    }

    #[test]
    fn bucket_boundaries_are_consistent() {
        // Every bucket's bounds contain exactly the values that map back
        // to it, probed at the edges.
        for index in 0..Histogram::num_buckets() {
            let (low, high) = Histogram::bucket_bounds(index);
            assert_eq!(Histogram::bucket_index(low), index, "low edge of {index}");
            assert_eq!(Histogram::bucket_index(high), index, "high edge of {index}");
            if low > 0 {
                assert_eq!(
                    Histogram::bucket_index(low - 1),
                    index - 1,
                    "value below bucket {index} must fall in the previous bucket"
                );
            }
        }
    }

    #[test]
    fn u64_max_lands_in_the_last_bucket() {
        let index = Histogram::bucket_index(u64::MAX);
        assert_eq!(index, Histogram::num_buckets() - 1);
        let (low, high) = Histogram::bucket_bounds(index);
        assert!(low < high);
        assert_eq!(high, u64::MAX);
        let mut h = Histogram::new();
        h.record(u64::MAX);
        assert_eq!(h.count(), 1);
        assert_eq!(h.max(), Some(u64::MAX));
    }

    #[test]
    fn powers_of_two_start_new_sub_ranges() {
        for exp in FIRST_OCTAVE..64 {
            let v = 1u64 << exp;
            let (low, _) = Histogram::bucket_bounds(Histogram::bucket_index(v));
            assert_eq!(low, v, "2^{exp} must start its bucket");
        }
    }

    #[test]
    fn relative_error_is_bounded() {
        let mut h = Histogram::new();
        for v in [100u64, 1_000, 123_456, 10_000_000_000] {
            h.record(v);
            let (low, high) = Histogram::bucket_bounds(Histogram::bucket_index(v));
            assert!(low <= v && v <= high);
            // Bucket width is at most 1/16 of the bucket's base value.
            assert!(high - low <= low / 8, "bucket [{low}, {high}] too wide");
        }
    }

    #[test]
    fn stats_and_quantiles() {
        let mut h = Histogram::new();
        assert_eq!(h.quantile(0.5), None);
        for v in 1..=100u64 {
            h.record(v);
        }
        assert_eq!(h.count(), 100);
        assert_eq!(h.sum(), 5050);
        assert_eq!(h.min(), Some(1));
        assert_eq!(h.max(), Some(100));
        assert!((h.mean() - 50.5).abs() < 1e-9);
        let median = h.quantile(0.5).unwrap();
        assert!(
            (45..=55).contains(&median),
            "median bucket ~50, got {median}"
        );
        assert_eq!(h.quantile(1.0), Some(100));
    }

    #[test]
    fn registry_round_trip() {
        let mut m = MetricsRegistry::new();
        m.add("sim.steps", 3);
        m.add("sim.steps", 2);
        m.gauge("queue_depth", 4.0);
        m.observe("latency", 10);
        m.observe("latency", 20);
        assert_eq!(m.counter("sim.steps"), Some(5));
        assert_eq!(m.gauge_value("queue_depth"), Some(4.0));
        assert_eq!(m.histogram("latency").unwrap().count(), 2);
        assert!(m.counter("nope").is_none());
        assert!(!m.is_empty());
    }
}
