//! Host-side hierarchical self-profiler.
//!
//! [`crate::recorder::Recorder`] observes *simulated* time; this module
//! observes the tool itself: where host wall-clock time goes across the
//! whole pipeline (parse → XMI → profile apply → checks → codegen → sim
//! setup → simulation → analysis) and inside the exploration and
//! fault-sweep drivers.
//!
//! Design:
//!
//! * **Interned labels** — [`label`] resolves a frame name to a [`Label`]
//!   (a `u32`) through a global table. Hot paths intern once at setup
//!   time and pass `Copy` ids afterwards.
//! * **Thread-local span stacks** — [`enter`] pushes a frame onto the
//!   current thread's stack and returns a scope guard; dropping the guard
//!   pops the frame and charges its elapsed time to a call-tree node
//!   keyed by the full stack path. No lock is taken on enter/exit: each
//!   thread aggregates into its own buffer.
//! * **Merged at drain** — a thread's buffer is flushed into a global
//!   pool when the thread exits (scoped workers flush before their scope
//!   ends); [`drain`] flushes the calling thread too, merges every
//!   buffered call tree by path, and returns a [`PerfReport`].
//! * **Zero cost when off** — the [`Prof`] trait mirrors the
//!   `TraceSink`/`FaultModel` discipline: instrumented code is generic
//!   over it, [`NoProf`] monomorphises to nothing (`ACTIVE = false`
//!   statically removes even the enabled-flag load), and [`HostProf`]
//!   routes into the thread-local machinery. Observation must never
//!   perturb behaviour: a profiled simulation's log is byte-identical to
//!   an unprofiled one (pinned by `tests/profiler.rs`).
//!
//! The report renders three ways: a top-N hotspot table
//! ([`PerfReport::render_top`]), collapsed stacks in the
//! inferno/flamegraph `parent;child value` format
//! ([`PerfReport::to_folded`]), and a Chrome trace-event timeline reusing
//! the [`crate::chrome`] exporter ([`PerfReport::to_chrome`]).

use std::cell::RefCell;
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

use crate::recorder::Recorder;
use crate::sink::{Clock, TraceSink};

/// An interned frame label, valid process-wide.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct Label(u32);

/// Whether spans are currently recorded.
static ENABLED: AtomicBool = AtomicBool::new(false);

/// The host-clock epoch all span timestamps are relative to (set when
/// profiling is first enabled, so timelines across threads share a zero).
static EPOCH: OnceLock<Instant> = OnceLock::new();

/// label text ↔ id table. Interning takes this lock; hot paths intern
/// once and reuse the `Label`.
static LABELS: OnceLock<Mutex<LabelTable>> = OnceLock::new();

/// Flushed per-thread buffers awaiting [`drain`].
static POOL: OnceLock<Mutex<Vec<ThreadDump>>> = OnceLock::new();

/// Raw timeline spans kept per thread for the Chrome export. Aggregation
/// (the call tree) is unbounded-safe; the raw timeline is capped so a
/// long simulation cannot exhaust memory — overflow is counted and
/// surfaced in the report.
const RAW_SPAN_CAP: usize = 1 << 20;

#[derive(Default)]
struct LabelTable {
    by_name: HashMap<String, u32>,
    names: Vec<String>,
}

fn labels() -> &'static Mutex<LabelTable> {
    LABELS.get_or_init(|| Mutex::new(LabelTable::default()))
}

fn pool() -> &'static Mutex<Vec<ThreadDump>> {
    POOL.get_or_init(|| Mutex::new(Vec::new()))
}

fn epoch() -> Instant {
    *EPOCH.get_or_init(Instant::now)
}

/// Interns `name`, returning its process-wide [`Label`]. Takes a global
/// lock — call at setup time for hot paths, not per event.
pub fn label(name: &str) -> Label {
    let mut table = labels().lock().expect("label table poisoned");
    if let Some(&id) = table.by_name.get(name) {
        return Label(id);
    }
    let id = u32::try_from(table.names.len()).expect("label table overflow");
    table.names.push(name.to_owned());
    table.by_name.insert(name.to_owned(), id);
    Label(id)
}

/// Turns span recording on. The first call fixes the shared host-clock
/// epoch.
pub fn enable() {
    epoch();
    ENABLED.store(true, Ordering::Relaxed);
}

/// Turns span recording off (buffered data stays until [`drain`]).
pub fn disable() {
    ENABLED.store(false, Ordering::Relaxed);
}

/// True while span recording is on.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// One frame on a thread's span stack.
struct Frame {
    /// Call-tree node this frame aggregates into.
    node: u32,
    start: Instant,
    /// Nanoseconds spent in already-closed children (to compute self
    /// time on exit).
    child_ns: u64,
}

/// One call-tree node of a thread's aggregation buffer.
#[derive(Clone, Copy, Debug)]
struct NodeAgg {
    parent: u32,
    label: u32,
    self_ns: u64,
    total_ns: u64,
    count: u64,
}

/// One raw timeline span (for the Chrome export).
#[derive(Clone, Copy, Debug)]
struct RawSpan {
    label: u32,
    start_ns: u64,
    dur_ns: u64,
}

/// A thread's flushed profiling buffer.
struct ThreadDump {
    thread: String,
    /// Node 0 is the synthetic root.
    nodes: Vec<NodeAgg>,
    raw: Vec<RawSpan>,
    dropped: u64,
}

struct ThreadState {
    thread: String,
    stack: Vec<Frame>,
    nodes: Vec<NodeAgg>,
    children: HashMap<(u32, u32), u32>,
    raw: Vec<RawSpan>,
    dropped: u64,
}

impl ThreadState {
    fn new() -> ThreadState {
        static NEXT_ID: std::sync::atomic::AtomicU32 = std::sync::atomic::AtomicU32::new(0);
        let id = NEXT_ID.fetch_add(1, Ordering::Relaxed);
        let thread = std::thread::current()
            .name()
            .map(str::to_owned)
            .unwrap_or_else(|| format!("thread-{id}"));
        ThreadState {
            thread,
            stack: Vec::new(),
            nodes: vec![NodeAgg {
                parent: 0,
                label: u32::MAX,
                self_ns: 0,
                total_ns: 0,
                count: 0,
            }],
            children: HashMap::new(),
            raw: Vec::new(),
            dropped: 0,
        }
    }

    fn child_node(&mut self, parent: u32, label: u32) -> u32 {
        if let Some(&node) = self.children.get(&(parent, label)) {
            return node;
        }
        let node = u32::try_from(self.nodes.len()).expect("perf node overflow");
        self.nodes.push(NodeAgg {
            parent,
            label,
            self_ns: 0,
            total_ns: 0,
            count: 0,
        });
        self.children.insert((parent, label), node);
        node
    }

    fn begin(&mut self, label: Label) {
        let parent = self.stack.last().map(|f| f.node).unwrap_or(0);
        let node = self.child_node(parent, label.0);
        self.stack.push(Frame {
            node,
            start: Instant::now(),
            child_ns: 0,
        });
    }

    fn end(&mut self) {
        let Some(frame) = self.stack.pop() else {
            return; // unbalanced guard (e.g. drained mid-span): ignore
        };
        let total_ns = u64::try_from(frame.start.elapsed().as_nanos()).unwrap_or(u64::MAX);
        let node = &mut self.nodes[frame.node as usize];
        node.total_ns += total_ns;
        node.self_ns += total_ns.saturating_sub(frame.child_ns);
        node.count += 1;
        let label = node.label;
        if let Some(parent) = self.stack.last_mut() {
            parent.child_ns += total_ns;
        }
        if self.raw.len() < RAW_SPAN_CAP {
            let start_ns =
                u64::try_from(frame.start.duration_since(epoch()).as_nanos()).unwrap_or(u64::MAX);
            self.raw.push(RawSpan {
                label,
                start_ns,
                dur_ns: total_ns,
            });
        } else {
            self.dropped += 1;
        }
    }

    /// Moves the buffered data out as a [`ThreadDump`], leaving the state
    /// empty but reusable. Open frames stay on the stack (their time is
    /// charged when their guards drop).
    fn take_dump(&mut self) -> Option<ThreadDump> {
        if self.nodes.len() <= 1 && self.raw.is_empty() {
            return None;
        }
        let nodes = std::mem::replace(
            &mut self.nodes,
            vec![NodeAgg {
                parent: 0,
                label: u32::MAX,
                self_ns: 0,
                total_ns: 0,
                count: 0,
            }],
        );
        self.children.clear();
        // Re-anchor any frames still open onto the fresh root so their
        // eventual exits do not index into the flushed table.
        for frame in &mut self.stack {
            frame.node = 0;
        }
        Some(ThreadDump {
            thread: self.thread.clone(),
            nodes,
            raw: std::mem::take(&mut self.raw),
            dropped: std::mem::take(&mut self.dropped),
        })
    }
}

/// Thread-local wrapper whose drop flushes the buffer into the global
/// pool, so scoped worker threads contribute automatically.
struct TlsState(RefCell<ThreadState>);

impl Drop for TlsState {
    fn drop(&mut self) {
        if let Some(dump) = self.0.borrow_mut().take_dump() {
            if let Ok(mut pool) = pool().lock() {
                pool.push(dump);
            }
        }
    }
}

thread_local! {
    static TLS: TlsState = TlsState(RefCell::new(ThreadState::new()));
}

/// Scope guard of one profiled span; created by [`enter`], pops its
/// frame when dropped.
#[must_use = "a PerfSpan measures until it is dropped"]
pub struct PerfSpan {
    active: bool,
}

impl PerfSpan {
    /// A guard that does nothing on drop.
    pub const fn inactive() -> PerfSpan {
        PerfSpan { active: false }
    }

    /// Ends this span and opens a sibling named `name` in its place —
    /// the sequential-stage idiom:
    /// `let span = span.then_named("stage2");`.
    pub fn then_named(self, name: &str) -> PerfSpan {
        drop(self);
        enter_named(name)
    }
}

impl Drop for PerfSpan {
    fn drop(&mut self) {
        if self.active {
            // `try_with`: guards may drop during thread teardown.
            let _ = TLS.try_with(|tls| tls.0.borrow_mut().end());
        }
    }
}

/// Opens a span labelled `label` on the current thread (no-op while
/// profiling is off).
#[inline]
pub fn enter(label: Label) -> PerfSpan {
    if !enabled() {
        return PerfSpan::inactive();
    }
    let ok = TLS.try_with(|tls| tls.0.borrow_mut().begin(label)).is_ok();
    PerfSpan { active: ok }
}

/// [`enter`] for cold paths: interns `name` only when profiling is on.
#[inline]
pub fn enter_named(name: &str) -> PerfSpan {
    if !enabled() {
        return PerfSpan::inactive();
    }
    enter(label(name))
}

/// Statically-dispatched profiling capability, mirroring the
/// `TraceSink`/`FaultModel` discipline: hot code is generic over `P:
/// Prof`, so the [`NoProf`] build compiles the instrumentation away
/// entirely (branch on [`Prof::ACTIVE`], a constant).
pub trait Prof: Copy {
    /// `false` statically removes every instrumentation site.
    const ACTIVE: bool;

    /// True when spans are actually recorded right now.
    fn enabled(self) -> bool;

    /// Opens a span (see [`enter`]).
    fn enter(self, label: Label) -> PerfSpan;

    /// Opens a span by name (see [`enter_named`]).
    fn enter_named(self, name: &str) -> PerfSpan;
}

/// The do-nothing profiler: all methods compile away.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct NoProf;

impl Prof for NoProf {
    const ACTIVE: bool = false;

    #[inline]
    fn enabled(self) -> bool {
        false
    }
    #[inline]
    fn enter(self, _label: Label) -> PerfSpan {
        PerfSpan::inactive()
    }
    #[inline]
    fn enter_named(self, _name: &str) -> PerfSpan {
        PerfSpan::inactive()
    }
}

/// The recording profiler: routes into the thread-local machinery (still
/// gated on the global [`enabled`] flag).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct HostProf;

impl Prof for HostProf {
    const ACTIVE: bool = true;

    #[inline]
    fn enabled(self) -> bool {
        enabled()
    }
    #[inline]
    fn enter(self, label: Label) -> PerfSpan {
        enter(label)
    }
    #[inline]
    fn enter_named(self, name: &str) -> PerfSpan {
        enter_named(name)
    }
}

/// One node of the merged call tree.
#[derive(Clone, PartialEq, Debug)]
pub struct PerfNode {
    /// Frame name.
    pub label: String,
    /// Index of the parent node in [`PerfReport::nodes`] (`None` for
    /// top-level frames).
    pub parent: Option<usize>,
    /// Nanoseconds spent in this frame excluding child frames.
    pub self_ns: u64,
    /// Nanoseconds spent in this frame including child frames.
    pub total_ns: u64,
    /// Times the frame was entered.
    pub count: u64,
}

/// One label's aggregate across the whole tree (the hotspot table row).
#[derive(Clone, PartialEq, Debug)]
pub struct Hotspot {
    /// Frame name.
    pub label: String,
    /// Self time summed over every tree node with this label.
    pub self_ns: u64,
    /// Total time summed over every tree node with this label.
    pub total_ns: u64,
    /// Enter count summed over every tree node with this label.
    pub count: u64,
}

/// One thread's raw span timeline (drives the Chrome export).
struct Timeline {
    thread: String,
    raw: Vec<RawSpan>,
}

/// The merged self-profiling result of one [`drain`].
pub struct PerfReport {
    /// The merged call tree in depth-first order (parents precede
    /// children).
    pub nodes: Vec<PerfNode>,
    /// Raw timeline spans dropped because a thread hit the in-memory cap.
    pub dropped_spans: u64,
    timelines: Vec<Timeline>,
}

/// Flushes the calling thread's buffer and merges every flushed buffer
/// into a [`PerfReport`], leaving the pool empty. The enabled flag is
/// untouched.
pub fn drain() -> PerfReport {
    let _ = TLS.try_with(|tls| {
        if let Some(dump) = tls.0.borrow_mut().take_dump() {
            if let Ok(mut pool) = pool().lock() {
                pool.push(dump);
            }
        }
    });
    let dumps: Vec<ThreadDump> = std::mem::take(&mut *pool().lock().expect("perf pool poisoned"));
    let names: Vec<String> = labels().lock().expect("label table poisoned").names.clone();
    merge(dumps, &names)
}

/// Discards all buffered data (calling thread + pool).
pub fn reset() {
    let _ = drain();
}

/// Merge key trie node during [`merge`].
struct MergeNode {
    label: u32,
    parent: usize, // index into merged, usize::MAX for root
    self_ns: u64,
    total_ns: u64,
    count: u64,
    children: Vec<usize>,
}

fn merge(dumps: Vec<ThreadDump>, names: &[String]) -> PerfReport {
    let mut merged: Vec<MergeNode> = Vec::new();
    let mut index: HashMap<(usize, u32), usize> = HashMap::new();
    let mut dropped = 0u64;
    let mut timelines = Vec::new();
    for dump in dumps {
        dropped += dump.dropped;
        // Map this dump's node ids to merged ids, parents first (node
        // ids are allocated in discovery order, so a parent always has a
        // smaller id than its children).
        let mut map: Vec<usize> = vec![usize::MAX; dump.nodes.len()];
        for (id, node) in dump.nodes.iter().enumerate() {
            if id == 0 {
                continue; // synthetic root
            }
            let parent = if node.parent == 0 {
                usize::MAX
            } else {
                map[node.parent as usize]
            };
            let slot = *index.entry((parent, node.label)).or_insert_with(|| {
                merged.push(MergeNode {
                    label: node.label,
                    parent,
                    self_ns: 0,
                    total_ns: 0,
                    count: 0,
                    children: Vec::new(),
                });
                let slot = merged.len() - 1;
                if parent != usize::MAX {
                    merged[parent].children.push(slot);
                }
                slot
            });
            merged[slot].self_ns += node.self_ns;
            merged[slot].total_ns += node.total_ns;
            merged[slot].count += node.count;
            map[id] = slot;
        }
        if !dump.raw.is_empty() {
            timelines.push(Timeline {
                thread: dump.thread,
                raw: dump.raw,
            });
        }
    }
    // Deterministic order: threads by name, roots and children by label.
    timelines.sort_by(|a, b| a.thread.cmp(&b.thread));
    let resolve = |l: u32| names.get(l as usize).map(String::as_str).unwrap_or("?");
    // Emit depth-first with children sorted by descending total time.
    let mut roots: Vec<usize> = (0..merged.len())
        .filter(|&i| merged[i].parent == usize::MAX)
        .collect();
    roots.sort_by(|&a, &b| {
        merged[b]
            .total_ns
            .cmp(&merged[a].total_ns)
            .then_with(|| resolve(merged[a].label).cmp(resolve(merged[b].label)))
    });
    let mut nodes = Vec::with_capacity(merged.len());
    let mut remap: Vec<usize> = vec![usize::MAX; merged.len()];
    let mut stack: Vec<usize> = roots.into_iter().rev().collect();
    while let Some(i) = stack.pop() {
        let node = &merged[i];
        let out = nodes.len();
        remap[i] = out;
        nodes.push(PerfNode {
            label: resolve(node.label).to_owned(),
            parent: if node.parent == usize::MAX {
                None
            } else {
                Some(remap[node.parent])
            },
            self_ns: node.self_ns,
            total_ns: node.total_ns,
            count: node.count,
        });
        let mut kids = node.children.clone();
        kids.sort_by(|&a, &b| {
            merged[b]
                .total_ns
                .cmp(&merged[a].total_ns)
                .then_with(|| resolve(merged[a].label).cmp(resolve(merged[b].label)))
        });
        stack.extend(kids.into_iter().rev());
    }
    PerfReport {
        nodes,
        dropped_spans: dropped,
        timelines,
    }
}

impl PerfReport {
    /// True when nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Per-label aggregates over the whole tree, sorted by descending
    /// self time. Note a recursive label's `total_ns` counts each nesting
    /// level once (self time is never double-counted).
    pub fn hotspots(&self) -> Vec<Hotspot> {
        let mut by_label: HashMap<&str, Hotspot> = HashMap::new();
        for node in &self.nodes {
            let entry = by_label.entry(&node.label).or_insert_with(|| Hotspot {
                label: node.label.clone(),
                self_ns: 0,
                total_ns: 0,
                count: 0,
            });
            entry.self_ns += node.self_ns;
            entry.total_ns += node.total_ns;
            entry.count += node.count;
        }
        let mut spots: Vec<Hotspot> = by_label.into_values().collect();
        spots.sort_by(|a, b| {
            b.self_ns
                .cmp(&a.self_ns)
                .then_with(|| a.label.cmp(&b.label))
        });
        spots
    }

    /// Renders the top-`n` hotspot table (self/total time, counts, and
    /// the self-time share of the profiled wall-clock).
    pub fn render_top(&self, n: usize) -> String {
        let spots = self.hotspots();
        let wall: u64 = spots.iter().map(|s| s.self_ns).sum();
        let mut out = String::from(
            "frame                            |  self (ms) | total (ms) |    calls |  self %\n",
        );
        out.push_str(
            "---------------------------------+------------+------------+----------+--------\n",
        );
        for spot in spots.iter().take(n) {
            let share = if wall == 0 {
                0.0
            } else {
                spot.self_ns as f64 * 100.0 / wall as f64
            };
            out.push_str(&format!(
                "{:<32} | {:>10.3} | {:>10.3} | {:>8} | {:>5.1} %\n",
                spot.label,
                spot.self_ns as f64 / 1e6,
                spot.total_ns as f64 / 1e6,
                spot.count,
                share,
            ));
        }
        if self.dropped_spans > 0 {
            out.push_str(&format!(
                "(timeline capped: {} raw spans dropped; aggregates above are exact)\n",
                self.dropped_spans
            ));
        }
        out
    }

    /// Collapsed-stack (inferno/flamegraph) rendering: one
    /// `frame;frame;frame value` line per tree node with non-zero self
    /// time, value in nanoseconds.
    pub fn to_folded(&self) -> String {
        let mut out = String::new();
        let mut path: Vec<String> = Vec::new();
        for (i, node) in self.nodes.iter().enumerate() {
            // Reconstruct the path by walking parents (cheap: trees are
            // small — labels, not samples).
            path.clear();
            let mut cursor = Some(i);
            while let Some(c) = cursor {
                path.push(self.nodes[c].label.clone());
                cursor = self.nodes[c].parent;
            }
            path.reverse();
            if node.self_ns > 0 {
                out.push_str(&path.join(";"));
                out.push(' ');
                out.push_str(&node.self_ns.to_string());
                out.push('\n');
            }
        }
        out
    }

    /// Chrome trace-event rendering of the raw per-thread timelines,
    /// through the [`crate::chrome`] exporter: one host-clock track per
    /// profiled thread, so Perfetto shows named profiler threads next to
    /// the simulated-clock tracks.
    pub fn to_chrome(&self) -> String {
        let mut recorder = Recorder::new();
        for timeline in &self.timelines {
            let track = recorder.track(&format!("profiler/{}", timeline.thread), Clock::Host);
            let names: Vec<String> = {
                let table = labels().lock().expect("label table poisoned");
                table.names.clone()
            };
            for span in &timeline.raw {
                let name = names
                    .get(span.label as usize)
                    .map(String::as_str)
                    .unwrap_or("?");
                recorder.span(track, name, span.start_ns, span.dur_ns);
            }
        }
        crate::chrome::to_chrome_json(&recorder)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Profiler state is process-global; tests that touch it serialise on
    /// this lock so `cargo test`'s thread pool cannot interleave them.
    fn guard() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: Mutex<()> = Mutex::new(());
        LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn disabled_profiler_records_nothing() {
        let _g = guard();
        disable();
        reset();
        {
            let _a = enter_named("dead.a");
            let _b = enter_named("dead.b");
        }
        let report = drain();
        assert!(report.is_empty());
        assert_eq!(report.to_folded(), "");
    }

    #[test]
    fn nested_spans_build_a_tree_with_self_and_total() {
        let _g = guard();
        reset();
        enable();
        {
            let _p = enter_named("parent");
            std::thread::sleep(std::time::Duration::from_millis(2));
            {
                let _c = enter_named("child");
                std::thread::sleep(std::time::Duration::from_millis(2));
            }
        }
        disable();
        let report = drain();
        let parent = report
            .nodes
            .iter()
            .find(|n| n.label == "parent")
            .expect("parent node");
        let child = report
            .nodes
            .iter()
            .find(|n| n.label == "child")
            .expect("child node");
        assert!(child.parent.is_some());
        assert_eq!(report.nodes[child.parent.unwrap()].label, "parent");
        assert!(parent.total_ns >= child.total_ns);
        assert!(parent.self_ns <= parent.total_ns - child.total_ns + 1_000_000);
        let folded = report.to_folded();
        assert!(folded.contains("parent;child "), "folded: {folded}");
    }

    #[test]
    fn worker_thread_buffers_merge_at_drain() {
        let _g = guard();
        reset();
        enable();
        let shard = label("shard");
        std::thread::scope(|scope| {
            for _ in 0..2 {
                scope.spawn(|| {
                    let _s = enter(shard);
                    std::thread::sleep(std::time::Duration::from_millis(1));
                });
            }
        });
        disable();
        let report = drain();
        let spot = report
            .hotspots()
            .into_iter()
            .find(|h| h.label == "shard")
            .expect("merged shard frames");
        assert_eq!(spot.count, 2, "both workers' frames merged");
    }

    #[test]
    fn labels_are_interned_once() {
        let a = label("same");
        let b = label("same");
        let c = label("other");
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn chrome_export_is_valid_json_with_thread_tracks() {
        let _g = guard();
        reset();
        enable();
        {
            let _s = enter_named("export.me");
        }
        disable();
        let report = drain();
        let text = report.to_chrome();
        let doc = crate::json::parse(&text).expect("valid chrome JSON");
        let events = doc.get("traceEvents").unwrap().as_array().unwrap();
        assert!(events
            .iter()
            .any(|e| { e.get("name").and_then(crate::json::Json::as_str) == Some("thread_name") }));
        assert!(events
            .iter()
            .any(|e| { e.get("name").and_then(crate::json::Json::as_str) == Some("export.me") }));
    }

    #[test]
    fn render_top_lists_hotspots() {
        let _g = guard();
        reset();
        enable();
        {
            let _s = enter_named("hot.frame");
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        disable();
        let report = drain();
        let table = report.render_top(10);
        assert!(table.contains("hot.frame"), "{table}");
        assert!(table.contains("self (ms)"));
    }
}
