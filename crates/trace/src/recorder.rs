//! The collecting [`TraceSink`]: tracks, events, and embedded metrics.

use std::collections::HashMap;
use std::time::Instant;

use crate::metrics::MetricsRegistry;
use crate::sink::{Clock, TraceSink, TrackId};

/// What kind of event a [`TraceEvent`] is.
#[derive(Clone, PartialEq, Debug)]
pub enum EventKind {
    /// A complete span lasting `dur_ns` from the event timestamp.
    Span {
        /// Duration in nanoseconds.
        dur_ns: u64,
    },
    /// A zero-duration marker.
    Instant,
    /// A counter sample.
    Counter {
        /// Sampled value.
        value: f64,
    },
}

/// One recorded event.
#[derive(Clone, PartialEq, Debug)]
pub struct TraceEvent {
    /// The track the event belongs to.
    pub track: TrackId,
    /// Event name (span label, instant label, or counter series name).
    pub name: String,
    /// Timestamp in nanoseconds (clock domain of the track).
    pub ts_ns: u64,
    /// Span, instant, or counter payload.
    pub kind: EventKind,
}

/// One named track.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Track {
    /// Display name (`pe/cpu1`, `hibi/seg0`, `tool/profiling`).
    pub name: String,
    /// The clock domain of the track's timestamps.
    pub clock: Clock,
}

/// An in-memory trace recorder.
///
/// Collects events on interned tracks plus metric samples, and carries
/// the monotonic host clock used to stamp tool-stage spans. Export the
/// result with [`crate::chrome::to_chrome_json`],
/// [`crate::prom::to_prometheus`], or [`crate::vcd::to_vcd`].
#[derive(Clone, Debug)]
pub struct Recorder {
    tracks: Vec<Track>,
    by_name: HashMap<(String, bool), TrackId>,
    events: Vec<TraceEvent>,
    /// Counters, gauges, and histograms recorded through the sink
    /// interface (or directly).
    pub metrics: MetricsRegistry,
    started: Instant,
}

impl Default for Recorder {
    fn default() -> Self {
        Recorder::new()
    }
}

impl Recorder {
    /// A fresh recorder; the host clock starts now.
    pub fn new() -> Recorder {
        Recorder {
            tracks: Vec::new(),
            by_name: HashMap::new(),
            events: Vec::new(),
            metrics: MetricsRegistry::new(),
            started: Instant::now(),
        }
    }

    /// All tracks in creation order (`TrackId::index` indexes this).
    pub fn tracks(&self) -> &[Track] {
        &self.tracks
    }

    /// All events in record order.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Number of recorded events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when no events were recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Looks a track up by name without creating it.
    pub fn find_track(&self, name: &str) -> Option<TrackId> {
        self.tracks
            .iter()
            .position(|t| t.name == name)
            .map(|i| TrackId(i as u32))
    }

    /// Replays everything this recorder captured into another sink, so
    /// traces recorded on worker threads can be merged back into the
    /// parent sink.
    ///
    /// Tracks are re-interned by name (shared tracks merge), and
    /// `host_offset_ns` — the parent's host clock when the worker started
    /// — is added to Host-clock timestamps to re-base them onto the
    /// parent's clock; Sim-clock timestamps pass through untouched.
    /// Counters replay via [`TraceSink::add`] and gauges via
    /// [`TraceSink::gauge`]. Histograms replay per bucket at the bucket's
    /// low edge, which lands in the same bucket (bucket counts are exact;
    /// the merged sum/min/max are approximated by the bucket edges).
    pub fn replay_into<T: TraceSink>(&self, sink: &mut T, host_offset_ns: u64) {
        let mapped: Vec<TrackId> = self
            .tracks
            .iter()
            .map(|t| sink.track(&t.name, t.clock))
            .collect();
        for event in &self.events {
            let track = mapped[event.track.index()];
            let ts = match self.tracks[event.track.index()].clock {
                Clock::Host => event.ts_ns.saturating_add(host_offset_ns),
                Clock::Sim => event.ts_ns,
            };
            match event.kind {
                EventKind::Span { dur_ns } => sink.span(track, &event.name, ts, dur_ns),
                EventKind::Instant => sink.instant(track, &event.name, ts),
                EventKind::Counter { value } => sink.counter(track, &event.name, ts, value),
            }
        }
        for (name, value) in self.metrics.counters() {
            sink.add(name, value);
        }
        for (name, value) in self.metrics.gauges() {
            sink.gauge(name, value);
        }
        for (name, histogram) in self.metrics.histograms() {
            for (low, _, count) in histogram.nonzero_buckets() {
                for _ in 0..count {
                    sink.observe(name, low);
                }
            }
        }
    }
}

impl TraceSink for Recorder {
    fn enabled(&self) -> bool {
        true
    }

    fn track(&mut self, name: &str, clock: Clock) -> TrackId {
        let key = (name.to_owned(), matches!(clock, Clock::Host));
        if let Some(&id) = self.by_name.get(&key) {
            return id;
        }
        let id = TrackId(self.tracks.len() as u32);
        self.tracks.push(Track {
            name: name.to_owned(),
            clock,
        });
        self.by_name.insert(key, id);
        id
    }

    fn span(&mut self, track: TrackId, name: &str, start_ns: u64, dur_ns: u64) {
        self.events.push(TraceEvent {
            track,
            name: name.to_owned(),
            ts_ns: start_ns,
            kind: EventKind::Span { dur_ns },
        });
    }

    fn instant(&mut self, track: TrackId, name: &str, ts_ns: u64) {
        self.events.push(TraceEvent {
            track,
            name: name.to_owned(),
            ts_ns,
            kind: EventKind::Instant,
        });
    }

    fn counter(&mut self, track: TrackId, name: &str, ts_ns: u64, value: f64) {
        self.events.push(TraceEvent {
            track,
            name: name.to_owned(),
            ts_ns,
            kind: EventKind::Counter { value },
        });
    }

    fn add(&mut self, name: &str, by: u64) {
        self.metrics.add(name, by);
    }

    fn gauge(&mut self, name: &str, value: f64) {
        self.metrics.gauge(name, value);
    }

    fn observe(&mut self, name: &str, value: u64) {
        self.metrics.observe(name, value);
    }

    fn host_now_ns(&self) -> u64 {
        u64::try_from(self.started.elapsed().as_nanos()).unwrap_or(u64::MAX)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tracks_are_interned() {
        let mut rec = Recorder::new();
        let a = rec.track("pe/cpu1", Clock::Sim);
        let b = rec.track("pe/cpu1", Clock::Sim);
        let c = rec.track("pe/cpu2", Clock::Sim);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(rec.tracks().len(), 2);
        assert_eq!(rec.find_track("pe/cpu2"), Some(c));
        assert_eq!(rec.find_track("nope"), None);
    }

    #[test]
    fn events_are_recorded_in_order() {
        let mut rec = Recorder::new();
        let t = rec.track("t", Clock::Sim);
        rec.span(t, "a", 0, 5);
        rec.instant(t, "b", 2);
        rec.counter(t, "c", 3, 1.5);
        assert_eq!(rec.len(), 3);
        assert!(matches!(
            rec.events()[0].kind,
            EventKind::Span { dur_ns: 5 }
        ));
        assert!(matches!(rec.events()[1].kind, EventKind::Instant));
        assert!(matches!(rec.events()[2].kind, EventKind::Counter { .. }));
    }

    #[test]
    fn metrics_route_to_the_registry() {
        let mut rec = Recorder::new();
        rec.add("n", 2);
        rec.observe("h", 7);
        rec.gauge("g", 3.0);
        assert_eq!(rec.metrics.counter("n"), Some(2));
        assert_eq!(rec.metrics.histogram("h").unwrap().count(), 1);
    }

    #[test]
    fn host_clock_is_monotonic() {
        let rec = Recorder::new();
        let a = rec.host_now_ns();
        let b = rec.host_now_ns();
        assert!(b >= a);
    }

    #[test]
    fn replay_merges_tracks_offsets_host_time_and_sums_metrics() {
        let mut worker = Recorder::new();
        let host = worker.track("tool/anneal", Clock::Host);
        let sim = worker.track("pe/cpu1", Clock::Sim);
        worker.span(host, "restart", 10, 5);
        worker.instant(sim, "tick", 42);
        worker.counter(host, "objective", 12, 3.5);
        worker.add("runs", 2);
        worker.gauge("temp", 0.5);
        worker.observe("wait", 7);
        worker.observe("wait", 100);

        let mut parent = Recorder::new();
        let parent_host = parent.track("tool/anneal", Clock::Host);
        parent.add("runs", 1);
        worker.replay_into(&mut parent, 1_000);

        // The shared host track was merged, not duplicated.
        assert_eq!(parent.find_track("tool/anneal"), Some(parent_host));
        assert_eq!(parent.tracks().len(), 2);
        // Host timestamps were re-based; sim timestamps pass through.
        let span = &parent.events()[0];
        assert_eq!(span.ts_ns, 1_010);
        assert!(matches!(span.kind, EventKind::Span { dur_ns: 5 }));
        let instant = &parent.events()[1];
        assert_eq!(instant.ts_ns, 42, "sim clock must not be offset");
        assert_eq!(parent.events()[2].ts_ns, 1_012);
        // Counters accumulate, gauges land, histogram bucket counts are
        // exact.
        assert_eq!(parent.metrics.counter("runs"), Some(3));
        assert_eq!(parent.metrics.gauge_value("temp"), Some(0.5));
        let wait = parent.metrics.histogram("wait").unwrap();
        assert_eq!(wait.count(), 2);
        assert_eq!(wait.min(), Some(7), "low linear buckets replay exactly");
    }
}
