//! Prometheus text exposition of a [`MetricsRegistry`].
//!
//! Produces the classic text format (`# TYPE` lines, cumulative
//! `_bucket{le="…"}` series for histograms). Metric names are sanitised
//! to the exposition charset: anything outside `[a-zA-Z0-9_:]` becomes
//! `_`, so the dotted in-tree names (`sim.signal_latency_ns`) export as
//! `sim_signal_latency_ns`.

use std::fmt::Write as _;

use crate::metrics::MetricsRegistry;

/// Maps an in-tree metric name to a legal Prometheus metric name.
pub fn sanitise(name: &str) -> String {
    let mut out: String = name
        .chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '_' || c == ':' {
                c
            } else {
                '_'
            }
        })
        .collect();
    if out
        .chars()
        .next()
        .map(|c| c.is_ascii_digit())
        .unwrap_or(true)
    {
        out.insert(0, '_');
    }
    out
}

fn fmt_f64(value: f64) -> String {
    if value.is_finite() {
        format!("{value}")
    } else if value.is_nan() {
        "NaN".to_owned()
    } else if value > 0.0 {
        "+Inf".to_owned()
    } else {
        "-Inf".to_owned()
    }
}

/// Renders the registry in Prometheus text exposition format.
pub fn to_prometheus(metrics: &MetricsRegistry) -> String {
    let mut out = String::new();
    for (name, value) in metrics.counters() {
        let name = sanitise(name);
        let _ = write!(out, "# TYPE {name} counter\n{name} {value}\n");
    }
    for (name, value) in metrics.gauges() {
        let name = sanitise(name);
        let _ = write!(out, "# TYPE {name} gauge\n{name} {}\n", fmt_f64(value));
    }
    for (name, histogram) in metrics.histograms() {
        let name = sanitise(name);
        let _ = writeln!(out, "# TYPE {name} histogram");
        let mut cumulative = 0u64;
        for (_, high, count) in histogram.nonzero_buckets() {
            cumulative += count;
            let _ = writeln!(out, "{name}_bucket{{le=\"{high}\"}} {cumulative}");
        }
        let _ = write!(
            out,
            "{name}_bucket{{le=\"+Inf\"}} {}\n{name}_sum {}\n{name}_count {}\n",
            histogram.count(),
            histogram.sum(),
            histogram.count()
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sanitises_names() {
        assert_eq!(sanitise("sim.signal_latency_ns"), "sim_signal_latency_ns");
        assert_eq!(sanitise("hibi/seg 0"), "hibi_seg_0");
        assert_eq!(sanitise("9lives"), "_9lives");
        assert_eq!(sanitise(""), "_");
    }

    #[test]
    fn counters_gauges_histograms_export() {
        let mut m = MetricsRegistry::new();
        m.add("sim.steps", 12);
        m.gauge("queue.depth", 3.5);
        m.observe("latency", 5);
        m.observe("latency", 5);
        m.observe("latency", 100);
        let text = to_prometheus(&m);
        assert!(text.contains("# TYPE sim_steps counter\nsim_steps 12\n"));
        assert!(text.contains("# TYPE queue_depth gauge\nqueue_depth 3.5\n"));
        assert!(text.contains("# TYPE latency histogram\n"));
        assert!(text.contains("latency_bucket{le=\"5\"} 2\n"));
        assert!(text.contains("latency_bucket{le=\"+Inf\"} 3\n"));
        assert!(text.contains("latency_sum 110\n"));
        assert!(text.contains("latency_count 3\n"));
    }

    #[test]
    fn histogram_buckets_are_cumulative_and_sorted() {
        let mut m = MetricsRegistry::new();
        for v in [1u64, 2, 2, 50, 1000] {
            m.observe("h", v);
        }
        let text = to_prometheus(&m);
        let counts: Vec<u64> = text
            .lines()
            .filter(|l| l.starts_with("h_bucket{") && !l.contains("+Inf"))
            .map(|l| l.rsplit(' ').next().unwrap().parse().unwrap())
            .collect();
        assert!(counts.windows(2).all(|w| w[0] <= w[1]), "{counts:?}");
        assert_eq!(*counts.last().unwrap(), 5);
    }

    #[test]
    fn empty_registry_exports_nothing() {
        assert_eq!(to_prometheus(&MetricsRegistry::new()), "");
    }
}
