//! VCD (value change dump) waveform export.
//!
//! Renders span activity as 1-bit wires, the natural EDA view of the
//! HIBI bus: for every selected track, each distinct span name becomes
//! a wire (`seg0_busy`, `seg0_arb`, …) that is high while a span of
//! that name is active. The output loads in GTKWave or any IEEE 1364
//! VCD viewer. Timescale is 1 ns, matching the simulated clock.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use crate::recorder::{EventKind, Recorder};
use crate::sink::Clock;

/// A VCD short identifier: base-94 over the printable ASCII range.
fn id_code(mut index: usize) -> String {
    let mut out = String::new();
    loop {
        out.push((33 + (index % 94)) as u8 as char);
        index /= 94;
        if index == 0 {
            return out;
        }
        index -= 1;
    }
}

/// Maps a track/span name to a legal VCD identifier word.
fn sanitise(name: &str) -> String {
    name.chars()
        .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
        .collect()
}

/// Renders every simulated-clock track whose name starts with
/// `track_prefix` as a set of 1-bit wires, one per distinct span name.
///
/// Overlapping spans on the same wire are merged (the wire stays high
/// until the last one ends). Tracks without spans are skipped. Passing
/// an empty prefix selects every simulated track.
pub fn to_vcd(recorder: &Recorder, track_prefix: &str) -> String {
    // wire key: (track index, span name) -> edge list (ts, delta).
    let mut edges: BTreeMap<(usize, String), Vec<(u64, i64)>> = BTreeMap::new();
    for event in recorder.events() {
        let track = &recorder.tracks()[event.track.index()];
        if track.clock != Clock::Sim || !track.name.starts_with(track_prefix) {
            continue;
        }
        if let EventKind::Span { dur_ns } = event.kind {
            let wire = edges
                .entry((event.track.index(), event.name.clone()))
                .or_default();
            wire.push((event.ts_ns, 1));
            wire.push((event.ts_ns.saturating_add(dur_ns.max(1)), -1));
        }
    }

    let mut out = String::new();
    out.push_str("$version tut-trace VCD export $end\n");
    out.push_str("$timescale 1 ns $end\n");
    out.push_str("$scope module trace $end\n");
    let mut wires: Vec<(String, Vec<(u64, i64)>)> = Vec::new();
    for ((track_index, span_name), wire_edges) in edges {
        let track = &recorder.tracks()[track_index];
        let code = id_code(wires.len());
        let _ = writeln!(
            out,
            "$var wire 1 {code} {}_{} $end",
            sanitise(&track.name),
            sanitise(&span_name)
        );
        wires.push((code, wire_edges));
    }
    out.push_str("$upscope $end\n$enddefinitions $end\n");

    // Initial values: everything low.
    out.push_str("$dumpvars\n");
    for (code, _) in &wires {
        let _ = writeln!(out, "0{code}");
    }
    out.push_str("$end\n");

    // Sweep: merge per-wire edge lists into a global change timeline.
    // (time, wire index, new bit)
    let mut changes: Vec<(u64, usize, u8)> = Vec::new();
    for (wire_index, (_, wire_edges)) in wires.iter_mut().enumerate() {
        wire_edges.sort_by_key(|&(ts, delta)| (ts, -delta));
        let mut depth: i64 = 0;
        for &(ts, delta) in wire_edges.iter() {
            let was_high = depth > 0;
            depth += delta;
            let is_high = depth > 0;
            if was_high != is_high {
                changes.push((ts, wire_index, u8::from(is_high)));
            }
        }
    }
    changes.sort_by_key(|&(ts, wire, _)| (ts, wire));
    let mut current_time: Option<u64> = None;
    for (ts, wire, bit) in changes {
        if current_time != Some(ts) {
            let _ = writeln!(out, "#{ts}");
            current_time = Some(ts);
        }
        let _ = writeln!(out, "{bit}{}", wires[wire].0);
    }
    out
}

/// A lightweight structural check of a VCD document: header present,
/// every change references a declared identifier, timestamps
/// non-decreasing. Used by tests and the `repro` binary to confirm
/// exports parse before handing them to a real viewer.
///
/// # Errors
///
/// Returns a message naming the first malformed line.
pub fn validate_vcd(text: &str) -> Result<(), String> {
    let mut declared: Vec<String> = Vec::new();
    let mut in_definitions = true;
    let mut last_time: u64 = 0;
    let mut saw_timescale = false;
    for (number, line) in text.lines().enumerate() {
        let line = line.trim();
        let fail = |msg: &str| Err(format!("line {}: {msg}", number + 1));
        if line.is_empty() {
            continue;
        }
        if in_definitions {
            if line.starts_with("$timescale") {
                saw_timescale = true;
            } else if line.starts_with("$var") {
                let fields: Vec<&str> = line.split_whitespace().collect();
                if fields.len() < 6 || fields[5] != "$end" && fields[fields.len() - 1] != "$end" {
                    return fail("malformed $var");
                }
                declared.push(fields[3].to_owned());
            } else if line.starts_with("$enddefinitions") {
                in_definitions = false;
            }
            continue;
        }
        if line.starts_with('$') {
            continue; // $dumpvars / $end blocks
        }
        if let Some(stripped) = line.strip_prefix('#') {
            let ts: u64 = stripped
                .parse()
                .map_err(|_| format!("line {}: bad timestamp", number + 1))?;
            if ts < last_time {
                return fail("timestamps must not decrease");
            }
            last_time = ts;
        } else if let Some(code) = line.strip_prefix(['0', '1', 'x', 'z']) {
            if !declared.iter().any(|d| d == code) {
                return fail("change references undeclared identifier");
            }
        } else {
            return fail("unrecognised line");
        }
    }
    if !saw_timescale {
        return Err("missing $timescale".into());
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sink::TraceSink;

    fn sample() -> Recorder {
        let mut rec = Recorder::new();
        let seg = rec.track("hibi/seg0", Clock::Sim);
        let other = rec.track("pe/cpu1", Clock::Sim);
        rec.span(seg, "busy", 100, 50);
        rec.span(seg, "arb", 90, 10);
        rec.span(seg, "busy", 200, 25);
        rec.span(other, "step", 0, 10);
        rec
    }

    #[test]
    fn export_declares_one_wire_per_span_name() {
        let text = to_vcd(&sample(), "hibi/");
        assert!(text.contains("hibi_seg0_busy"));
        assert!(text.contains("hibi_seg0_arb"));
        assert!(!text.contains("pe_cpu1"), "prefix filter applies");
        validate_vcd(&text).expect("structurally valid");
    }

    #[test]
    fn changes_are_time_ordered_and_toggle() {
        let text = to_vcd(&sample(), "hibi/");
        let times: Vec<u64> = text
            .lines()
            .filter_map(|l| l.strip_prefix('#'))
            .map(|t| t.parse().unwrap())
            .collect();
        assert_eq!(times, vec![90, 100, 150, 200, 225]);
    }

    #[test]
    fn overlapping_spans_merge() {
        let mut rec = Recorder::new();
        let seg = rec.track("hibi/seg0", Clock::Sim);
        rec.span(seg, "busy", 0, 100);
        rec.span(seg, "busy", 50, 100); // overlaps; wire high 0..150
        let text = to_vcd(&rec, "hibi/");
        let times: Vec<u64> = text
            .lines()
            .filter_map(|l| l.strip_prefix('#'))
            .map(|t| t.parse().unwrap())
            .collect();
        assert_eq!(times, vec![0, 150], "no glitch at 50 or 100");
        validate_vcd(&text).unwrap();
    }

    #[test]
    fn id_codes_are_unique_and_printable() {
        let mut seen = std::collections::HashSet::new();
        for i in 0..500 {
            let code = id_code(i);
            assert!(code.bytes().all(|b| (33..127).contains(&b)));
            assert!(seen.insert(code));
        }
    }

    #[test]
    fn validator_rejects_garbage() {
        assert!(validate_vcd("not a vcd").is_err());
        let good = to_vcd(&sample(), "");
        validate_vcd(&good).unwrap();
        let bad = good.replace("#90", "#999999999\n#90");
        assert!(validate_vcd(&bad).is_err(), "time went backwards");
    }
}
