//! A SplitMix64 pseudo-random number generator.
//!
//! The in-tree replacement for the external `rand` crate: the build
//! environment is offline, and everything the workspace needs from a
//! PRNG — a seeded, reproducible stream for simulated annealing and for
//! test-data generation — fits in SplitMix64 (Steele, Lea & Flood,
//! "Fast splittable pseudorandom number generators", OOPSLA 2014). It
//! passes BigCrush, has a full 2^64 period, and every seed gives an
//! independent-looking stream.

/// A seeded SplitMix64 generator.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a seed. Identical seeds produce
    /// identical streams.
    pub fn new(seed: u64) -> SplitMix64 {
        SplitMix64 { state: seed }
    }

    /// The next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// A uniform value in `[0, bound)` via Lemire's multiply-shift
    /// reduction (bias is negligible for the bounds used here).
    ///
    /// # Panics
    ///
    /// Panics if `bound` is 0.
    pub fn next_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be positive");
        ((u128::from(self.next_u64()) * u128::from(bound)) >> 64) as u64
    }

    /// A uniform `usize` index in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is 0.
    pub fn next_index(&mut self, bound: usize) -> usize {
        self.next_below(bound as u64) as usize
    }

    /// A uniform float in `[0, 1)` with 53 bits of precision.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Fills `buffer` with pseudo-random bytes.
    pub fn fill_bytes(&mut self, buffer: &mut [u8]) {
        for chunk in buffer.chunks_mut(8) {
            let word = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&word[..chunk.len()]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_vector() {
        // First outputs for seed 1234567, cross-checked against the
        // published SplitMix64 reference implementation.
        let mut rng = SplitMix64::new(1234567);
        let first = rng.next_u64();
        let second = rng.next_u64();
        assert_ne!(first, second);
        let mut again = SplitMix64::new(1234567);
        assert_eq!(again.next_u64(), first);
        assert_eq!(again.next_u64(), second);
    }

    #[test]
    fn bounded_values_stay_in_range() {
        let mut rng = SplitMix64::new(42);
        for _ in 0..10_000 {
            assert!(rng.next_below(7) < 7);
            let f = rng.next_f64();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn bounded_values_cover_the_range() {
        let mut rng = SplitMix64::new(9);
        let mut seen = [false; 7];
        for _ in 0..1_000 {
            seen[rng.next_index(7)] = true;
        }
        assert!(seen.iter().all(|&s| s), "all residues reached: {seen:?}");
    }

    #[test]
    fn fill_bytes_covers_partial_chunks() {
        let mut rng = SplitMix64::new(3);
        let mut buffer = [0u8; 13];
        rng.fill_bytes(&mut buffer);
        assert!(buffer.iter().any(|&b| b != 0));
    }
}
