//! Chrome trace-event JSON export (hand-rolled writer).
//!
//! The output loads in Perfetto (<https://ui.perfetto.dev>) and
//! `chrome://tracing`. Layout:
//!
//! * process 1 "simulated" — tracks on the simulated clock, one thread
//!   per track (processing elements, HIBI segments);
//! * process 2 "host" — tracks on the monotonic host clock (tool
//!   stages).
//!
//! Timestamps are emitted in microseconds (the trace-event unit) with
//! nanosecond precision preserved as three decimals.

use std::fmt::Write as _;

use crate::recorder::{EventKind, Recorder};
use crate::sink::Clock;

/// Escapes a string for a JSON string literal (quotes not included).
pub fn escape_json(text: &str) -> String {
    let mut out = String::with_capacity(text.len() + 2);
    escape_json_into(&mut out, text);
    out
}

/// [`escape_json`] appending to an existing buffer instead of
/// allocating one per call.
fn escape_json_into(out: &mut String, text: &str) {
    for c in text.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

/// Appends nanoseconds rendered as microseconds with 3 decimals.
fn write_us(out: &mut String, ns: u64) {
    let _ = write!(out, "{}.{:03}", ns / 1000, ns % 1000);
}

fn pid(clock: Clock) -> u32 {
    match clock {
        Clock::Sim => 1,
        Clock::Host => 2,
    }
}

/// Renders the recorder's events as a complete Chrome trace-event JSON
/// document (object form, `traceEvents` array).
pub fn to_chrome_json(recorder: &Recorder) -> String {
    let mut out = String::with_capacity(64 + recorder.len() * 96);
    out.push_str("{\"displayTimeUnit\":\"ns\",\"traceEvents\":[");
    let mut first = true;
    // Every event is rendered with `write!` straight into the one
    // output buffer; `sep` places the comma/newline between them.
    let mut sep = move |out: &mut String| {
        if !first {
            out.push(',');
        }
        first = false;
        out.push('\n');
    };

    // Metadata: name the two processes and every track (thread).
    for (clock, label) in [(Clock::Sim, "simulated"), (Clock::Host, "host")] {
        if recorder.tracks().iter().any(|t| t.clock == clock) {
            sep(&mut out);
            let _ = write!(
                out,
                "{{\"ph\":\"M\",\"pid\":{},\"tid\":0,\"name\":\"process_name\",\
                 \"args\":{{\"name\":\"{}\"}}}}",
                pid(clock),
                label
            );
        }
    }
    for (index, track) in recorder.tracks().iter().enumerate() {
        sep(&mut out);
        let _ = write!(
            out,
            "{{\"ph\":\"M\",\"pid\":{},\"tid\":{},\"name\":\"thread_name\",\
             \"args\":{{\"name\":\"",
            pid(track.clock),
            index,
        );
        escape_json_into(&mut out, &track.name);
        out.push_str("\"}}");
    }

    for event in recorder.events() {
        let track = &recorder.tracks()[event.track.index()];
        let (p, tid) = (pid(track.clock), event.track.index());
        sep(&mut out);
        let ph = match event.kind {
            EventKind::Span { .. } => "X",
            EventKind::Instant => "i",
            EventKind::Counter { .. } => "C",
        };
        let _ = write!(
            out,
            "{{\"ph\":\"{ph}\",\"pid\":{p},\"tid\":{tid},\"name\":\""
        );
        escape_json_into(&mut out, &event.name);
        out.push_str("\",\"ts\":");
        write_us(&mut out, event.ts_ns);
        match event.kind {
            EventKind::Span { dur_ns } => {
                out.push_str(",\"dur\":");
                write_us(&mut out, dur_ns);
                out.push('}');
            }
            EventKind::Instant => out.push_str(",\"s\":\"t\"}"),
            EventKind::Counter { value } => {
                let _ = write!(out, ",\"args\":{{\"value\":{}}}}}", fmt_f64(value));
            }
        }
    }
    out.push_str("\n]}\n");
    out
}

/// Renders a float as valid JSON (no NaN/Inf, which JSON forbids).
fn fmt_f64(value: f64) -> String {
    if value.is_finite() {
        let text = format!("{value}");
        // `{}` on a whole f64 prints without a dot; keep it numeric
        // either way (both are valid JSON numbers).
        text
    } else {
        "0".to_owned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::Json;
    use crate::sink::TraceSink;

    fn sample() -> Recorder {
        let mut rec = Recorder::new();
        let cpu = rec.track("pe/cpu1", Clock::Sim);
        let tool = rec.track("tool/profiling", Clock::Host);
        rec.span(cpu, "step \"x\"", 1_500, 250);
        rec.instant(cpu, "drop", 2_000);
        rec.counter(cpu, "queue_depth", 2_000, 3.0);
        rec.span(tool, "analyze", 10, 20);
        rec
    }

    #[test]
    fn output_is_valid_json() {
        let text = to_chrome_json(&sample());
        let doc = crate::json::parse(&text).expect("valid JSON");
        let events = doc.get("traceEvents").unwrap().as_array().unwrap();
        // 2 process_name + 2 thread_name + 4 events.
        assert_eq!(events.len(), 8);
    }

    #[test]
    fn spans_carry_microsecond_timestamps() {
        let text = to_chrome_json(&sample());
        let doc = crate::json::parse(&text).unwrap();
        let events = doc.get("traceEvents").unwrap().as_array().unwrap();
        let span = events
            .iter()
            .find(|e| e.get("ph").and_then(Json::as_str) == Some("X"))
            .expect("one span event");
        assert_eq!(span.get("ts").unwrap().as_f64(), Some(1.5));
        assert_eq!(span.get("dur").unwrap().as_f64(), Some(0.25));
    }

    #[test]
    fn host_tracks_live_in_process_two() {
        let text = to_chrome_json(&sample());
        let doc = crate::json::parse(&text).unwrap();
        let events = doc.get("traceEvents").unwrap().as_array().unwrap();
        let host_span = events
            .iter()
            .find(|e| {
                e.get("ph").and_then(Json::as_str) == Some("X")
                    && e.get("pid").unwrap().as_f64() == Some(2.0)
            })
            .expect("host-clock span present");
        assert_eq!(
            host_span.get("name").and_then(Json::as_str),
            Some("analyze")
        );
    }

    /// Perfetto/chrome://tracing label processes and threads from `M`
    /// metadata events; without them the UI shows bare pids. Pin both:
    /// every clock domain gets a `process_name` and every track a
    /// `thread_name` carrying the track's display name.
    #[test]
    fn metadata_names_every_process_and_track() {
        let text = to_chrome_json(&sample());
        let doc = crate::json::parse(&text).unwrap();
        let events = doc.get("traceEvents").unwrap().as_array().unwrap();
        let meta_names: Vec<(&str, &str)> = events
            .iter()
            .filter(|e| e.get("ph").and_then(Json::as_str) == Some("M"))
            .map(|e| {
                (
                    e.get("name").and_then(Json::as_str).unwrap(),
                    e.get("args")
                        .and_then(|a| a.get("name"))
                        .and_then(Json::as_str)
                        .unwrap(),
                )
            })
            .collect();
        assert!(meta_names.contains(&("process_name", "simulated")));
        assert!(meta_names.contains(&("process_name", "host")));
        for track in ["pe/cpu1", "tool/profiling"] {
            assert!(
                meta_names.contains(&("thread_name", track)),
                "track {track} must be named: {meta_names:?}"
            );
        }
    }

    #[test]
    fn quotes_in_names_are_escaped() {
        let text = to_chrome_json(&sample());
        assert!(text.contains("step \\\"x\\\""));
        crate::json::parse(&text).expect("still valid JSON");
    }

    #[test]
    fn empty_recorder_exports_an_empty_array() {
        let rec = Recorder::new();
        let doc = crate::json::parse(&to_chrome_json(&rec)).unwrap();
        assert_eq!(doc.get("traceEvents").unwrap().as_array().unwrap().len(), 0);
    }
}
