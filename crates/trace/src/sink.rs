//! The instrumentation boundary: [`TraceSink`] and its no-op impl.
//!
//! Instrumented hot paths take a `&mut impl TraceSink` parameter. The
//! default entry points pass [`NoopSink`], whose methods are empty and
//! `#[inline]`, so a non-traced build monomorphises to straight-line
//! code — disabled tracing costs at most a dead branch.

/// Identifies one track (a horizontal lane in the trace viewer: one per
/// processing element, HIBI segment, or tool stage).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct TrackId(pub(crate) u32);

impl TrackId {
    /// Raw index into the recorder's track table.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// The clock domain a track's timestamps belong to.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default)]
pub enum Clock {
    /// Simulated time in nanoseconds (the discrete-event clock).
    #[default]
    Sim,
    /// Monotonic host time in nanoseconds since the recorder was
    /// created (tool-stage wall-clock timing).
    Host,
}

/// Receives trace events and metric samples from instrumented code.
///
/// All methods take `&mut self`; implementations are single-threaded by
/// design (the simulator is deterministic and sequential). Timestamps
/// are nanoseconds in the clock domain of the event's track.
pub trait TraceSink {
    /// True when events are actually recorded. Instrumentation may
    /// branch on this to skip building event arguments.
    fn enabled(&self) -> bool;

    /// Interns a track by name, creating it on first use. Calling again
    /// with the same name and clock returns the same id.
    fn track(&mut self, name: &str, clock: Clock) -> TrackId;

    /// Records a complete span `[start_ns, start_ns + dur_ns)`.
    fn span(&mut self, track: TrackId, name: &str, start_ns: u64, dur_ns: u64);

    /// Records a zero-duration instant event.
    fn instant(&mut self, track: TrackId, name: &str, ts_ns: u64);

    /// Records a counter sample (a time series rendered as a filled
    /// graph in the trace viewer).
    fn counter(&mut self, track: TrackId, name: &str, ts_ns: u64, value: f64);

    /// Increments the named metric counter.
    fn add(&mut self, name: &str, by: u64);

    /// Sets the named metric gauge.
    fn gauge(&mut self, name: &str, value: f64);

    /// Records one observation into the named log-linear histogram.
    fn observe(&mut self, name: &str, value: u64);

    /// Nanoseconds of monotonic host time since the sink was created
    /// (0 for sinks without a host clock).
    fn host_now_ns(&self) -> u64;
}

/// The statically-dispatchable do-nothing sink.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct NoopSink;

impl TraceSink for NoopSink {
    #[inline]
    fn enabled(&self) -> bool {
        false
    }
    #[inline]
    fn track(&mut self, _name: &str, _clock: Clock) -> TrackId {
        TrackId(0)
    }
    #[inline]
    fn span(&mut self, _track: TrackId, _name: &str, _start_ns: u64, _dur_ns: u64) {}
    #[inline]
    fn instant(&mut self, _track: TrackId, _name: &str, _ts_ns: u64) {}
    #[inline]
    fn counter(&mut self, _track: TrackId, _name: &str, _ts_ns: u64, _value: f64) {}
    #[inline]
    fn add(&mut self, _name: &str, _by: u64) {}
    #[inline]
    fn gauge(&mut self, _name: &str, _value: f64) {}
    #[inline]
    fn observe(&mut self, _name: &str, _value: u64) {}
    #[inline]
    fn host_now_ns(&self) -> u64 {
        0
    }
}

/// Forwarding impl so instrumented call chains can hand their sink down
/// by mutable reference without re-monomorphising on reference depth.
impl<S: TraceSink + ?Sized> TraceSink for &mut S {
    #[inline]
    fn enabled(&self) -> bool {
        (**self).enabled()
    }
    #[inline]
    fn track(&mut self, name: &str, clock: Clock) -> TrackId {
        (**self).track(name, clock)
    }
    #[inline]
    fn span(&mut self, track: TrackId, name: &str, start_ns: u64, dur_ns: u64) {
        (**self).span(track, name, start_ns, dur_ns)
    }
    #[inline]
    fn instant(&mut self, track: TrackId, name: &str, ts_ns: u64) {
        (**self).instant(track, name, ts_ns)
    }
    #[inline]
    fn counter(&mut self, track: TrackId, name: &str, ts_ns: u64, value: f64) {
        (**self).counter(track, name, ts_ns, value)
    }
    #[inline]
    fn add(&mut self, name: &str, by: u64) {
        (**self).add(name, by)
    }
    #[inline]
    fn gauge(&mut self, name: &str, value: f64) {
        (**self).gauge(name, value)
    }
    #[inline]
    fn observe(&mut self, name: &str, value: u64) {
        (**self).observe(name, value)
    }
    #[inline]
    fn host_now_ns(&self) -> u64 {
        (**self).host_now_ns()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn noop_is_disabled_and_inert() {
        let mut sink = NoopSink;
        assert!(!sink.enabled());
        let t = sink.track("anything", Clock::Sim);
        assert_eq!(t.index(), 0);
        sink.span(t, "s", 0, 10);
        sink.observe("h", 42);
        assert_eq!(sink.host_now_ns(), 0);
    }

    /// Exercises the forwarding impl through a generic bound, the way
    /// instrumented code hands sinks down call chains.
    fn drive<T: TraceSink>(mut sink: T) -> bool {
        let t = sink.track("x", Clock::Host);
        sink.instant(t, "i", 5);
        sink.enabled()
    }

    #[test]
    fn mutable_reference_forwards() {
        let mut sink = NoopSink;
        assert!(!drive(&mut sink));
        assert!(!drive(sink));
    }
}
