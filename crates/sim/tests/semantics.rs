//! EFSM execution-semantics edge cases: timer cancellation and re-arming,
//! guard-based discards, and completion-transition chaining.

use tut_profile::SystemModel;
use tut_sim::{RecordRef, SimConfig, Simulation};
use tut_uml::action::{BinOp, Expr, Statement};
use tut_uml::statemachine::{StateMachine, Trigger};
use tut_uml::value::DataType;

/// Builds a one-process system from a machine-builder closure.
fn single_process(build: impl FnOnce(&mut SystemModel) -> StateMachine) -> SystemModel {
    let mut s = SystemModel::new("Edge");
    let top = s.model.add_class("Top");
    s.apply(top, |t| t.application).unwrap();
    let class = s.model.add_class("Proc");
    s.apply(class, |t| t.application_component).unwrap();
    let sm = build(&mut s);
    s.model.add_state_machine(class, sm);
    let part = s.model.add_part(top, "proc", class);
    s.apply(part, |t| t.application_process).unwrap();
    s
}

fn run(system: &SystemModel) -> tut_sim::SimReport {
    Simulation::from_system(system, SimConfig::with_horizon_ns(5_000_000))
        .expect("build")
        .run()
        .expect("run")
}

fn user_logs(report: &tut_sim::SimReport) -> Vec<String> {
    report
        .log
        .iter()
        .filter_map(|r| match r {
            RecordRef::User { message, .. } => Some(message.to_owned()),
            _ => None,
        })
        .collect()
}

#[test]
fn cancelled_timer_never_fires() {
    let system = single_process(|_| {
        let mut sm = StateMachine::new("B");
        let run = sm.add_state_with_entry(
            "Run",
            vec![
                Statement::SetTimer {
                    name: "doomed".into(),
                    duration: Expr::int(1000),
                },
                Statement::CancelTimer {
                    name: "doomed".into(),
                },
                Statement::SetTimer {
                    name: "kept".into(),
                    duration: Expr::int(1000),
                },
            ],
        );
        sm.set_initial(run);
        sm.add_transition(
            run,
            run,
            Trigger::Timer("doomed".into()),
            None,
            vec![Statement::Log {
                message: "doomed fired".into(),
                args: vec![],
            }],
        );
        sm.add_transition(
            run,
            run,
            Trigger::Timer("kept".into()),
            None,
            vec![Statement::Log {
                message: "kept fired".into(),
                args: vec![],
            }],
        );
        sm
    });
    let report = run(&system);
    let logs = user_logs(&report);
    assert!(logs.contains(&"kept fired".to_owned()));
    assert!(!logs.iter().any(|m| m.contains("doomed")), "{logs:?}");
}

#[test]
fn rearmed_timer_fires_once_at_the_new_deadline() {
    // Arm at 1000, immediately re-arm at 3000: exactly one firing.
    let system = single_process(|_| {
        let mut sm = StateMachine::new("B");
        sm.add_variable("fired", DataType::Int, 0i64.into());
        let run = sm.add_state_with_entry(
            "Run",
            vec![
                Statement::SetTimer {
                    name: "t".into(),
                    duration: Expr::int(1000),
                },
                Statement::SetTimer {
                    name: "t".into(),
                    duration: Expr::int(3000),
                },
            ],
        );
        sm.set_initial(run);
        sm.add_transition(
            run,
            run,
            Trigger::Timer("t".into()),
            None,
            vec![
                Statement::Assign {
                    var: "fired".into(),
                    expr: Expr::var("fired").bin(BinOp::Add, Expr::int(1)),
                },
                Statement::Log {
                    message: "fired {}".into(),
                    args: vec![Expr::var("fired")],
                },
            ],
        );
        sm
    });
    let report = run(&system);
    let logs = user_logs(&report);
    assert_eq!(
        logs,
        vec!["fired 1".to_owned()],
        "stale arming must be suppressed"
    );
}

#[test]
fn guard_false_input_is_dropped_with_a_record() {
    // A process whose only transition requires $n > 0; the environment
    // sends n = 0 and the input must be discarded (SDL-style).
    let mut s = SystemModel::new("Guarded");
    let top = s.model.add_class("Top");
    s.apply(top, |t| t.application).unwrap();
    let sig = s.model.add_signal("N");
    s.model.signal_mut(sig).add_param("n", DataType::Int);

    let recv = s.model.add_class("Receiver");
    s.apply(recv, |t| t.application_component).unwrap();
    let pin = s.model.add_port(recv, "in");
    s.model.port_mut(pin).add_provided(sig);
    let mut sm = StateMachine::new("RecvB");
    let st = sm.add_state("S");
    sm.set_initial(st);
    sm.add_transition(
        st,
        st,
        Trigger::Signal(sig),
        Some(Expr::param("n").bin(BinOp::Gt, Expr::int(0))),
        vec![Statement::Log {
            message: "accepted".into(),
            args: vec![],
        }],
    );
    s.model.add_state_machine(recv, sm);

    let send = s.model.add_class("Sender");
    s.apply(send, |t| t.application_component).unwrap();
    let pout = s.model.add_port(send, "out");
    s.model.port_mut(pout).add_required(sig);
    let mut sm = StateMachine::new("SendB");
    let st = sm.add_state_with_entry(
        "S",
        vec![
            Statement::Send {
                port: "out".into(),
                signal: sig,
                args: vec![Expr::int(0)],
            },
            Statement::Send {
                port: "out".into(),
                signal: sig,
                args: vec![Expr::int(7)],
            },
        ],
    );
    sm.set_initial(st);
    s.model.add_state_machine(send, sm);

    let r_part = s.model.add_part(top, "receiver", recv);
    let s_part = s.model.add_part(top, "sender", send);
    s.apply(r_part, |t| t.application_process).unwrap();
    s.apply(s_part, |t| t.application_process).unwrap();
    s.model.add_connector(
        top,
        "wire",
        tut_uml::model::ConnectorEnd {
            part: Some(s_part),
            port: pout,
        },
        tut_uml::model::ConnectorEnd {
            part: Some(r_part),
            port: pin,
        },
    );

    let report = run(&s);
    let drops = report
        .log
        .iter()
        .filter(|r| matches!(r, RecordRef::Drop { process, .. } if *process == "receiver"))
        .count();
    assert_eq!(drops, 1, "n=0 dropped; log:\n{}", report.log.to_text());
    assert_eq!(user_logs(&report), vec!["accepted".to_owned()]);
    assert_eq!(report.process("receiver").unwrap().drops, 1);
}

#[test]
fn completion_transitions_chain_within_one_step() {
    // Init enters A; completion transitions hop A -> B -> C in the same
    // step, executing each entry action.
    let system = single_process(|_| {
        let mut sm = StateMachine::new("B");
        let a = sm.add_state_with_entry(
            "A",
            vec![Statement::Log {
                message: "in A".into(),
                args: vec![],
            }],
        );
        let b = sm.add_state_with_entry(
            "B",
            vec![Statement::Log {
                message: "in B".into(),
                args: vec![],
            }],
        );
        let c = sm.add_state_with_entry(
            "C",
            vec![Statement::Log {
                message: "in C".into(),
                args: vec![],
            }],
        );
        sm.set_initial(a);
        sm.add_transition(a, b, Trigger::Completion, None, vec![]);
        sm.add_transition(b, c, Trigger::Completion, None, vec![]);
        sm
    });
    let report = run(&system);
    assert_eq!(
        user_logs(&report),
        vec!["in A".to_owned(), "in B".to_owned(), "in C".to_owned()]
    );
    // One EXEC record: the chain is a single run-to-completion step.
    let execs = report
        .log
        .iter()
        .filter(|r| matches!(r, RecordRef::Exec { .. }))
        .count();
    assert_eq!(execs, 1);
    // And it ends in state C.
    let exec = report
        .log
        .iter()
        .find(|r| matches!(r, RecordRef::Exec { .. }));
    match exec {
        Some(RecordRef::Exec { to_state, .. }) => assert_eq!(to_state, "C"),
        other => panic!("unexpected {other:?}"),
    }
}

#[test]
fn runtime_errors_carry_the_process_name() {
    let system = single_process(|_| {
        let mut sm = StateMachine::new("B");
        let run = sm.add_state_with_entry(
            "Run",
            vec![Statement::Assign {
                var: "x".into(),
                expr: Expr::int(1).bin(BinOp::Div, Expr::int(0)),
            }],
        );
        sm.set_initial(run);
        sm
    });
    let err = Simulation::from_system(&system, SimConfig::default())
        .expect("build")
        .run()
        .expect_err("division by zero must surface");
    let text = err.to_string();
    assert!(text.contains("proc"), "{text}");
    assert!(text.contains("division by zero"), "{text}");
}
