//! Determinism contract of the conservative parallel kernel: the merged
//! `SimLog` (and the whole report) must be **bit-identical** to the
//! serial engine at any thread count, with and without injected faults,
//! on a platform that actually decomposes into several logical
//! processes.

use tut_faults::{FaultConfig, FaultPlan, Outage};
use tut_profile::application::ProcessType;
use tut_profile::platform::ComponentKind;
use tut_profile::SystemModel;
use tut_profile_core::TagValue;
use tut_sim::{QueueKind, SimConfig, SimReport, Simulation};
use tut_trace::NoopSink;
use tut_uml::action::{CostClass, Expr, Statement};
use tut_uml::ids::{ClassId, PortId, PropertyId};
use tut_uml::model::ConnectorEnd;
use tut_uml::statemachine::{StateMachine, Trigger};

/// Builds a `clusters`-way parallel system: each cluster is two CPUs on
/// a private HIBI segment (no bridges between clusters) running a
/// ping-pong pair, and an ungrouped environment generator kicks every
/// cluster periodically. The LP partition therefore yields one
/// environment LP plus one LP per cluster, with the environment
/// delivery latency as lookahead.
fn clustered_system(clusters: usize) -> SystemModel {
    let mut s = SystemModel::new("Clusters");
    let top = s.model.add_class("Top");
    s.apply(top, |t| t.application).unwrap();
    let ping = s.model.add_signal("Ping");
    let kick = s.model.add_signal("Kick");

    let platform = s.model.add_class("Plat");
    s.apply(platform, |t| t.platform).unwrap();
    let cpu_class = s.add_platform_component("Cpu", ComponentKind::General, 50, 1.0, 0.1);
    let cpu_port = s.model.add_port(cpu_class, "hibi");
    let seg_class = s.model.add_class("Seg");
    s.apply_with(
        seg_class,
        |t| t.hibi_segment,
        [
            ("DataWidth", TagValue::Int(32)),
            ("Frequency", TagValue::Int(100)),
            ("Arbitration", TagValue::Enum("priority".into())),
        ],
    )
    .unwrap();
    let seg_port = s.model.add_port(seg_class, "agents");

    // Environment generator: one output port per cluster, periodic kicks.
    let gen_class = s.model.add_class("Gen");
    s.apply(gen_class, |t| t.application_component).unwrap();
    let mut gen_ports = Vec::new();
    for c in 0..clusters {
        let port = s.model.add_port(gen_class, format!("out{c}"));
        s.model.port_mut(port).add_required(kick);
        gen_ports.push(port);
    }
    let mut gen_sm = StateMachine::new("GenB");
    let tick = |duration: i64| Statement::SetTimer {
        name: "tick".into(),
        duration: Expr::int(duration),
    };
    let run = gen_sm.add_state_with_entry("Run", vec![tick(50_000)]);
    gen_sm.set_initial(run);
    let mut on_tick: Vec<Statement> = (0..clusters)
        .map(|c| Statement::Send {
            port: format!("out{c}"),
            signal: kick,
            args: vec![Expr::int(c as i64)],
        })
        .collect();
    on_tick.push(tick(50_000));
    gen_sm.add_transition(run, run, Trigger::Timer("tick".into()), None, on_tick);
    s.model.add_state_machine(gen_class, gen_sm);
    let gen = s.model.add_part(top, "gen", gen_class);
    s.apply(gen, |t| t.application_process).unwrap();
    // `gen` stays ungrouped: it is the environment.

    // One HIBI wrapper per CPU attachment.
    let attach =
        |s: &mut SystemModel, pe: PropertyId, segment: PropertyId, name: String, address: i64| {
            let wrapper_class = s.model.add_class(format!("Wrap_{name}"));
            s.apply_with(
                wrapper_class,
                |t| t.hibi_wrapper,
                [
                    ("Address", TagValue::Int(address)),
                    ("BufferSize", TagValue::Int(16)),
                    ("MaxTime", TagValue::Int(16)),
                ],
            )
            .unwrap();
            let wrapper_pe = s.model.add_port(wrapper_class, "pe");
            let wrapper_bus = s.model.add_port(wrapper_class, "bus");
            let wrapper = s.model.add_part(platform, name.clone(), wrapper_class);
            s.model.add_connector(
                platform,
                format!("{name}_pe"),
                ConnectorEnd {
                    part: Some(wrapper),
                    port: wrapper_pe,
                },
                ConnectorEnd {
                    part: Some(pe),
                    port: cpu_port,
                },
            );
            s.model.add_connector(
                platform,
                format!("{name}_bus"),
                ConnectorEnd {
                    part: Some(wrapper),
                    port: wrapper_bus,
                },
                ConnectorEnd {
                    part: Some(segment),
                    port: seg_port,
                },
            );
        };

    // A ping-pong worker component; `opener` reacts to the environment
    // kick by starting a bout.
    type Worker = (ClassId, PortId, PortId, Option<PortId>);
    let worker = |s: &mut SystemModel, name: String, opener: bool| -> Worker {
        let class = s.model.add_class(name.clone());
        s.apply(class, |t| t.application_component).unwrap();
        let input = s.model.add_port(class, "in");
        s.model.port_mut(input).add_provided(ping);
        let output = s.model.add_port(class, "out");
        s.model.port_mut(output).add_required(ping);
        let mut sm = StateMachine::new(format!("{name}B"));
        let idle = sm.add_state("Idle");
        sm.set_initial(idle);
        let mut kick_port = None;
        if opener {
            let kick_in = s.model.add_port(class, "kick");
            s.model.port_mut(kick_in).add_provided(kick);
            kick_port = Some(kick_in);
            sm.add_transition(
                idle,
                idle,
                Trigger::Signal(kick),
                None,
                vec![
                    Statement::Compute {
                        class: CostClass::Control,
                        amount: Expr::int(400),
                    },
                    Statement::Send {
                        port: "out".into(),
                        signal: ping,
                        args: vec![Expr::int(1)],
                    },
                ],
            );
            sm.add_transition(
                idle,
                idle,
                Trigger::Signal(ping),
                None,
                vec![Statement::Compute {
                    class: CostClass::Control,
                    amount: Expr::int(300),
                }],
            );
        } else {
            sm.add_transition(
                idle,
                idle,
                Trigger::Signal(ping),
                None,
                vec![
                    Statement::Compute {
                        class: CostClass::Control,
                        amount: Expr::int(500),
                    },
                    Statement::Send {
                        port: "out".into(),
                        signal: ping,
                        args: vec![Expr::int(2)],
                    },
                ],
            );
        }
        s.model.add_state_machine(class, sm);
        (class, input, output, kick_port)
    };

    for (c, &gen_port) in gen_ports.iter().enumerate() {
        let (a_class, a_in, a_out, a_kick) = worker(&mut s, format!("A{c}"), true);
        let (b_class, b_in, b_out, _) = worker(&mut s, format!("B{c}"), false);
        let a = s.model.add_part(top, format!("a{c}"), a_class);
        let b = s.model.add_part(top, format!("b{c}"), b_class);
        s.apply(a, |t| t.application_process).unwrap();
        s.apply(b, |t| t.application_process).unwrap();
        let kick_port = a_kick.expect("opener has a kick port");
        s.model.add_connector(
            top,
            format!("kick{c}"),
            ConnectorEnd {
                part: Some(gen),
                port: gen_port,
            },
            ConnectorEnd {
                part: Some(a),
                port: kick_port,
            },
        );
        s.model.add_connector(
            top,
            format!("ab{c}"),
            ConnectorEnd {
                part: Some(a),
                port: a_out,
            },
            ConnectorEnd {
                part: Some(b),
                port: b_in,
            },
        );
        s.model.add_connector(
            top,
            format!("ba{c}"),
            ConnectorEnd {
                part: Some(b),
                port: b_out,
            },
            ConnectorEnd {
                part: Some(a),
                port: a_in,
            },
        );

        // Private segment, one CPU per worker.
        let seg = s.model.add_part(platform, format!("seg{c}"), seg_class);
        let cpu_a = s.add_platform_instance(
            platform,
            &format!("cpu{c}a"),
            cpu_class,
            (2 * c + 1) as i64,
            1,
        );
        let cpu_b = s.add_platform_instance(
            platform,
            &format!("cpu{c}b"),
            cpu_class,
            (2 * c + 2) as i64,
            2,
        );
        attach(&mut s, cpu_a, seg, format!("w{c}a"), (0x10 + 2 * c) as i64);
        attach(&mut s, cpu_b, seg, format!("w{c}b"), (0x11 + 2 * c) as i64);
        let ga = s.add_process_group(&format!("g{c}a"), false, ProcessType::General);
        let gb = s.add_process_group(&format!("g{c}b"), false, ProcessType::General);
        s.assign_to_group(a, ga);
        s.assign_to_group(b, gb);
        s.map_group(ga, cpu_a, false);
        s.map_group(gb, cpu_b, false);
    }
    s
}

fn config() -> SimConfig {
    SimConfig::with_horizon_ns(2_000_000)
}

fn serial(system: &SystemModel, config: SimConfig) -> SimReport {
    Simulation::from_system(system, config)
        .expect("build")
        .run()
        .expect("serial run")
}

fn parallel(system: &SystemModel, config: SimConfig, threads: usize) -> SimReport {
    Simulation::from_system(system, config)
        .expect("build")
        .run_parallel(threads)
        .expect("parallel run")
}

/// The tentpole contract: serial and parallel logs are byte-identical
/// at 1, 2, and 4 threads, and the whole report matches field for
/// field.
#[test]
fn parallel_log_is_bit_identical_to_serial() {
    let system = clustered_system(3);
    let reference = serial(&system, config());
    assert!(
        reference.log.to_text().lines().count() > 50,
        "the fixture should produce a non-trivial log, got:\n{}",
        reference.log.to_text()
    );
    for threads in [1, 2, 4] {
        let report = parallel(&system, config(), threads);
        assert_eq!(
            reference.log.to_text(),
            report.log.to_text(),
            "parallel log diverged at {threads} threads"
        );
        assert_eq!(reference, report, "report diverged at {threads} threads");
    }
}

/// Same contract under an active fault plan (bit errors, drops, timer
/// jitter, and an outage window): the keyed fault draws make the
/// parallel fault stream identical to the serial one.
#[test]
fn parallel_log_is_bit_identical_to_serial_under_faults() {
    let system = clustered_system(3);
    let fault_config = FaultConfig {
        seed: 0xFEED,
        bit_error_rate: 2e-5,
        drop_per_hop: 0.02,
        timer_jitter_ns: 40,
        outages: vec![Outage {
            pe: "cpu1a".into(),
            from_ns: 300_000,
            until_ns: 600_000,
        }],
    };
    let reference = Simulation::from_system(&system, config())
        .expect("build")
        .run_with_faults(&mut FaultPlan::new(fault_config.clone()), &mut NoopSink)
        .expect("serial faulted run");
    for threads in [1, 2, 4] {
        let report = Simulation::from_system(&system, config())
            .expect("build")
            .run_parallel_with_faults(threads, &FaultPlan::new(fault_config.clone()))
            .expect("parallel faulted run");
        assert_eq!(
            reference.log.to_text(),
            report.log.to_text(),
            "faulted parallel log diverged at {threads} threads"
        );
        assert_eq!(reference, report);
    }
}

/// The two event-queue implementations drive the serial engine to the
/// same log, and simultaneous events (several records at one timestamp)
/// actually occur in the fixture — i.e. the tie-break order is
/// exercised, not vacuously equal.
#[test]
fn calendar_and_heap_schedulers_agree_and_ties_occur() {
    let system = clustered_system(2);
    let heap_report = serial(
        &system,
        SimConfig {
            queue: QueueKind::Heap,
            ..config()
        },
    );
    let calendar_report = serial(
        &system,
        SimConfig {
            queue: QueueKind::Calendar,
            ..config()
        },
    );
    assert_eq!(heap_report.log.to_text(), calendar_report.log.to_text());
    assert_eq!(heap_report, calendar_report);

    // At least one simulation instant must carry several log records
    // (the generator kicks every cluster at the same tick), so the
    // (time, seq) tie-break is genuinely covered.
    let mut times: Vec<u64> = heap_report.log.iter().map(|r| r.time_ns()).collect();
    times.sort_unstable();
    assert!(
        times.windows(2).any(|w| w[0] == w[1]),
        "fixture produced no simultaneous records; tie-break untested"
    );
}

/// Degenerate partitions still match serial exactly: a two-LP system
/// (environment plus one cluster) runs the parallel path, and an
/// environment-only system (no platform mapping at all) falls back to
/// the serial engine.
#[test]
fn degenerate_partitions_match_serial() {
    for clusters in [0, 1] {
        let system = clustered_system(clusters);
        let reference = serial(&system, config());
        let report = parallel(&system, config(), 4);
        assert_eq!(reference, report, "diverged with {clusters} cluster(s)");
    }
}

/// Property sweep over the clustered fixture: coalesced-window parallel
/// runs stay bit-identical to serial across fault seeds x fault plans x
/// thread counts.
#[test]
fn parallel_matches_serial_across_seeds_threads_and_fault_plans() {
    let system = clustered_system(3);
    let plans = |seed: u64| {
        [
            FaultConfig {
                seed,
                ..FaultConfig::default()
            },
            FaultConfig {
                seed,
                bit_error_rate: 2e-5,
                drop_per_hop: 0.02,
                timer_jitter_ns: 40,
                outages: vec![Outage {
                    pe: "cpu1a".into(),
                    from_ns: 300_000,
                    until_ns: 600_000,
                }],
            },
        ]
    };
    for seed in [0xFEEDu64, 0xBEEF] {
        for fault_config in plans(seed) {
            let reference = Simulation::from_system(&system, config())
                .expect("build")
                .run_with_faults(&mut FaultPlan::new(fault_config.clone()), &mut NoopSink)
                .expect("serial run");
            for threads in [1, 2, 3, 4, 8] {
                let report = Simulation::from_system(&system, config())
                    .expect("build")
                    .run_parallel_with_faults(threads, &FaultPlan::new(fault_config.clone()))
                    .expect("parallel run");
                assert_eq!(
                    reference.log.to_text(),
                    report.log.to_text(),
                    "log diverged: seed {seed:#x}, plan {fault_config:?}, {threads} threads"
                );
                assert_eq!(reference, report);
            }
        }
    }
}

/// Window accounting pins: a single worker coalesces the whole horizon
/// into one window; multiple workers still beat the fixed-lookahead
/// march, and the batch count tracks dispatched windows (idle shards
/// are skipped, so batches never exceed windows x workers).
#[test]
fn adaptive_windows_beat_fixed_march() {
    let system = clustered_system(3);
    let (_, stats) = Simulation::from_system(&system, config())
        .expect("build")
        .run_parallel_stats(1)
        .expect("parallel run");
    assert!(stats.used_parallel, "got {stats:?}");
    assert_eq!(stats.windows, 1, "one worker is one whole-horizon window");
    assert!(
        stats.windows_fixed_step >= 5 * stats.windows,
        "coalescing below 5x: {stats:?}"
    );
    let (_, stats) = Simulation::from_system(&system, config())
        .expect("build")
        .run_parallel_stats(4)
        .expect("parallel run");
    assert!(stats.used_parallel, "got {stats:?}");
    assert!(stats.windows <= stats.windows_fixed_step, "got {stats:?}");
    assert!(
        stats.batches <= stats.windows * stats.workers as u64,
        "batches exceed dispatch bound: {stats:?}"
    );
    assert!(stats.batches >= stats.windows, "got {stats:?}");
}
