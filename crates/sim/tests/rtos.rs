//! RTOS scheduling model tests (the paper's named future work): dispatch
//! policy and context-switch cost on a contended processing element.

use tut_profile::application::ProcessType;
use tut_profile::platform::ComponentKind;
use tut_profile::SystemModel;
use tut_profile_core::TagValue;
use tut_sim::config::{SchedPolicy, Scheduler};
use tut_sim::{SimConfig, Simulation};
use tut_uml::action::{CostClass, Expr, Statement};
use tut_uml::statemachine::{StateMachine, Trigger};

/// A zero-cost environment generator drives two workers (`hi`, priority
/// 10, and `lo`, priority 1) sharing one CPU: each Job costs ~50 us of
/// CPU and jobs arrive every 80 us per worker — 125 % combined load, so
/// someone must fall behind and the dispatch policy decides who.
fn contended_system() -> SystemModel {
    let mut s = SystemModel::new("Contended");
    let top = s.model.add_class("Top");
    s.apply(top, |t| t.application).unwrap();
    let job = s.model.add_signal("Job");

    let worker = |s: &mut SystemModel, name: &str| {
        let class = s.model.add_class(name);
        s.apply(class, |t| t.application_component).unwrap();
        let pin = s.model.add_port(class, "in");
        s.model.port_mut(pin).add_provided(job);
        let mut sm = StateMachine::new(format!("{name}B"));
        let run = sm.add_state("Run");
        sm.set_initial(run);
        sm.add_transition(
            run,
            run,
            Trigger::Signal(job),
            None,
            vec![Statement::Compute {
                class: CostClass::Control,
                amount: Expr::int(1000),
            }],
        );
        s.model.add_state_machine(class, sm);
        (class, pin)
    };
    let (hi_class, hi_in) = worker(&mut s, "Hi");
    let (lo_class, lo_in) = worker(&mut s, "Lo");

    // The generator: environment process, two output ports.
    let gen_class = s.model.add_class("Gen");
    s.apply(gen_class, |t| t.application_component).unwrap();
    let out_hi = s.model.add_port(gen_class, "outHi");
    let out_lo = s.model.add_port(gen_class, "outLo");
    s.model.port_mut(out_hi).add_required(job);
    s.model.port_mut(out_lo).add_required(job);
    let mut sm = StateMachine::new("GenB");
    let run = sm.add_state_with_entry(
        "Run",
        vec![Statement::SetTimer {
            name: "tick".into(),
            duration: Expr::int(80_000),
        }],
    );
    sm.set_initial(run);
    sm.add_transition(
        run,
        run,
        Trigger::Timer("tick".into()),
        None,
        vec![
            Statement::Send {
                port: "outHi".into(),
                signal: job,
                args: vec![],
            },
            Statement::Send {
                port: "outLo".into(),
                signal: job,
                args: vec![],
            },
            Statement::SetTimer {
                name: "tick".into(),
                duration: Expr::int(80_000),
            },
        ],
    );
    s.model.add_state_machine(gen_class, sm);

    let hi = s.model.add_part(top, "hi", hi_class);
    let lo = s.model.add_part(top, "lo", lo_class);
    let gen = s.model.add_part(top, "gen", gen_class);
    s.apply_with(
        hi,
        |t| t.application_process,
        [("Priority", TagValue::Int(10))],
    )
    .unwrap();
    s.apply_with(
        lo,
        |t| t.application_process,
        [("Priority", TagValue::Int(1))],
    )
    .unwrap();
    s.apply(gen, |t| t.application_process).unwrap();
    use tut_uml::model::ConnectorEnd;
    s.model.add_connector(
        top,
        "wHi",
        ConnectorEnd {
            part: Some(gen),
            port: out_hi,
        },
        ConnectorEnd {
            part: Some(hi),
            port: hi_in,
        },
    );
    s.model.add_connector(
        top,
        "wLo",
        ConnectorEnd {
            part: Some(gen),
            port: out_lo,
        },
        ConnectorEnd {
            part: Some(lo),
            port: lo_in,
        },
    );

    let group = s.add_process_group("all", false, ProcessType::General);
    s.assign_to_group(hi, group);
    s.assign_to_group(lo, group);
    // gen stays ungrouped: environment, zero cycles, never contends.
    let platform = s.model.add_class("Plat");
    s.apply(platform, |t| t.platform).unwrap();
    let cpu_class = s.add_platform_component("Cpu", ComponentKind::General, 20, 1.0, 0.1);
    let cpu = s.add_platform_instance(platform, "cpu", cpu_class, 1, 0);
    s.map_group(group, cpu, false);
    s
}

fn run(policy: SchedPolicy, context_switch_cycles: u64) -> tut_sim::SimReport {
    let config = SimConfig {
        scheduler: Scheduler {
            policy,
            context_switch_cycles,
        },
        ..SimConfig::with_horizon_ns(20_000_000)
    };
    Simulation::from_system(&contended_system(), config)
        .expect("build")
        .run()
        .expect("run")
}

#[test]
fn priority_policy_favours_the_high_priority_process() {
    let report = run(SchedPolicy::Priority, 0);
    let hi = report.process("hi").unwrap();
    let lo = report.process("lo").unwrap();
    // The overload lands entirely on the low-priority process: hi keeps
    // its response time bounded and serves every job, lo falls behind.
    assert!(
        hi.mean_queue_wait_ns() < lo.mean_queue_wait_ns(),
        "hi waits {} ns, lo waits {} ns",
        hi.mean_queue_wait_ns(),
        lo.mean_queue_wait_ns()
    );
    assert!(
        hi.steps > lo.steps,
        "hi must out-serve lo under priority: {} vs {}",
        hi.steps,
        lo.steps
    );
}

#[test]
fn round_robin_evens_out_response_times() {
    let priority = run(SchedPolicy::Priority, 0);
    let round_robin = run(SchedPolicy::RoundRobin, 0);

    let gap = |r: &tut_sim::SimReport| {
        let hi = r.process("hi").unwrap().mean_queue_wait_ns();
        let lo = r.process("lo").unwrap().mean_queue_wait_ns();
        (lo - hi).abs()
    };
    assert!(
        gap(&round_robin) < gap(&priority),
        "round-robin gap {} should be smaller than priority gap {}",
        gap(&round_robin),
        gap(&priority)
    );
    // And throughput is shared evenly under round-robin.
    let hi = round_robin.process("hi").unwrap().steps as i64;
    let lo = round_robin.process("lo").unwrap().steps as i64;
    assert!((hi - lo).abs() <= 1, "round-robin shares: {hi} vs {lo}");
}

#[test]
fn context_switches_cost_cycles() {
    let free = run(SchedPolicy::RoundRobin, 0);
    let costly = run(SchedPolicy::RoundRobin, 500);
    assert!(
        costly.total_cycles() > free.total_cycles(),
        "context switching must add cycles: {} vs {}",
        costly.total_cycles(),
        free.total_cycles()
    );
}

#[test]
fn worst_case_wait_is_reported() {
    let report = run(SchedPolicy::Priority, 0);
    let lo = report.process("lo").unwrap();
    assert!(lo.max_queue_wait_ns >= lo.mean_queue_wait_ns() as u64);
    assert!(
        lo.max_queue_wait_ns > 0,
        "contention must show up in the worst case"
    );
}
