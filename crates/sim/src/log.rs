//! The simulation log-file: line-oriented records.
//!
//! The paper's flow passes a *log file* from the simulation to the
//! profiling tool (§4.4: "the automatically generated application code is
//! complemented with custom C functions to create simulation log-file
//! during simulations"). To keep that tool boundary honest, the log has a
//! canonical **text form**; the profiling crate parses the text, not the
//! in-memory structs.
//!
//! Record lines (whitespace-separated, one record per line):
//!
//! ```text
//! EXEC  <time_ns> <process> <cycles> <duration_ns> <from_state> <to_state> <trigger>
//! SIG   <time_ns> <sender> <receiver> <signal> <bytes> <latency_ns>
//! DROP  <time_ns> <process> <signal>
//! LOST  <time_ns> <process> <port> <signal>
//! USER  <time_ns> <process> <message…>
//! FAULT <time_ns> <process> <kind> <signal>
//! CNT   <time_ns> <process> <counter> <amount>
//! ```
//!
//! Name fields and messages are **escaped** so embedded whitespace
//! cannot shift field boundaries: `\` → `\\`, space → `\s`, tab → `\t`,
//! newline → `\n`, carriage return → `\r`, and the empty string → `\e`.
//! Parsing reverses the escapes, so `to_text` → `parse` is lossless for
//! arbitrary model-provided names and messages.

use std::fmt;

/// Escapes one whitespace-separated field of a log line.
fn escape_field(text: &str) -> String {
    if text.is_empty() {
        return "\\e".to_owned();
    }
    let mut out = String::with_capacity(text.len());
    for c in text.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            ' ' => out.push_str("\\s"),
            '\t' => out.push_str("\\t"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            c => out.push(c),
        }
    }
    out
}

/// Reverses [`escape_field`]. Unknown escapes keep the escaped
/// character, and a trailing backslash stays literal, so hand-written
/// logs without escapes still parse.
fn unescape_field(text: &str) -> String {
    let mut out = String::with_capacity(text.len());
    let mut chars = text.chars();
    while let Some(c) = chars.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match chars.next() {
            Some('\\') => out.push('\\'),
            Some('s') => out.push(' '),
            Some('t') => out.push('\t'),
            Some('n') => out.push('\n'),
            Some('r') => out.push('\r'),
            Some('e') => {}
            Some(other) => out.push(other),
            None => out.push('\\'),
        }
    }
    out
}

/// One record of the simulation log.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum LogRecord {
    /// A run-to-completion step executed.
    Exec {
        /// Step start time (ns).
        time_ns: u64,
        /// Process instance name (dotted path, e.g. `ui.msduRec`).
        process: String,
        /// Cycles charged on the processing element.
        cycles: u64,
        /// Wall-clock duration on the element (ns).
        duration_ns: u64,
        /// State before the step.
        from_state: String,
        /// State after the step.
        to_state: String,
        /// What triggered the step (signal name, `timer:<name>`, or
        /// `start`).
        trigger: String,
    },
    /// A signal was delivered from one process to another.
    Sig {
        /// Delivery time (ns).
        time_ns: u64,
        /// Sending process instance name.
        sender: String,
        /// Receiving process instance name.
        receiver: String,
        /// Signal type name.
        signal: String,
        /// Payload bytes (including header).
        bytes: u64,
        /// End-to-end latency from send to delivery (ns).
        latency_ns: u64,
    },
    /// A delivered signal found no enabled transition and was discarded.
    Drop {
        /// Time of the discard (ns).
        time_ns: u64,
        /// The discarding process.
        process: String,
        /// The discarded signal.
        signal: String,
    },
    /// A sent signal had no connected receiver.
    Lost {
        /// Send time (ns).
        time_ns: u64,
        /// The sending process.
        process: String,
        /// The port it was sent through.
        port: String,
        /// The signal type name.
        signal: String,
    },
    /// A `Log` action emitted by the model itself.
    User {
        /// Emission time (ns).
        time_ns: u64,
        /// The emitting process.
        process: String,
        /// The rendered message.
        message: String,
    },
    /// A fault was injected (or a platform-model defect surfaced): a
    /// transfer was corrupted or dropped by the fault model, or a
    /// transfer found no route.
    Fault {
        /// Injection time (ns).
        time_ns: u64,
        /// The sending process whose transfer was hit.
        process: String,
        /// Fault kind: `corrupt`, `drop`, or `unroutable`.
        kind: String,
        /// The signal type name of the affected transfer.
        signal: String,
    },
    /// A `count` action: a named per-process counter was incremented.
    Count {
        /// Emission time (ns).
        time_ns: u64,
        /// The counting process.
        process: String,
        /// The counter name (dotted names group related tallies).
        counter: String,
        /// Signed increment.
        amount: i64,
    },
}

impl LogRecord {
    /// The record's canonical text line (no trailing newline).
    pub fn to_line(&self) -> String {
        match self {
            LogRecord::Exec {
                time_ns,
                process,
                cycles,
                duration_ns,
                from_state,
                to_state,
                trigger,
            } => format!(
                "EXEC {time_ns} {} {cycles} {duration_ns} {} {} {}",
                escape_field(process),
                escape_field(from_state),
                escape_field(to_state),
                escape_field(trigger)
            ),
            LogRecord::Sig {
                time_ns,
                sender,
                receiver,
                signal,
                bytes,
                latency_ns,
            } => format!(
                "SIG {time_ns} {} {} {} {bytes} {latency_ns}",
                escape_field(sender),
                escape_field(receiver),
                escape_field(signal)
            ),
            LogRecord::Drop {
                time_ns,
                process,
                signal,
            } => format!(
                "DROP {time_ns} {} {}",
                escape_field(process),
                escape_field(signal)
            ),
            LogRecord::Lost {
                time_ns,
                process,
                port,
                signal,
            } => format!(
                "LOST {time_ns} {} {} {}",
                escape_field(process),
                escape_field(port),
                escape_field(signal)
            ),
            LogRecord::User {
                time_ns,
                process,
                message,
            } => format!(
                "USER {time_ns} {} {}",
                escape_field(process),
                escape_field(message)
            ),
            LogRecord::Fault {
                time_ns,
                process,
                kind,
                signal,
            } => format!(
                "FAULT {time_ns} {} {} {}",
                escape_field(process),
                escape_field(kind),
                escape_field(signal)
            ),
            LogRecord::Count {
                time_ns,
                process,
                counter,
                amount,
            } => format!(
                "CNT {time_ns} {} {} {amount}",
                escape_field(process),
                escape_field(counter)
            ),
        }
    }

    /// Parses one log line.
    ///
    /// Returns `None` for blank lines and lines starting with `#`
    /// (comments); malformed records produce an error string naming the
    /// problem.
    pub fn parse_line(line: &str) -> Result<Option<LogRecord>, String> {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            return Ok(None);
        }
        let mut fields = line.split_whitespace();
        let kind = fields.next().expect("non-empty line has a first field");
        let mut next = |what: &str| -> Result<&str, String> {
            fields
                .next()
                .ok_or_else(|| format!("{kind} record is missing its {what} field"))
        };
        let parse_u64 = |text: &str, what: &str| -> Result<u64, String> {
            text.parse()
                .map_err(|_| format!("bad {what} value `{text}` in {kind} record"))
        };
        let record = match kind {
            "EXEC" => {
                let time_ns = parse_u64(next("time")?, "time")?;
                let process = unescape_field(next("process")?);
                let cycles = parse_u64(next("cycles")?, "cycles")?;
                let duration_ns = parse_u64(next("duration")?, "duration")?;
                let from_state = unescape_field(next("from_state")?);
                let to_state = unescape_field(next("to_state")?);
                let trigger = unescape_field(next("trigger")?);
                LogRecord::Exec {
                    time_ns,
                    process,
                    cycles,
                    duration_ns,
                    from_state,
                    to_state,
                    trigger,
                }
            }
            "SIG" => {
                let time_ns = parse_u64(next("time")?, "time")?;
                let sender = unescape_field(next("sender")?);
                let receiver = unescape_field(next("receiver")?);
                let signal = unescape_field(next("signal")?);
                let bytes = parse_u64(next("bytes")?, "bytes")?;
                let latency_ns = parse_u64(next("latency")?, "latency")?;
                LogRecord::Sig {
                    time_ns,
                    sender,
                    receiver,
                    signal,
                    bytes,
                    latency_ns,
                }
            }
            "DROP" => LogRecord::Drop {
                time_ns: parse_u64(next("time")?, "time")?,
                process: unescape_field(next("process")?),
                signal: unescape_field(next("signal")?),
            },
            "LOST" => LogRecord::Lost {
                time_ns: parse_u64(next("time")?, "time")?,
                process: unescape_field(next("process")?),
                port: unescape_field(next("port")?),
                signal: unescape_field(next("signal")?),
            },
            "USER" => {
                let time_ns = parse_u64(next("time")?, "time")?;
                let process = unescape_field(next("process")?);
                // Canonical logs escape the message into one field;
                // hand-written logs may leave it as plain words.
                let message = fields.map(unescape_field).collect::<Vec<_>>().join(" ");
                LogRecord::User {
                    time_ns,
                    process,
                    message,
                }
            }
            "FAULT" => LogRecord::Fault {
                time_ns: parse_u64(next("time")?, "time")?,
                process: unescape_field(next("process")?),
                kind: unescape_field(next("kind")?),
                signal: unescape_field(next("signal")?),
            },
            "CNT" => {
                let time_ns = parse_u64(next("time")?, "time")?;
                let process = unescape_field(next("process")?);
                let counter = unescape_field(next("counter")?);
                let amount_text = next("amount")?;
                let amount = amount_text
                    .parse()
                    .map_err(|_| format!("bad amount value `{amount_text}` in CNT record"))?;
                LogRecord::Count {
                    time_ns,
                    process,
                    counter,
                    amount,
                }
            }
            other => return Err(format!("unknown log record kind `{other}`")),
        };
        Ok(Some(record))
    }

    /// The record's timestamp.
    pub fn time_ns(&self) -> u64 {
        match self {
            LogRecord::Exec { time_ns, .. }
            | LogRecord::Sig { time_ns, .. }
            | LogRecord::Drop { time_ns, .. }
            | LogRecord::Lost { time_ns, .. }
            | LogRecord::User { time_ns, .. }
            | LogRecord::Fault { time_ns, .. }
            | LogRecord::Count { time_ns, .. } => *time_ns,
        }
    }
}

impl fmt::Display for LogRecord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_line())
    }
}

/// The full simulation log.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct SimLog {
    /// Records in emission order.
    pub records: Vec<LogRecord>,
}

impl SimLog {
    /// An empty log.
    pub fn new() -> SimLog {
        SimLog::default()
    }

    /// Appends a record.
    pub fn push(&mut self, record: LogRecord) {
        self.records.push(record);
    }

    /// Renders the whole log as its canonical text form.
    pub fn to_text(&self) -> String {
        let mut out = String::with_capacity(self.records.len() * 48);
        out.push_str("# TUT-Profile simulation log-file v1\n");
        for record in &self.records {
            out.push_str(&record.to_line());
            out.push('\n');
        }
        out
    }

    /// Parses a log from its text form.
    ///
    /// # Errors
    ///
    /// Returns the first malformed line's error, prefixed with its line
    /// number.
    pub fn parse(text: &str) -> Result<SimLog, String> {
        let mut log = SimLog::new();
        for (number, line) in text.lines().enumerate() {
            match LogRecord::parse_line(line) {
                Ok(Some(record)) => log.push(record),
                Ok(None) => {}
                Err(err) => return Err(format!("line {}: {err}", number + 1)),
            }
        }
        Ok(log)
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True if the log holds no records.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_records() -> Vec<LogRecord> {
        vec![
            LogRecord::Exec {
                time_ns: 100,
                process: "ui.msduRec".into(),
                cycles: 420,
                duration_ns: 8400,
                from_state: "Idle".into(),
                to_state: "Busy".into(),
                trigger: "MsduRequest".into(),
            },
            LogRecord::Sig {
                time_ns: 8600,
                sender: "ui.msduRec".into(),
                receiver: "dp.frag".into(),
                signal: "Msdu".into(),
                bytes: 1508,
                latency_ns: 200,
            },
            LogRecord::Drop {
                time_ns: 9000,
                process: "mng".into(),
                signal: "Beacon".into(),
            },
            LogRecord::Lost {
                time_ns: 9100,
                process: "rca".into(),
                port: "pPhy".into(),
                signal: "TxFrame".into(),
            },
            LogRecord::User {
                time_ns: 9200,
                process: "rca".into(),
                message: "sent 3 frames".into(),
            },
            LogRecord::Fault {
                time_ns: 9300,
                process: "rca".into(),
                kind: "corrupt".into(),
                signal: "TxFrame".into(),
            },
            LogRecord::Count {
                time_ns: 9400,
                process: "rca".into(),
                counter: "arq.retries".into(),
                amount: -2,
            },
        ]
    }

    #[test]
    fn round_trip_text() {
        let mut log = SimLog::new();
        for r in sample_records() {
            log.push(r);
        }
        let text = log.to_text();
        let parsed = SimLog::parse(&text).unwrap();
        assert_eq!(parsed, log);
    }

    #[test]
    fn parse_skips_comments_and_blanks() {
        let log = SimLog::parse("# header\n\nDROP 5 p S\n").unwrap();
        assert_eq!(log.len(), 1);
    }

    #[test]
    fn parse_reports_line_numbers() {
        let err = SimLog::parse("DROP 5 p S\nEXEC nonsense\n").unwrap_err();
        assert!(err.starts_with("line 2:"), "{err}");
    }

    #[test]
    fn unknown_kind_rejected() {
        assert!(LogRecord::parse_line("WAT 1 2 3").is_err());
    }

    #[test]
    fn user_messages_keep_spaces_and_newlines() {
        let record = LogRecord::User {
            time_ns: 1,
            process: "p".into(),
            message: "hello embedded\nworld".into(),
        };
        let line = record.to_line();
        assert!(!line.contains('\n'), "record stays one line: {line}");
        let parsed = LogRecord::parse_line(&line).unwrap().unwrap();
        assert_eq!(parsed, record, "message survives exactly");
    }

    #[test]
    fn unescaped_user_messages_still_parse() {
        let parsed = LogRecord::parse_line("USER 7 p three plain words")
            .unwrap()
            .unwrap();
        match parsed {
            LogRecord::User { message, .. } => assert_eq!(message, "three plain words"),
            other => panic!("unexpected {other:?}"),
        }
    }

    /// Adversarial field contents: whitespace, backslashes, escape-like
    /// sequences, and empty strings must survive the text round trip
    /// without shifting field boundaries.
    #[test]
    fn adversarial_fields_round_trip() {
        let nasty = [
            "plain",
            "two words",
            " lead",
            "trail ",
            "tab\there",
            "line\nbreak",
            "cr\rhere",
            "back\\slash",
            "looks\\slike\\san\\sescape",
            "\\e",
            "",
            "  \t \n ",
        ];
        let mut log = SimLog::new();
        for (i, a) in nasty.iter().enumerate() {
            for b in &nasty {
                log.push(LogRecord::Exec {
                    time_ns: i as u64,
                    process: (*a).to_owned(),
                    cycles: 1,
                    duration_ns: 2,
                    from_state: (*b).to_owned(),
                    to_state: format!("{a}{b}"),
                    trigger: (*b).to_owned(),
                });
                log.push(LogRecord::Sig {
                    time_ns: i as u64,
                    sender: (*a).to_owned(),
                    receiver: (*b).to_owned(),
                    signal: format!("{b}{a}"),
                    bytes: 3,
                    latency_ns: 4,
                });
                log.push(LogRecord::Lost {
                    time_ns: i as u64,
                    process: (*a).to_owned(),
                    port: (*b).to_owned(),
                    signal: (*a).to_owned(),
                });
                log.push(LogRecord::User {
                    time_ns: i as u64,
                    process: (*a).to_owned(),
                    message: format!("{a} {b}"),
                });
            }
        }
        let text = log.to_text();
        for line in text.lines() {
            assert_eq!(line.trim(), line, "no stray leading/trailing whitespace");
        }
        let parsed = SimLog::parse(&text).expect("canonical text parses");
        assert_eq!(parsed, log);
    }

    #[test]
    fn escape_examples() {
        assert_eq!(escape_field("a b"), "a\\sb");
        assert_eq!(escape_field(""), "\\e");
        assert_eq!(escape_field("\\"), "\\\\");
        assert_eq!(unescape_field("a\\sb"), "a b");
        assert_eq!(unescape_field("\\e"), "");
        assert_eq!(unescape_field("\\q"), "q", "unknown escape is lenient");
        assert_eq!(
            unescape_field("oops\\"),
            "oops\\",
            "trailing backslash kept"
        );
    }

    #[test]
    fn timestamps_accessible() {
        for r in sample_records() {
            assert!(r.time_ns() > 0);
        }
    }
}
