//! The simulation log-file: line-oriented records.
//!
//! The paper's flow passes a *log file* from the simulation to the
//! profiling tool (§4.4: "the automatically generated application code is
//! complemented with custom C functions to create simulation log-file
//! during simulations"). To keep that tool boundary honest, the log has a
//! canonical **text form**; external consumers parse the text, not the
//! in-memory structs.
//!
//! Record lines (whitespace-separated, one record per line):
//!
//! ```text
//! EXEC  <time_ns> <process> <cycles> <duration_ns> <from_state> <to_state> <trigger>
//! SIG   <time_ns> <sender> <receiver> <signal> <bytes> <latency_ns>
//! DROP  <time_ns> <process> <signal>
//! LOST  <time_ns> <process> <port> <signal>
//! USER  <time_ns> <process> <message…>
//! FAULT <time_ns> <process> <kind> <signal>
//! CNT   <time_ns> <process> <counter> <amount>
//! ```
//!
//! Name fields and messages are **escaped** so embedded whitespace
//! cannot shift field boundaries: `\` → `\\`, space → `\s`, tab → `\t`,
//! newline → `\n`, carriage return → `\r`, and the empty string → `\e`.
//! Parsing reverses the escapes, so `to_text` → `parse` is lossless for
//! arbitrary model-provided names and messages.
//!
//! Internally a [`SimLog`] stores **interned** records: every name field
//! is a [`Sym`] into the log's [`Interner`], so the simulation hot path
//! appends `Copy`-cheap structs and strings are resolved only when the
//! text form is rendered. [`SimLog::iter`] yields [`RecordRef`]s
//! (borrowed string slices); [`LogRecord`] (owned strings) remains the
//! type for single-line parsing and construction.

use std::collections::HashMap;
use std::fmt::{self, Write as _};

use crate::intern::{Interner, Sym};

/// Escapes one whitespace-separated field of a log line.
pub(crate) fn escape_field(text: &str) -> String {
    if text.is_empty() {
        return "\\e".to_owned();
    }
    let mut out = String::with_capacity(text.len());
    for c in text.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            ' ' => out.push_str("\\s"),
            '\t' => out.push_str("\\t"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            c => out.push(c),
        }
    }
    out
}

/// Reverses [`escape_field`]. Unknown escapes keep the escaped
/// character, and a trailing backslash stays literal, so hand-written
/// logs without escapes still parse.
fn unescape_field(text: &str) -> String {
    let mut out = String::with_capacity(text.len());
    let mut chars = text.chars();
    while let Some(c) = chars.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match chars.next() {
            Some('\\') => out.push('\\'),
            Some('s') => out.push(' '),
            Some('t') => out.push('\t'),
            Some('n') => out.push('\n'),
            Some('r') => out.push('\r'),
            Some('e') => {}
            Some(other) => out.push(other),
            None => out.push('\\'),
        }
    }
    out
}

/// One record of the simulation log (owned strings; the construction and
/// single-line parsing type — a [`SimLog`] stores the interned form).
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum LogRecord {
    /// A run-to-completion step executed.
    Exec {
        /// Step start time (ns).
        time_ns: u64,
        /// Process instance name (dotted path, e.g. `ui.msduRec`).
        process: String,
        /// Cycles charged on the processing element.
        cycles: u64,
        /// Wall-clock duration on the element (ns).
        duration_ns: u64,
        /// State before the step.
        from_state: String,
        /// State after the step.
        to_state: String,
        /// What triggered the step (signal name, `timer:<name>`, or
        /// `start`).
        trigger: String,
    },
    /// A signal was delivered from one process to another.
    Sig {
        /// Delivery time (ns).
        time_ns: u64,
        /// Sending process instance name.
        sender: String,
        /// Receiving process instance name.
        receiver: String,
        /// Signal type name.
        signal: String,
        /// Payload bytes (including header).
        bytes: u64,
        /// End-to-end latency from send to delivery (ns).
        latency_ns: u64,
    },
    /// A delivered signal found no enabled transition and was discarded.
    Drop {
        /// Time of the discard (ns).
        time_ns: u64,
        /// The discarding process.
        process: String,
        /// The discarded signal.
        signal: String,
    },
    /// A sent signal had no connected receiver.
    Lost {
        /// Send time (ns).
        time_ns: u64,
        /// The sending process.
        process: String,
        /// The port it was sent through.
        port: String,
        /// The signal type name.
        signal: String,
    },
    /// A `Log` action emitted by the model itself.
    User {
        /// Emission time (ns).
        time_ns: u64,
        /// The emitting process.
        process: String,
        /// The rendered message.
        message: String,
    },
    /// A fault was injected (or a platform-model defect surfaced): a
    /// transfer was corrupted or dropped by the fault model, or a
    /// transfer found no route.
    Fault {
        /// Injection time (ns).
        time_ns: u64,
        /// The sending process whose transfer was hit.
        process: String,
        /// Fault kind: `corrupt`, `drop`, or `unroutable`.
        kind: String,
        /// The signal type name of the affected transfer.
        signal: String,
    },
    /// A `count` action: a named per-process counter was incremented.
    Count {
        /// Emission time (ns).
        time_ns: u64,
        /// The counting process.
        process: String,
        /// The counter name (dotted names group related tallies).
        counter: String,
        /// Signed increment.
        amount: i64,
    },
}

impl LogRecord {
    /// The record's canonical text line (no trailing newline).
    pub fn to_line(&self) -> String {
        match self {
            LogRecord::Exec {
                time_ns,
                process,
                cycles,
                duration_ns,
                from_state,
                to_state,
                trigger,
            } => format!(
                "EXEC {time_ns} {} {cycles} {duration_ns} {} {} {}",
                escape_field(process),
                escape_field(from_state),
                escape_field(to_state),
                escape_field(trigger)
            ),
            LogRecord::Sig {
                time_ns,
                sender,
                receiver,
                signal,
                bytes,
                latency_ns,
            } => format!(
                "SIG {time_ns} {} {} {} {bytes} {latency_ns}",
                escape_field(sender),
                escape_field(receiver),
                escape_field(signal)
            ),
            LogRecord::Drop {
                time_ns,
                process,
                signal,
            } => format!(
                "DROP {time_ns} {} {}",
                escape_field(process),
                escape_field(signal)
            ),
            LogRecord::Lost {
                time_ns,
                process,
                port,
                signal,
            } => format!(
                "LOST {time_ns} {} {} {}",
                escape_field(process),
                escape_field(port),
                escape_field(signal)
            ),
            LogRecord::User {
                time_ns,
                process,
                message,
            } => format!(
                "USER {time_ns} {} {}",
                escape_field(process),
                escape_field(message)
            ),
            LogRecord::Fault {
                time_ns,
                process,
                kind,
                signal,
            } => format!(
                "FAULT {time_ns} {} {} {}",
                escape_field(process),
                escape_field(kind),
                escape_field(signal)
            ),
            LogRecord::Count {
                time_ns,
                process,
                counter,
                amount,
            } => format!(
                "CNT {time_ns} {} {} {amount}",
                escape_field(process),
                escape_field(counter)
            ),
        }
    }

    /// Parses one log line.
    ///
    /// Returns `None` for blank lines and lines starting with `#`
    /// (comments); malformed records produce an error string naming the
    /// problem.
    pub fn parse_line(line: &str) -> Result<Option<LogRecord>, String> {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            return Ok(None);
        }
        let mut fields = line.split_whitespace();
        let kind = fields.next().expect("non-empty line has a first field");
        let mut next = |what: &str| -> Result<&str, String> {
            fields
                .next()
                .ok_or_else(|| format!("{kind} record is missing its {what} field"))
        };
        let parse_u64 = |text: &str, what: &str| -> Result<u64, String> {
            text.parse()
                .map_err(|_| format!("bad {what} value `{text}` in {kind} record"))
        };
        let record = match kind {
            "EXEC" => {
                let time_ns = parse_u64(next("time")?, "time")?;
                let process = unescape_field(next("process")?);
                let cycles = parse_u64(next("cycles")?, "cycles")?;
                let duration_ns = parse_u64(next("duration")?, "duration")?;
                let from_state = unescape_field(next("from_state")?);
                let to_state = unescape_field(next("to_state")?);
                let trigger = unescape_field(next("trigger")?);
                LogRecord::Exec {
                    time_ns,
                    process,
                    cycles,
                    duration_ns,
                    from_state,
                    to_state,
                    trigger,
                }
            }
            "SIG" => {
                let time_ns = parse_u64(next("time")?, "time")?;
                let sender = unescape_field(next("sender")?);
                let receiver = unescape_field(next("receiver")?);
                let signal = unescape_field(next("signal")?);
                let bytes = parse_u64(next("bytes")?, "bytes")?;
                let latency_ns = parse_u64(next("latency")?, "latency")?;
                LogRecord::Sig {
                    time_ns,
                    sender,
                    receiver,
                    signal,
                    bytes,
                    latency_ns,
                }
            }
            "DROP" => LogRecord::Drop {
                time_ns: parse_u64(next("time")?, "time")?,
                process: unescape_field(next("process")?),
                signal: unescape_field(next("signal")?),
            },
            "LOST" => LogRecord::Lost {
                time_ns: parse_u64(next("time")?, "time")?,
                process: unescape_field(next("process")?),
                port: unescape_field(next("port")?),
                signal: unescape_field(next("signal")?),
            },
            "USER" => {
                let time_ns = parse_u64(next("time")?, "time")?;
                let process = unescape_field(next("process")?);
                // Canonical logs escape the message into one field;
                // hand-written logs may leave it as plain words.
                let message = fields.map(unescape_field).collect::<Vec<_>>().join(" ");
                LogRecord::User {
                    time_ns,
                    process,
                    message,
                }
            }
            "FAULT" => LogRecord::Fault {
                time_ns: parse_u64(next("time")?, "time")?,
                process: unescape_field(next("process")?),
                kind: unescape_field(next("kind")?),
                signal: unescape_field(next("signal")?),
            },
            "CNT" => {
                let time_ns = parse_u64(next("time")?, "time")?;
                let process = unescape_field(next("process")?);
                let counter = unescape_field(next("counter")?);
                let amount_text = next("amount")?;
                let amount = amount_text
                    .parse()
                    .map_err(|_| format!("bad amount value `{amount_text}` in CNT record"))?;
                LogRecord::Count {
                    time_ns,
                    process,
                    counter,
                    amount,
                }
            }
            other => return Err(format!("unknown log record kind `{other}`")),
        };
        Ok(Some(record))
    }

    /// The record's timestamp.
    pub fn time_ns(&self) -> u64 {
        match self {
            LogRecord::Exec { time_ns, .. }
            | LogRecord::Sig { time_ns, .. }
            | LogRecord::Drop { time_ns, .. }
            | LogRecord::Lost { time_ns, .. }
            | LogRecord::User { time_ns, .. }
            | LogRecord::Fault { time_ns, .. }
            | LogRecord::Count { time_ns, .. } => *time_ns,
        }
    }
}

impl fmt::Display for LogRecord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_line())
    }
}

/// The interned storage form of one record: every name field is a
/// [`Sym`], so the struct is `Copy` and the hot path never allocates.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum CompactRecord {
    Exec {
        time_ns: u64,
        process: Sym,
        cycles: u64,
        duration_ns: u64,
        from_state: Sym,
        to_state: Sym,
        trigger: Sym,
    },
    Sig {
        time_ns: u64,
        sender: Sym,
        receiver: Sym,
        signal: Sym,
        bytes: u64,
        latency_ns: u64,
    },
    Drop {
        time_ns: u64,
        process: Sym,
        signal: Sym,
    },
    Lost {
        time_ns: u64,
        process: Sym,
        port: Sym,
        signal: Sym,
    },
    User {
        time_ns: u64,
        process: Sym,
        message: Sym,
    },
    Fault {
        time_ns: u64,
        process: Sym,
        kind: Sym,
        signal: Sym,
    },
    Count {
        time_ns: u64,
        process: Sym,
        counter: Sym,
        amount: i64,
    },
}

/// A borrowed view of one log record: the field layout of [`LogRecord`]
/// with string slices resolved from the log's interner. Yielded by
/// [`SimLog::iter`].
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum RecordRef<'a> {
    /// A run-to-completion step executed.
    Exec {
        /// Step start time (ns).
        time_ns: u64,
        /// Process instance name.
        process: &'a str,
        /// Cycles charged on the processing element.
        cycles: u64,
        /// Wall-clock duration on the element (ns).
        duration_ns: u64,
        /// State before the step.
        from_state: &'a str,
        /// State after the step.
        to_state: &'a str,
        /// What triggered the step.
        trigger: &'a str,
    },
    /// A signal was delivered from one process to another.
    Sig {
        /// Delivery time (ns).
        time_ns: u64,
        /// Sending process instance name.
        sender: &'a str,
        /// Receiving process instance name.
        receiver: &'a str,
        /// Signal type name.
        signal: &'a str,
        /// Payload bytes (including header).
        bytes: u64,
        /// End-to-end latency from send to delivery (ns).
        latency_ns: u64,
    },
    /// A delivered signal found no enabled transition and was discarded.
    Drop {
        /// Time of the discard (ns).
        time_ns: u64,
        /// The discarding process.
        process: &'a str,
        /// The discarded signal.
        signal: &'a str,
    },
    /// A sent signal had no connected receiver.
    Lost {
        /// Send time (ns).
        time_ns: u64,
        /// The sending process.
        process: &'a str,
        /// The port it was sent through.
        port: &'a str,
        /// The signal type name.
        signal: &'a str,
    },
    /// A `Log` action emitted by the model itself.
    User {
        /// Emission time (ns).
        time_ns: u64,
        /// The emitting process.
        process: &'a str,
        /// The rendered message.
        message: &'a str,
    },
    /// A fault was injected or a transfer found no route.
    Fault {
        /// Injection time (ns).
        time_ns: u64,
        /// The sending process whose transfer was hit.
        process: &'a str,
        /// Fault kind: `corrupt`, `drop`, or `unroutable`.
        kind: &'a str,
        /// The signal type name of the affected transfer.
        signal: &'a str,
    },
    /// A `count` action: a named per-process counter was incremented.
    Count {
        /// Emission time (ns).
        time_ns: u64,
        /// The counting process.
        process: &'a str,
        /// The counter name.
        counter: &'a str,
        /// Signed increment.
        amount: i64,
    },
}

impl RecordRef<'_> {
    /// The record's timestamp.
    pub fn time_ns(&self) -> u64 {
        match self {
            RecordRef::Exec { time_ns, .. }
            | RecordRef::Sig { time_ns, .. }
            | RecordRef::Drop { time_ns, .. }
            | RecordRef::Lost { time_ns, .. }
            | RecordRef::User { time_ns, .. }
            | RecordRef::Fault { time_ns, .. }
            | RecordRef::Count { time_ns, .. } => *time_ns,
        }
    }

    /// Copies the record into its owned form.
    pub fn to_owned(&self) -> LogRecord {
        match *self {
            RecordRef::Exec {
                time_ns,
                process,
                cycles,
                duration_ns,
                from_state,
                to_state,
                trigger,
            } => LogRecord::Exec {
                time_ns,
                process: process.to_owned(),
                cycles,
                duration_ns,
                from_state: from_state.to_owned(),
                to_state: to_state.to_owned(),
                trigger: trigger.to_owned(),
            },
            RecordRef::Sig {
                time_ns,
                sender,
                receiver,
                signal,
                bytes,
                latency_ns,
            } => LogRecord::Sig {
                time_ns,
                sender: sender.to_owned(),
                receiver: receiver.to_owned(),
                signal: signal.to_owned(),
                bytes,
                latency_ns,
            },
            RecordRef::Drop {
                time_ns,
                process,
                signal,
            } => LogRecord::Drop {
                time_ns,
                process: process.to_owned(),
                signal: signal.to_owned(),
            },
            RecordRef::Lost {
                time_ns,
                process,
                port,
                signal,
            } => LogRecord::Lost {
                time_ns,
                process: process.to_owned(),
                port: port.to_owned(),
                signal: signal.to_owned(),
            },
            RecordRef::User {
                time_ns,
                process,
                message,
            } => LogRecord::User {
                time_ns,
                process: process.to_owned(),
                message: message.to_owned(),
            },
            RecordRef::Fault {
                time_ns,
                process,
                kind,
                signal,
            } => LogRecord::Fault {
                time_ns,
                process: process.to_owned(),
                kind: kind.to_owned(),
                signal: signal.to_owned(),
            },
            RecordRef::Count {
                time_ns,
                process,
                counter,
                amount,
            } => LogRecord::Count {
                time_ns,
                process: process.to_owned(),
                counter: counter.to_owned(),
                amount,
            },
        }
    }
}

/// The header line of every rendered log file.
const HEADER: &str = "# TUT-Profile simulation log-file v1\n";

/// The full simulation log: interned records plus the symbol table that
/// resolves them, with per-counter tallies accumulated at push time.
#[derive(Clone, Debug, Default)]
pub struct SimLog {
    interner: Interner,
    records: Vec<CompactRecord>,
    /// Exact rendered body length (every line incl. its newline, header
    /// excluded), maintained incrementally so [`SimLog::to_text`]
    /// allocates once.
    text_len: usize,
    /// `(process, counter)` totals of `CNT` records, accumulated at push
    /// time so report queries never rescan the log.
    counters: HashMap<(Sym, Sym), i64>,
}

/// Decimal digit count of a `u64` (every value prints at least one).
fn digits(mut n: u64) -> usize {
    let mut count = 1;
    while n >= 10 {
        n /= 10;
        count += 1;
    }
    count
}

/// Decimal width of an `i64` including a possible sign.
fn digits_i64(n: i64) -> usize {
    if n < 0 {
        1 + digits(n.unsigned_abs())
    } else {
        digits(n as u64)
    }
}

impl SimLog {
    /// An empty log.
    pub fn new() -> SimLog {
        SimLog::default()
    }

    /// Interns `text` into this log's symbol table.
    pub fn intern(&mut self, text: &str) -> Sym {
        self.interner.intern(text)
    }

    /// Resolves a symbol produced by [`SimLog::intern`].
    pub fn resolve(&self, sym: Sym) -> &str {
        self.interner.resolve(sym)
    }

    /// The exact rendered line length of `record`, newline included.
    fn line_len(&self, record: &CompactRecord) -> usize {
        let esc = |s: &Sym| self.interner.escaped(*s).len();
        match record {
            CompactRecord::Exec {
                time_ns,
                process,
                cycles,
                duration_ns,
                from_state,
                to_state,
                trigger,
            } => {
                // "EXEC" + 7 space-separated fields + newline.
                4 + 8
                    + digits(*time_ns)
                    + esc(process)
                    + digits(*cycles)
                    + digits(*duration_ns)
                    + esc(from_state)
                    + esc(to_state)
                    + esc(trigger)
            }
            CompactRecord::Sig {
                time_ns,
                sender,
                receiver,
                signal,
                bytes,
                latency_ns,
            } => {
                3 + 7
                    + digits(*time_ns)
                    + esc(sender)
                    + esc(receiver)
                    + esc(signal)
                    + digits(*bytes)
                    + digits(*latency_ns)
            }
            CompactRecord::Drop {
                time_ns,
                process,
                signal,
            } => 4 + 4 + digits(*time_ns) + esc(process) + esc(signal),
            CompactRecord::Lost {
                time_ns,
                process,
                port,
                signal,
            } => 4 + 5 + digits(*time_ns) + esc(process) + esc(port) + esc(signal),
            CompactRecord::User {
                time_ns,
                process,
                message,
            } => 4 + 4 + digits(*time_ns) + esc(process) + esc(message),
            CompactRecord::Fault {
                time_ns,
                process,
                kind,
                signal,
            } => 5 + 5 + digits(*time_ns) + esc(process) + esc(kind) + esc(signal),
            CompactRecord::Count {
                time_ns,
                process,
                counter,
                amount,
            } => 3 + 5 + digits(*time_ns) + esc(process) + esc(counter) + digits_i64(*amount),
        }
    }

    /// Number of stored records (cheaper than [`SimLog::iter`] for the
    /// parallel kernel's per-event bookkeeping).
    pub(crate) fn records_len(&self) -> usize {
        self.records.len()
    }

    /// Maps a symbol of `other` into this log's interner, memoising in
    /// `remap` (indexed by the source symbol).
    fn map_sym(&mut self, other: &SimLog, remap: &mut Vec<Option<Sym>>, sym: Sym) -> Sym {
        if let Some(Some(mapped)) = remap.get(sym.index()) {
            return *mapped;
        }
        let mapped = self.interner.intern(other.interner.resolve(sym));
        if remap.len() <= sym.index() {
            remap.resize(sym.index() + 1, None);
        }
        remap[sym.index()] = Some(mapped);
        mapped
    }

    /// Appends `other.records[start..end]` to this log, re-interning
    /// every name through `remap`. This is the parallel kernel's log
    /// merge: per-LP logs (whose interners start as clones of the same
    /// build-time table and diverge only on cold paths) are stitched
    /// into one log in global event order.
    pub(crate) fn extend_remapped(
        &mut self,
        other: &SimLog,
        start: usize,
        end: usize,
        remap: &mut Vec<Option<Sym>>,
    ) {
        for index in start..end {
            let record = other.records[index];
            let mapped = match record {
                CompactRecord::Exec {
                    time_ns,
                    process,
                    cycles,
                    duration_ns,
                    from_state,
                    to_state,
                    trigger,
                } => CompactRecord::Exec {
                    time_ns,
                    process: self.map_sym(other, remap, process),
                    cycles,
                    duration_ns,
                    from_state: self.map_sym(other, remap, from_state),
                    to_state: self.map_sym(other, remap, to_state),
                    trigger: self.map_sym(other, remap, trigger),
                },
                CompactRecord::Sig {
                    time_ns,
                    sender,
                    receiver,
                    signal,
                    bytes,
                    latency_ns,
                } => CompactRecord::Sig {
                    time_ns,
                    sender: self.map_sym(other, remap, sender),
                    receiver: self.map_sym(other, remap, receiver),
                    signal: self.map_sym(other, remap, signal),
                    bytes,
                    latency_ns,
                },
                CompactRecord::Drop {
                    time_ns,
                    process,
                    signal,
                } => CompactRecord::Drop {
                    time_ns,
                    process: self.map_sym(other, remap, process),
                    signal: self.map_sym(other, remap, signal),
                },
                CompactRecord::Lost {
                    time_ns,
                    process,
                    port,
                    signal,
                } => CompactRecord::Lost {
                    time_ns,
                    process: self.map_sym(other, remap, process),
                    port: self.map_sym(other, remap, port),
                    signal: self.map_sym(other, remap, signal),
                },
                CompactRecord::User {
                    time_ns,
                    process,
                    message,
                } => CompactRecord::User {
                    time_ns,
                    process: self.map_sym(other, remap, process),
                    message: self.map_sym(other, remap, message),
                },
                CompactRecord::Fault {
                    time_ns,
                    process,
                    kind,
                    signal,
                } => CompactRecord::Fault {
                    time_ns,
                    process: self.map_sym(other, remap, process),
                    kind: self.map_sym(other, remap, kind),
                    signal: self.map_sym(other, remap, signal),
                },
                CompactRecord::Count {
                    time_ns,
                    process,
                    counter,
                    amount,
                } => CompactRecord::Count {
                    time_ns,
                    process: self.map_sym(other, remap, process),
                    counter: self.map_sym(other, remap, counter),
                    amount,
                },
            };
            self.push_compact(mapped);
        }
    }

    /// Appends one interned record, maintaining the incremental tallies
    /// and the exact text length.
    fn push_compact(&mut self, record: CompactRecord) {
        if let CompactRecord::Count {
            process,
            counter,
            amount,
            ..
        } = record
        {
            *self.counters.entry((process, counter)).or_default() += amount;
        }
        self.text_len += self.line_len(&record);
        self.records.push(record);
    }

    /// Appends a record, interning its string fields.
    pub fn push(&mut self, record: LogRecord) {
        let compact = match &record {
            LogRecord::Exec {
                time_ns,
                process,
                cycles,
                duration_ns,
                from_state,
                to_state,
                trigger,
            } => CompactRecord::Exec {
                time_ns: *time_ns,
                process: self.interner.intern(process),
                cycles: *cycles,
                duration_ns: *duration_ns,
                from_state: self.interner.intern(from_state),
                to_state: self.interner.intern(to_state),
                trigger: self.interner.intern(trigger),
            },
            LogRecord::Sig {
                time_ns,
                sender,
                receiver,
                signal,
                bytes,
                latency_ns,
            } => CompactRecord::Sig {
                time_ns: *time_ns,
                sender: self.interner.intern(sender),
                receiver: self.interner.intern(receiver),
                signal: self.interner.intern(signal),
                bytes: *bytes,
                latency_ns: *latency_ns,
            },
            LogRecord::Drop {
                time_ns,
                process,
                signal,
            } => CompactRecord::Drop {
                time_ns: *time_ns,
                process: self.interner.intern(process),
                signal: self.interner.intern(signal),
            },
            LogRecord::Lost {
                time_ns,
                process,
                port,
                signal,
            } => CompactRecord::Lost {
                time_ns: *time_ns,
                process: self.interner.intern(process),
                port: self.interner.intern(port),
                signal: self.interner.intern(signal),
            },
            LogRecord::User {
                time_ns,
                process,
                message,
            } => CompactRecord::User {
                time_ns: *time_ns,
                process: self.interner.intern(process),
                message: self.interner.intern(message),
            },
            LogRecord::Fault {
                time_ns,
                process,
                kind,
                signal,
            } => CompactRecord::Fault {
                time_ns: *time_ns,
                process: self.interner.intern(process),
                kind: self.interner.intern(kind),
                signal: self.interner.intern(signal),
            },
            LogRecord::Count {
                time_ns,
                process,
                counter,
                amount,
            } => CompactRecord::Count {
                time_ns: *time_ns,
                process: self.interner.intern(process),
                counter: self.interner.intern(counter),
                amount: *amount,
            },
        };
        self.push_compact(compact);
    }

    /// Appends an `EXEC` record from pre-interned symbols (hot path).
    #[allow(clippy::too_many_arguments)]
    pub fn push_exec(
        &mut self,
        time_ns: u64,
        process: Sym,
        cycles: u64,
        duration_ns: u64,
        from_state: Sym,
        to_state: Sym,
        trigger: Sym,
    ) {
        self.push_compact(CompactRecord::Exec {
            time_ns,
            process,
            cycles,
            duration_ns,
            from_state,
            to_state,
            trigger,
        });
    }

    /// Appends a `SIG` record from pre-interned symbols (hot path).
    pub fn push_sig(
        &mut self,
        time_ns: u64,
        sender: Sym,
        receiver: Sym,
        signal: Sym,
        bytes: u64,
        latency_ns: u64,
    ) {
        self.push_compact(CompactRecord::Sig {
            time_ns,
            sender,
            receiver,
            signal,
            bytes,
            latency_ns,
        });
    }

    /// Appends a `DROP` record from pre-interned symbols (hot path).
    pub fn push_drop(&mut self, time_ns: u64, process: Sym, signal: Sym) {
        self.push_compact(CompactRecord::Drop {
            time_ns,
            process,
            signal,
        });
    }

    /// Appends a `LOST` record from pre-interned symbols.
    pub fn push_lost(&mut self, time_ns: u64, process: Sym, port: Sym, signal: Sym) {
        self.push_compact(CompactRecord::Lost {
            time_ns,
            process,
            port,
            signal,
        });
    }

    /// Appends a `USER` record; the message is interned on first use.
    pub fn push_user(&mut self, time_ns: u64, process: Sym, message: &str) {
        let message = self.interner.intern(message);
        self.push_compact(CompactRecord::User {
            time_ns,
            process,
            message,
        });
    }

    /// Appends a `FAULT` record from pre-interned symbols.
    pub fn push_fault(&mut self, time_ns: u64, process: Sym, kind: Sym, signal: Sym) {
        self.push_compact(CompactRecord::Fault {
            time_ns,
            process,
            kind,
            signal,
        });
    }

    /// Appends a `CNT` record; the counter name is interned on first use.
    pub fn push_count(&mut self, time_ns: u64, process: Sym, counter: &str, amount: i64) {
        let counter = self.interner.intern(counter);
        self.push_compact(CompactRecord::Count {
            time_ns,
            process,
            counter,
            amount,
        });
    }

    /// Borrowed view of one record by index.
    ///
    /// # Panics
    ///
    /// Panics when `index >= self.len()`.
    pub fn get(&self, index: usize) -> RecordRef<'_> {
        let resolve = |s: &Sym| self.interner.resolve(*s);
        match &self.records[index] {
            CompactRecord::Exec {
                time_ns,
                process,
                cycles,
                duration_ns,
                from_state,
                to_state,
                trigger,
            } => RecordRef::Exec {
                time_ns: *time_ns,
                process: resolve(process),
                cycles: *cycles,
                duration_ns: *duration_ns,
                from_state: resolve(from_state),
                to_state: resolve(to_state),
                trigger: resolve(trigger),
            },
            CompactRecord::Sig {
                time_ns,
                sender,
                receiver,
                signal,
                bytes,
                latency_ns,
            } => RecordRef::Sig {
                time_ns: *time_ns,
                sender: resolve(sender),
                receiver: resolve(receiver),
                signal: resolve(signal),
                bytes: *bytes,
                latency_ns: *latency_ns,
            },
            CompactRecord::Drop {
                time_ns,
                process,
                signal,
            } => RecordRef::Drop {
                time_ns: *time_ns,
                process: resolve(process),
                signal: resolve(signal),
            },
            CompactRecord::Lost {
                time_ns,
                process,
                port,
                signal,
            } => RecordRef::Lost {
                time_ns: *time_ns,
                process: resolve(process),
                port: resolve(port),
                signal: resolve(signal),
            },
            CompactRecord::User {
                time_ns,
                process,
                message,
            } => RecordRef::User {
                time_ns: *time_ns,
                process: resolve(process),
                message: resolve(message),
            },
            CompactRecord::Fault {
                time_ns,
                process,
                kind,
                signal,
            } => RecordRef::Fault {
                time_ns: *time_ns,
                process: resolve(process),
                kind: resolve(kind),
                signal: resolve(signal),
            },
            CompactRecord::Count {
                time_ns,
                process,
                counter,
                amount,
            } => RecordRef::Count {
                time_ns: *time_ns,
                process: resolve(process),
                counter: resolve(counter),
                amount: *amount,
            },
        }
    }

    /// Iterates over the records as borrowed [`RecordRef`]s.
    pub fn iter(&self) -> impl ExactSizeIterator<Item = RecordRef<'_>> + '_ {
        (0..self.records.len()).map(|i| self.get(i))
    }

    /// Renders the whole log as its canonical text form, streaming every
    /// record into one exactly-sized buffer.
    pub fn to_text(&self) -> String {
        let mut out = String::with_capacity(HEADER.len() + self.text_len);
        out.push_str(HEADER);
        let esc = |s: &Sym| self.interner.escaped(*s);
        for record in &self.records {
            match record {
                CompactRecord::Exec {
                    time_ns,
                    process,
                    cycles,
                    duration_ns,
                    from_state,
                    to_state,
                    trigger,
                } => {
                    let _ = writeln!(
                        out,
                        "EXEC {time_ns} {} {cycles} {duration_ns} {} {} {}",
                        esc(process),
                        esc(from_state),
                        esc(to_state),
                        esc(trigger)
                    );
                }
                CompactRecord::Sig {
                    time_ns,
                    sender,
                    receiver,
                    signal,
                    bytes,
                    latency_ns,
                } => {
                    let _ = writeln!(
                        out,
                        "SIG {time_ns} {} {} {} {bytes} {latency_ns}",
                        esc(sender),
                        esc(receiver),
                        esc(signal)
                    );
                }
                CompactRecord::Drop {
                    time_ns,
                    process,
                    signal,
                } => {
                    let _ = writeln!(out, "DROP {time_ns} {} {}", esc(process), esc(signal));
                }
                CompactRecord::Lost {
                    time_ns,
                    process,
                    port,
                    signal,
                } => {
                    let _ = writeln!(
                        out,
                        "LOST {time_ns} {} {} {}",
                        esc(process),
                        esc(port),
                        esc(signal)
                    );
                }
                CompactRecord::User {
                    time_ns,
                    process,
                    message,
                } => {
                    let _ = writeln!(out, "USER {time_ns} {} {}", esc(process), esc(message));
                }
                CompactRecord::Fault {
                    time_ns,
                    process,
                    kind,
                    signal,
                } => {
                    let _ = writeln!(
                        out,
                        "FAULT {time_ns} {} {} {}",
                        esc(process),
                        esc(kind),
                        esc(signal)
                    );
                }
                CompactRecord::Count {
                    time_ns,
                    process,
                    counter,
                    amount,
                } => {
                    let _ = writeln!(
                        out,
                        "CNT {time_ns} {} {} {amount}",
                        esc(process),
                        esc(counter)
                    );
                }
            }
        }
        debug_assert_eq!(
            out.len(),
            HEADER.len() + self.text_len,
            "incremental text length must be exact"
        );
        out
    }

    /// Parses a log from its text form.
    ///
    /// # Errors
    ///
    /// Returns the first malformed line's error, prefixed with its line
    /// number.
    pub fn parse(text: &str) -> Result<SimLog, String> {
        let mut log = SimLog::new();
        for (number, line) in text.lines().enumerate() {
            match LogRecord::parse_line(line) {
                Ok(Some(record)) => log.push(record),
                Ok(None) => {}
                Err(err) => return Err(format!("line {}: {err}", number + 1)),
            }
        }
        Ok(log)
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True if the log holds no records.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Total of one named counter across all processes, from the tallies
    /// accumulated at push time (`CNT` records).
    pub fn counter_total(&self, counter: &str) -> i64 {
        let Some(counter) = self.interner.lookup(counter) else {
            return 0;
        };
        self.counters
            .iter()
            .filter(|((_, c), _)| *c == counter)
            .map(|(_, amount)| amount)
            .sum()
    }

    /// Total of one named counter for one process, from the push-time
    /// tallies.
    pub fn process_counter(&self, process: &str, counter: &str) -> i64 {
        match (self.interner.lookup(process), self.interner.lookup(counter)) {
            (Some(p), Some(c)) => self.counters.get(&(p, c)).copied().unwrap_or(0),
            _ => 0,
        }
    }
}

// Equality compares resolved record content: two logs with different
// interning orders (e.g. engine-built vs parsed) are equal when every
// record reads the same.
impl PartialEq for SimLog {
    fn eq(&self, other: &Self) -> bool {
        self.len() == other.len() && self.iter().zip(other.iter()).all(|(a, b)| a == b)
    }
}
impl Eq for SimLog {}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_records() -> Vec<LogRecord> {
        vec![
            LogRecord::Exec {
                time_ns: 100,
                process: "ui.msduRec".into(),
                cycles: 420,
                duration_ns: 8400,
                from_state: "Idle".into(),
                to_state: "Busy".into(),
                trigger: "MsduRequest".into(),
            },
            LogRecord::Sig {
                time_ns: 8600,
                sender: "ui.msduRec".into(),
                receiver: "dp.frag".into(),
                signal: "Msdu".into(),
                bytes: 1508,
                latency_ns: 200,
            },
            LogRecord::Drop {
                time_ns: 9000,
                process: "mng".into(),
                signal: "Beacon".into(),
            },
            LogRecord::Lost {
                time_ns: 9100,
                process: "rca".into(),
                port: "pPhy".into(),
                signal: "TxFrame".into(),
            },
            LogRecord::User {
                time_ns: 9200,
                process: "rca".into(),
                message: "sent 3 frames".into(),
            },
            LogRecord::Fault {
                time_ns: 9300,
                process: "rca".into(),
                kind: "corrupt".into(),
                signal: "TxFrame".into(),
            },
            LogRecord::Count {
                time_ns: 9400,
                process: "rca".into(),
                counter: "arq.retries".into(),
                amount: -2,
            },
        ]
    }

    #[test]
    fn round_trip_text() {
        let mut log = SimLog::new();
        for r in sample_records() {
            log.push(r);
        }
        let text = log.to_text();
        let parsed = SimLog::parse(&text).unwrap();
        assert_eq!(parsed, log);
    }

    #[test]
    fn parse_skips_comments_and_blanks() {
        let log = SimLog::parse("# header\n\nDROP 5 p S\n").unwrap();
        assert_eq!(log.len(), 1);
    }

    #[test]
    fn parse_reports_line_numbers() {
        let err = SimLog::parse("DROP 5 p S\nEXEC nonsense\n").unwrap_err();
        assert!(err.starts_with("line 2:"), "{err}");
    }

    #[test]
    fn unknown_kind_rejected() {
        assert!(LogRecord::parse_line("WAT 1 2 3").is_err());
    }

    #[test]
    fn user_messages_keep_spaces_and_newlines() {
        let record = LogRecord::User {
            time_ns: 1,
            process: "p".into(),
            message: "hello embedded\nworld".into(),
        };
        let line = record.to_line();
        assert!(!line.contains('\n'), "record stays one line: {line}");
        let parsed = LogRecord::parse_line(&line).unwrap().unwrap();
        assert_eq!(parsed, record, "message survives exactly");
    }

    #[test]
    fn unescaped_user_messages_still_parse() {
        let parsed = LogRecord::parse_line("USER 7 p three plain words")
            .unwrap()
            .unwrap();
        match parsed {
            LogRecord::User { message, .. } => assert_eq!(message, "three plain words"),
            other => panic!("unexpected {other:?}"),
        }
    }

    /// Adversarial field contents: whitespace, backslashes, escape-like
    /// sequences, and empty strings must survive the text round trip
    /// without shifting field boundaries.
    #[test]
    fn adversarial_fields_round_trip() {
        let nasty = [
            "plain",
            "two words",
            " lead",
            "trail ",
            "tab\there",
            "line\nbreak",
            "cr\rhere",
            "back\\slash",
            "looks\\slike\\san\\sescape",
            "\\e",
            "",
            "  \t \n ",
        ];
        let mut log = SimLog::new();
        for (i, a) in nasty.iter().enumerate() {
            for b in &nasty {
                log.push(LogRecord::Exec {
                    time_ns: i as u64,
                    process: (*a).to_owned(),
                    cycles: 1,
                    duration_ns: 2,
                    from_state: (*b).to_owned(),
                    to_state: format!("{a}{b}"),
                    trigger: (*b).to_owned(),
                });
                log.push(LogRecord::Sig {
                    time_ns: i as u64,
                    sender: (*a).to_owned(),
                    receiver: (*b).to_owned(),
                    signal: format!("{b}{a}"),
                    bytes: 3,
                    latency_ns: 4,
                });
                log.push(LogRecord::Lost {
                    time_ns: i as u64,
                    process: (*a).to_owned(),
                    port: (*b).to_owned(),
                    signal: (*a).to_owned(),
                });
                log.push(LogRecord::User {
                    time_ns: i as u64,
                    process: (*a).to_owned(),
                    message: format!("{a} {b}"),
                });
            }
        }
        let text = log.to_text();
        for line in text.lines() {
            assert_eq!(line.trim(), line, "no stray leading/trailing whitespace");
        }
        let parsed = SimLog::parse(&text).expect("canonical text parses");
        assert_eq!(parsed, log);
    }

    #[test]
    fn escape_examples() {
        assert_eq!(escape_field("a b"), "a\\sb");
        assert_eq!(escape_field(""), "\\e");
        assert_eq!(escape_field("\\"), "\\\\");
        assert_eq!(unescape_field("a\\sb"), "a b");
        assert_eq!(unescape_field("\\e"), "");
        assert_eq!(unescape_field("\\q"), "q", "unknown escape is lenient");
        assert_eq!(
            unescape_field("oops\\"),
            "oops\\",
            "trailing backslash kept"
        );
    }

    #[test]
    fn timestamps_accessible() {
        for r in sample_records() {
            assert!(r.time_ns() > 0);
        }
    }

    /// Satellite property: `parse_line(to_line(r)) == r` for every
    /// variant, including whitespace-laden fields and `u64::MAX`
    /// timestamps.
    #[test]
    fn every_variant_round_trips_line_by_line() {
        let fields = ["plain", "two words", "", "tab\tand\nnewline", "\\e", " x "];
        let mut cases: Vec<LogRecord> = Vec::new();
        for f in fields {
            for time_ns in [0, 7, u64::MAX] {
                let f = f.to_owned();
                cases.extend([
                    LogRecord::Exec {
                        time_ns,
                        process: f.clone(),
                        cycles: u64::MAX,
                        duration_ns: u64::MAX,
                        from_state: f.clone(),
                        to_state: f.clone(),
                        trigger: f.clone(),
                    },
                    LogRecord::Sig {
                        time_ns,
                        sender: f.clone(),
                        receiver: f.clone(),
                        signal: f.clone(),
                        bytes: u64::MAX,
                        latency_ns: 0,
                    },
                    LogRecord::Drop {
                        time_ns,
                        process: f.clone(),
                        signal: f.clone(),
                    },
                    LogRecord::Lost {
                        time_ns,
                        process: f.clone(),
                        port: f.clone(),
                        signal: f.clone(),
                    },
                    LogRecord::User {
                        time_ns,
                        process: f.clone(),
                        message: f.clone(),
                    },
                    LogRecord::Fault {
                        time_ns,
                        process: f.clone(),
                        kind: f.clone(),
                        signal: f.clone(),
                    },
                    LogRecord::Count {
                        time_ns,
                        process: f.clone(),
                        counter: f.clone(),
                        amount: i64::MIN,
                    },
                    LogRecord::Count {
                        time_ns,
                        process: f,
                        counter: "c".into(),
                        amount: i64::MAX,
                    },
                ]);
            }
        }
        for record in cases {
            let line = record.to_line();
            let parsed = LogRecord::parse_line(&line)
                .unwrap_or_else(|e| panic!("`{line}` failed: {e}"))
                .unwrap();
            assert_eq!(parsed, record, "line `{line}`");
        }
    }

    /// The incrementally maintained text length is exact: `to_text`
    /// never reallocates, for any field content.
    #[test]
    fn to_text_capacity_is_exact() {
        let mut log = SimLog::new();
        for r in sample_records() {
            log.push(r);
        }
        log.push(LogRecord::Count {
            time_ns: u64::MAX,
            process: "two words".into(),
            counter: "".into(),
            amount: i64::MIN,
        });
        let text = log.to_text();
        assert_eq!(text.len(), HEADER.len() + log.text_len);
    }

    /// Typed (pre-interned) pushes and owned-record pushes render
    /// byte-identically: the interner is a storage detail, not a format
    /// change.
    #[test]
    fn interned_pushes_render_identically_to_owned_pushes() {
        let mut owned = SimLog::new();
        for r in sample_records() {
            owned.push(r);
        }
        let mut interned = SimLog::new();
        // Intern in a scrambled order to prove order does not matter.
        let rca = interned.intern("rca");
        let busy = interned.intern("Busy");
        let ui = interned.intern("ui.msduRec");
        let idle = interned.intern("Idle");
        let msdu_req = interned.intern("MsduRequest");
        let frag = interned.intern("dp.frag");
        let msdu = interned.intern("Msdu");
        let mng = interned.intern("mng");
        let beacon = interned.intern("Beacon");
        let p_phy = interned.intern("pPhy");
        let tx_frame = interned.intern("TxFrame");
        let corrupt = interned.intern("corrupt");
        interned.push_exec(100, ui, 420, 8400, idle, busy, msdu_req);
        interned.push_sig(8600, ui, frag, msdu, 1508, 200);
        interned.push_drop(9000, mng, beacon);
        interned.push_lost(9100, rca, p_phy, tx_frame);
        interned.push_user(9200, rca, "sent 3 frames");
        interned.push_fault(9300, rca, corrupt, tx_frame);
        interned.push_count(9400, rca, "arq.retries", -2);
        assert_eq!(interned.to_text(), owned.to_text());
        assert_eq!(interned, owned);
    }

    #[test]
    fn counter_tallies_accumulate_at_push_time() {
        let mut log = SimLog::new();
        let p1 = log.intern("p1");
        let p2 = log.intern("p2");
        log.push_count(1, p1, "arq.tx", 2);
        log.push_count(2, p1, "arq.tx", 3);
        log.push_count(3, p2, "arq.tx", 10);
        log.push_count(4, p1, "arq.acked", 4);
        assert_eq!(log.counter_total("arq.tx"), 15);
        assert_eq!(log.process_counter("p1", "arq.tx"), 5);
        assert_eq!(log.process_counter("p1", "arq.acked"), 4);
        assert_eq!(log.counter_total("nope"), 0);
        assert_eq!(log.process_counter("nope", "arq.tx"), 0);
    }
}
