//! Error type for the simulator.

use std::fmt;

/// Errors produced while building or running a simulation.
#[derive(Clone, PartialEq, Debug)]
#[non_exhaustive]
pub enum SimError {
    /// The system model has no `«Application»` top-level class.
    NoApplication,
    /// A functional component lacks a state machine.
    MissingBehaviour {
        /// The class name.
        class: String,
    },
    /// The model failed a structural precondition.
    BadModel(String),
    /// The platform model could not be turned into a HIBI network.
    Network(String),
    /// An action-language runtime error inside a process step.
    Runtime {
        /// The process that faulted.
        process: String,
        /// The underlying action error.
        message: String,
    },
    /// A platform tagged value is outside the range the simulator (or
    /// the HIBI RTL it models) can represent — lowering it would
    /// silently truncate. Reported as diagnostic code `E0410` by
    /// `repro check`.
    ParamOutOfRange {
        /// Display form of the owning model element (e.g. `prop3`),
        /// resolvable to a document span via the XMI `SpanIndex`.
        element: String,
        /// Human name of the owning part/segment/wrapper.
        owner: String,
        /// The tagged-value name (e.g. `DataWidth`).
        param: &'static str,
        /// The out-of-range value as modelled.
        value: i64,
        /// Inclusive lower bound of the representable range.
        min: i64,
        /// Inclusive upper bound of the representable range.
        max: u64,
    },
    /// The simulation watchdog fired: the run exceeded its event budget
    /// or went quiescent (no useful work) past its deadline, i.e. the
    /// model livelocked instead of finishing.
    WatchdogExpired {
        /// Simulated time at expiry (ns).
        time_ns: u64,
        /// Events popped up to expiry.
        events: u64,
        /// Which limit fired: `event-budget` or `quiescence`.
        limit: String,
        /// The hottest processes at expiry (deepest input queues
        /// first), to point at the livelock.
        hot_processes: Vec<String>,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::NoApplication => {
                f.write_str("model has no \u{ab}Application\u{bb} top-level class")
            }
            SimError::MissingBehaviour { class } => {
                write!(f, "functional component `{class}` has no state machine")
            }
            SimError::BadModel(msg) => write!(f, "bad model: {msg}"),
            SimError::Network(msg) => write!(f, "platform network error: {msg}"),
            SimError::Runtime { process, message } => {
                write!(f, "runtime error in process `{process}`: {message}")
            }
            SimError::ParamOutOfRange {
                owner,
                param,
                value,
                min,
                max,
                ..
            } => {
                write!(
                    f,
                    "platform parameter `{param}` of `{owner}` is {value}, \
                     outside the representable range {min}..={max}"
                )
            }
            SimError::WatchdogExpired {
                time_ns,
                events,
                limit,
                hot_processes,
            } => {
                write!(
                    f,
                    "watchdog expired ({limit}) at {time_ns} ns after {events} events; \
                     hot processes: {}",
                    if hot_processes.is_empty() {
                        "none".to_owned()
                    } else {
                        hot_processes.join(", ")
                    }
                )
            }
        }
    }
}

impl SimError {
    /// The stable diagnostic code of this error, when `repro check`
    /// surfaces it as a spanned model diagnostic.
    pub fn code(&self) -> Option<&'static str> {
        match self {
            SimError::ParamOutOfRange { .. } => Some(E_PARAM_RANGE),
            _ => None,
        }
    }

    /// Display form of the model element this error is attributed to,
    /// if any (keys the XMI `SpanIndex`).
    pub fn element(&self) -> Option<&str> {
        match self {
            SimError::ParamOutOfRange { element, .. } => Some(element),
            _ => None,
        }
    }
}

/// Diagnostic code for [`SimError::ParamOutOfRange`].
pub const E_PARAM_RANGE: &str = "E0410";

impl std::error::Error for SimError {}

impl From<tut_hibi::HibiError> for SimError {
    fn from(err: tut_hibi::HibiError) -> Self {
        SimError::Network(err.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_forms() {
        assert!(SimError::NoApplication.to_string().contains("Application"));
        let e = SimError::Runtime {
            process: "rca".into(),
            message: "division by zero".into(),
        };
        assert!(e.to_string().contains("rca"));
    }

    #[test]
    fn watchdog_display_names_the_hot_process() {
        let e = SimError::WatchdogExpired {
            time_ns: 5_000_000,
            events: 12_345,
            limit: "quiescence".into(),
            hot_processes: vec!["rca".into(), "channel".into()],
        };
        let text = e.to_string();
        assert!(text.contains("rca"), "hot process named: {text}");
        assert!(text.contains("quiescence"), "limit named: {text}");
        assert!(text.contains("5000000"), "expiry time shown: {text}");

        // It is a std error like every other variant.
        let boxed: Box<dyn std::error::Error> = Box::new(e);
        assert!(boxed.to_string().contains("watchdog expired"));

        let empty = SimError::WatchdogExpired {
            time_ns: 0,
            events: 0,
            limit: "event-budget".into(),
            hot_processes: vec![],
        };
        assert!(empty.to_string().contains("none"));
    }
}
