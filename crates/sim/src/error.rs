//! Error type for the simulator.

use std::fmt;

/// Errors produced while building or running a simulation.
#[derive(Clone, PartialEq, Debug)]
#[non_exhaustive]
pub enum SimError {
    /// The system model has no `«Application»` top-level class.
    NoApplication,
    /// A functional component lacks a state machine.
    MissingBehaviour {
        /// The class name.
        class: String,
    },
    /// The model failed a structural precondition.
    BadModel(String),
    /// The platform model could not be turned into a HIBI network.
    Network(String),
    /// An action-language runtime error inside a process step.
    Runtime {
        /// The process that faulted.
        process: String,
        /// The underlying action error.
        message: String,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::NoApplication => {
                f.write_str("model has no \u{ab}Application\u{bb} top-level class")
            }
            SimError::MissingBehaviour { class } => {
                write!(f, "functional component `{class}` has no state machine")
            }
            SimError::BadModel(msg) => write!(f, "bad model: {msg}"),
            SimError::Network(msg) => write!(f, "platform network error: {msg}"),
            SimError::Runtime { process, message } => {
                write!(f, "runtime error in process `{process}`: {message}")
            }
        }
    }
}

impl std::error::Error for SimError {}

impl From<tut_hibi::HibiError> for SimError {
    fn from(err: tut_hibi::HibiError) -> Self {
        SimError::Network(err.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_forms() {
        assert!(SimError::NoApplication.to_string().contains("Application"));
        let e = SimError::Runtime {
            process: "rca".into(),
            message: "division by zero".into(),
        };
        assert!(e.to_string().contains("rca"));
    }
}
