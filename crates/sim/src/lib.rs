//! Discrete-event hardware/software co-simulation of TUT-Profile systems.
//!
//! This crate is the "Simulation" stage of the paper's Figure 2 flow: it
//! executes the application's EFSMs (asynchronous communicating extended
//! finite state machines, §4.1) on the parameterised platform — "the
//! execution of application processes is guided with the properties of the
//! platform components" (§3.2) — and produces the **simulation log-file**
//! the profiling tool consumes.
//!
//! Semantics:
//!
//! * Every `«ApplicationProcess»` instance runs its component's state
//!   machine with run-to-completion steps and a private input queue.
//! * Each process executes on the processing element its group is mapped
//!   to; steps on one element are serialised and picked by process
//!   priority. Ungrouped/unmapped processes form the **environment**: they
//!   execute in zero time and contribute zero cycles (the `Environment`
//!   row of Table 4), but their signals are counted.
//! * Step cost = dispatch overhead + action-language weight + `Compute`
//!   workload priced by the [`tut_platform::CostModel`] for the element's
//!   kind, converted to time by the element's clock frequency.
//! * Signals between processes on different elements travel through the
//!   HIBI network ([`tut_hibi`]), paying arbitration, queueing, burst and
//!   bridge costs; same-element signals use the local queue.
//!
//! # Example
//!
//! See `examples/quickstart.rs` at the repository root, or the `tutmac`
//! crate for the full paper case study.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod calendar;
pub mod config;
pub mod engine;
pub mod error;
pub mod intern;
pub mod log;
mod parallel;
pub mod report;

pub use calendar::{CalendarQueue, EventQueue, QueueKind};
pub use config::{SimConfig, TraceOptions, Watchdog};
pub use engine::{setup_diagnostic, Simulation};
pub use error::{SimError, E_PARAM_RANGE};
pub use intern::{Interner, Sym};
pub use log::{LogRecord, RecordRef, SimLog};
pub use parallel::{ParallelPlan, ParallelStats};
pub use report::{FaultTally, SimReport};
