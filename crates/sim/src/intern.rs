//! Per-simulation string interning for the log hot path.
//!
//! Every name a [`crate::SimLog`] record carries (process, state, signal,
//! trigger, counter…) is drawn from a small, run-stable vocabulary, so the
//! engine resolves each name **once** — at build time or on the first
//! occurrence — to a [`Sym`] and the hot path moves only `Copy` ids.
//! Because the log's field escaping ([`crate::log`] rules) is a pure
//! function of the string, the interner also caches the escaped form, so
//! rendering the log text never re-escapes a name.

use std::collections::HashMap;

/// An interned string id, valid for the [`Interner`] that produced it.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct Sym(u32);

impl Sym {
    /// The index of this symbol in its interner's table.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// One interned entry: the raw text plus its cached escaped form (only
/// stored when escaping changes the text).
#[derive(Clone, Debug)]
struct Entry {
    raw: Box<str>,
    /// `None` when the raw text is its own escaped form.
    escaped: Option<Box<str>>,
}

/// A append-only string table: `intern` is idempotent, `resolve` is an
/// array index.
#[derive(Clone, Debug, Default)]
pub struct Interner {
    map: HashMap<Box<str>, Sym>,
    entries: Vec<Entry>,
}

impl Interner {
    /// An empty interner.
    pub fn new() -> Interner {
        Interner::default()
    }

    /// Interns `text`, returning the existing id when already present.
    ///
    /// # Panics
    ///
    /// Panics after `u32::MAX` distinct strings (unreachable in practice:
    /// the vocabulary is the model's name set).
    pub fn intern(&mut self, text: &str) -> Sym {
        if let Some(&sym) = self.map.get(text) {
            return sym;
        }
        let sym = Sym(u32::try_from(self.entries.len()).expect("interner overflow"));
        let escaped = crate::log::escape_field(text);
        self.entries.push(Entry {
            raw: text.into(),
            escaped: if escaped == text {
                None
            } else {
                Some(escaped.into_boxed_str())
            },
        });
        self.map.insert(text.into(), sym);
        sym
    }

    /// The raw text of `sym`.
    ///
    /// # Panics
    ///
    /// Panics if `sym` came from a different interner with more entries.
    #[inline]
    pub fn resolve(&self, sym: Sym) -> &str {
        &self.entries[sym.index()].raw
    }

    /// The escaped log-field form of `sym` (cached at intern time).
    ///
    /// # Panics
    ///
    /// Panics if `sym` came from a different interner with more entries.
    #[inline]
    pub fn escaped(&self, sym: Sym) -> &str {
        let entry = &self.entries[sym.index()];
        entry.escaped.as_deref().unwrap_or(&entry.raw)
    }

    /// Looks up an already interned string without inserting.
    pub fn lookup(&self, text: &str) -> Option<Sym> {
        self.map.get(text).copied()
    }

    /// Number of distinct interned strings.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when nothing has been interned.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent() {
        let mut i = Interner::new();
        let a = i.intern("rca");
        let b = i.intern("mng");
        assert_ne!(a, b);
        assert_eq!(i.intern("rca"), a);
        assert_eq!(i.len(), 2);
        assert_eq!(i.resolve(a), "rca");
        assert_eq!(i.lookup("mng"), Some(b));
        assert_eq!(i.lookup("nope"), None);
    }

    #[test]
    fn escaped_form_is_cached() {
        let mut i = Interner::new();
        let plain = i.intern("plain");
        let spaced = i.intern("two words");
        let empty = i.intern("");
        assert_eq!(i.escaped(plain), "plain");
        assert_eq!(i.escaped(spaced), "two\\swords");
        assert_eq!(i.escaped(empty), "\\e");
    }
}
