//! The discrete-event simulation engine.

use std::collections::{HashMap, VecDeque};
use std::sync::Arc;

use tut_faults::{FaultModel, NoFaults, TransferVerdict};
use tut_hibi::topology::{
    Arbitration as HibiArbitration, BridgeConfig, NetworkBuilder, SegmentConfig, WrapperConfig,
};
use tut_hibi::{AgentId, Network};
use tut_platform::{PeDescriptor, PeKind};
use tut_profile::platform::{Arbitration, ComponentKind};
use tut_profile::SystemModel;
use tut_trace::perf::{self, Prof};
use tut_trace::{Clock, NoopSink, TraceSink};
use tut_uml::action::{self, Effect, Env, Scope, Statement};
use tut_uml::ids::{ClassId, PropertyId, SignalId, StateId, StateMachineId};
use tut_uml::instances::{InstanceIndex, InstanceTree, RoutingTable};
use tut_uml::statemachine::{StateMachine, Trigger};
use tut_uml::Value;

use crate::calendar::EventQueue;
use crate::config::SimConfig;
use crate::error::SimError;
use crate::intern::Sym;
use crate::log::SimLog;
use crate::parallel::LpCtx;
use crate::report::{FaultTally, PeStats, ProcessStats, SimReport};

/// Index of a processing element inside a [`Simulation`].
pub(crate) type PeIndex = usize;
/// Index of a process inside a [`Simulation`].
pub(crate) type ProcIndex = usize;

#[derive(Clone, Debug)]
enum QueueEntry {
    /// Pseudo-entry that runs the initial step (entry actions of the
    /// initial state and completion transitions).
    Start,
    Signal {
        signal: SignalId,
        values: Vec<Value>,
    },
    Timer {
        /// Index into the machine's [`MachineRt::timers`] table.
        slot: u32,
    },
}

/// Build-time resolution of one timer of a state machine: its name (what
/// `SetTimer`/`CancelTimer` effects carry) and its interned
/// `timer:<name>` trigger label.
#[derive(Debug)]
struct TimerRt {
    name: String,
    label: Sym,
}

/// Per-class runtime image of a state machine, built once in
/// [`Simulation::from_system`] and shared (via `Arc`) by every process
/// instance of the class. Holding the machine here — with its state
/// names and timer vocabulary resolved to interned symbols and slots —
/// is what lets the per-step hot path run without cloning the machine
/// or touching a string-keyed map.
#[derive(Debug)]
struct MachineRt {
    machine: StateMachine,
    /// Interned state names, indexed by `StateId::index()`.
    state_syms: Vec<Sym>,
    /// Timer slots in discovery order; `QueueEntry::Timer` and
    /// `EventKind::TimerFired` carry indexes into this table.
    timers: Vec<TimerRt>,
}

impl MachineRt {
    /// Resolves a timer name (from a `SetTimer`/`CancelTimer` effect) to
    /// its slot. Every name an executing machine can produce was
    /// discovered statically at build time.
    fn timer_slot(&self, name: &str) -> usize {
        self.timers
            .iter()
            .position(|t| t.name == name)
            .expect("timers are discovered statically from the machine")
    }
}

/// Collects timer names referenced by `SetTimer`/`CancelTimer`
/// statements, recursing into `If`/`While` bodies.
fn collect_timer_names(statements: &[Statement], names: &mut Vec<String>) {
    for statement in statements {
        match statement {
            Statement::SetTimer { name, .. } | Statement::CancelTimer { name }
                if !names.iter().any(|n| n == name) =>
            {
                names.push(name.clone());
            }
            Statement::If {
                then_branch,
                else_branch,
                ..
            } => {
                collect_timer_names(then_branch, names);
                collect_timer_names(else_branch, names);
            }
            Statement::While { body, .. } => collect_timer_names(body, names),
            _ => {}
        }
    }
}

/// The full timer vocabulary of a machine: timer triggers plus every
/// timer statement in entry actions and transition actions.
fn machine_timer_names(machine: &StateMachine) -> Vec<String> {
    let mut names = Vec::new();
    for (_, state) in machine.states() {
        collect_timer_names(state.entry(), &mut names);
    }
    for (_, transition) in machine.transitions() {
        if let Trigger::Timer(name) = transition.trigger() {
            if !names.iter().any(|n| n == name) {
                names.push(name.clone());
            }
        }
        collect_timer_names(transition.actions(), &mut names);
    }
    names
}

#[derive(Clone, Debug)]
pub(crate) struct ProcessRt {
    /// Index into the instance tree.
    instance: InstanceIndex,
    /// Dotted display name (log identity).
    pub(crate) name: String,
    /// Interned `name`, stamped on every record this process emits.
    name_sym: Sym,
    class: ClassId,
    /// Shared per-class machine image (see [`MachineRt`]).
    machine: Arc<MachineRt>,
    state: StateId,
    vars: Scope,
    /// Pending inputs with their enqueue timestamps (for response-time
    /// accounting).
    queue: VecDeque<(u64, QueueEntry)>,
    pub(crate) pe: PeIndex,
    priority: i64,
    /// Monotonic generation per timer slot; a fired event with a stale
    /// generation was cancelled or re-armed.
    timer_gens: Vec<u64>,
    /// Per-process decision counter salting the fault model's keyed
    /// draws: `(process, nonce)` pairs are unique and advance in the
    /// process's deterministic step order, so serial and parallel
    /// execution derive identical salts.
    fault_nonce: u64,
    pub(crate) stats: ProcessStats,
}

#[derive(Clone, Debug)]
pub(crate) struct PeRt {
    pub(crate) descriptor: PeDescriptor,
    /// HIBI agent of this element, if attached to the network.
    pub(crate) agent: Option<AgentId>,
    /// The process that ran last (for context-switch accounting).
    last_process: Option<ProcIndex>,
    /// Round-robin pointer for the RoundRobin policy.
    rr_next: ProcIndex,
    free_at_ns: u64,
    pub(crate) busy_ns: u64,
    pub(crate) busy_cycles: u64,
    pub(crate) is_env: bool,
}

#[derive(Clone, PartialEq, Eq, Debug)]
pub(crate) enum EventKind {
    Deliver {
        target: ProcIndex,
        entry_kind: DeliverKind,
    },
    TimerFired {
        target: ProcIndex,
        /// Index into the target machine's timer table.
        slot: u32,
        generation: u64,
    },
    /// The processing element finished a step; dispatch the next ready
    /// process.
    PeFree { pe: PeIndex },
}

impl EventKind {
    /// The logical process this event belongs to: the target process's
    /// LP for deliveries/timers, the element's LP for `PeFree`. Every
    /// event kind is handled entirely inside one LP.
    pub(crate) fn home_lp(&self, lp_of_proc: &[u32], lp_of_pe: &[u32]) -> u32 {
        match self {
            EventKind::Deliver { target, .. } | EventKind::TimerFired { target, .. } => {
                lp_of_proc[*target]
            }
            EventKind::PeFree { pe } => lp_of_pe[*pe],
        }
    }
}

#[derive(Clone, PartialEq, Eq, Debug)]
pub(crate) enum DeliverKind {
    Start,
    Signal {
        signal: SignalId,
        values: Vec<Value>,
        /// Sending process; its name is resolved when the delivery is
        /// logged.
        sender: ProcIndex,
        bytes: u64,
        sent_at_ns: u64,
    },
}

/// A runnable co-simulation built from a [`SystemModel`].
///
/// `Clone` is cheap-ish (per-class machines are shared via `Arc`) and
/// exists for the parallel kernel, which clones the built simulation
/// once per logical process and once as a pristine serial-fallback copy.
#[derive(Clone)]
pub struct Simulation {
    system: Arc<SystemModel>,
    pub(crate) config: SimConfig,
    pub(crate) routing: Arc<RoutingTable>,
    pub(crate) processes: Vec<ProcessRt>,
    /// Instance index -> process index.
    pub(crate) by_instance: Arc<HashMap<InstanceIndex, ProcIndex>>,
    pub(crate) pes: Vec<PeRt>,
    /// Processes mapped to each element, ascending process-index order
    /// (the scheduler's scan set — no per-dispatch allocation).
    pe_procs: Arc<Vec<Vec<ProcIndex>>>,
    pub(crate) network: Network,
    pub(crate) events: EventQueue<EventKind>,
    pub(crate) next_seq: u64,
    pub(crate) now_ns: u64,
    pub(crate) steps: u64,
    pub(crate) log: SimLog,
    /// Interned signal names, indexed by `SignalId::index()`.
    signal_syms: Vec<Sym>,
    /// Interned `start` trigger label.
    start_sym: Sym,
    /// Interned `drop` (trigger label of discarded inputs and fault
    /// kind of dropped transfers).
    drop_sym: Sym,
    /// Interned `corrupt` fault kind.
    corrupt_sym: Sym,
    /// Interned `unroutable` fault kind.
    unroutable_sym: Sym,
    /// Recycled parameter scope handed to each step's `Env`; cleared
    /// between steps, keeping its allocation.
    scratch_params: Scope,
    /// Injected-fault totals (corruptions/drops; unroutable transfers
    /// are tallied by the network itself).
    pub(crate) fault_tally: FaultTally,
    /// Last simulated time a run-to-completion step executed on a
    /// non-environment element (the watchdog's quiescence reference).
    last_useful_ns: u64,
    /// Host self-profiler labels, one per process (`proc/<name>`), filled
    /// in the run prologue only when profiling is active so the hot path
    /// moves `Copy` ids. Empty in unprofiled runs.
    proc_perf: Vec<perf::Label>,
    /// When this simulation is one logical process of a parallel run,
    /// the LP context diverts [`Simulation::schedule`] into the LP's
    /// window queue / export list. `None` in serial runs.
    pub(crate) lp: Option<Box<LpCtx>>,
}

/// Runs the simulation-setup lowering as a dry run and returns the
/// diagnostic it would report, if any: errors with a stable code
/// (today only `E0410` parameter-range findings) become element-
/// attributed diagnostics, everything else is a structural condition
/// the model rules already cover and is suppressed. The caller attaches
/// document spans through its `SpanIndex`; both the cold `repro check`
/// pipeline and the incremental query engine share this function so
/// their findings are byte-identical.
pub fn setup_diagnostic(system: &SystemModel, config: SimConfig) -> Option<tut_diag::Diagnostic> {
    match Simulation::from_system(system, config) {
        Ok(_) => None,
        Err(e) => e.code().map(|code| {
            let mut d = tut_diag::Diagnostic::error(code, e.to_string());
            if let Some(element) = e.element() {
                d = d.with_element(element);
            }
            d
        }),
    }
}

impl Simulation {
    /// Builds a simulation from a validated system model.
    ///
    /// # Errors
    ///
    /// * [`SimError::NoApplication`] when no class carries
    ///   `«Application»`.
    /// * [`SimError::MissingBehaviour`] when an instantiated functional
    ///   component has no state machine.
    /// * [`SimError::BadModel`] / [`SimError::Network`] for structural
    ///   problems.
    pub fn from_system(system: &SystemModel, config: SimConfig) -> Result<Simulation, SimError> {
        let app = system.application();
        let top = app.top().ok_or(SimError::NoApplication)?;
        let tree = InstanceTree::build(&system.model, top)
            .map_err(|e| SimError::BadModel(e.to_string()))?;
        let routing = RoutingTable::build(&system.model, &tree);

        // ---- Platform: processing elements + HIBI network --------------
        let platform = system.platform();
        let mut pes: Vec<PeRt> = Vec::new();
        // PE 0 is the environment element: infinitely fast, not on the bus.
        pes.push(PeRt {
            descriptor: PeDescriptor::new("environment", PeKind::GeneralCpu, 1_000_000),
            agent: None,
            last_process: None,
            rr_next: 0,
            free_at_ns: 0,
            busy_ns: 0,
            busy_cycles: 0,
            is_env: true,
        });

        let mut builder = NetworkBuilder::new();
        let mut segment_ids = HashMap::new();
        for segment in platform.segments() {
            let id = builder.add_segment(
                segment.name.clone(),
                SegmentConfig {
                    data_width_bits: param_u32(
                        segment.part,
                        &segment.name,
                        "DataWidth",
                        segment.data_width,
                    )?,
                    frequency_mhz: param_u32(
                        segment.part,
                        &segment.name,
                        "Frequency",
                        segment.frequency,
                    )?,
                    arbitration: match segment.arbitration {
                        Arbitration::Priority => HibiArbitration::Priority,
                        Arbitration::RoundRobin => HibiArbitration::RoundRobin,
                        Arbitration::Tdma => HibiArbitration::Tdma,
                    },
                    tdma_slots: param_u32(
                        segment.part,
                        &segment.name,
                        "TdmaSlots",
                        segment.tdma_slots,
                    )?,
                },
            );
            segment_ids.insert(segment.part, id);
        }
        let attachments = platform.attachments();
        let mut pe_index_by_part: HashMap<PropertyId, PeIndex> = HashMap::new();
        let mut next_auto_address = 0x1000u64;
        for info in platform.instances() {
            let kind = match info.kind {
                ComponentKind::General => PeKind::GeneralCpu,
                ComponentKind::Dsp => PeKind::DspCpu,
                ComponentKind::HwAccelerator => PeKind::HwAccelerator,
            };
            let mut descriptor = PeDescriptor::new(
                info.name.clone(),
                kind,
                param_u32(info.part, &info.name, "Frequency", info.frequency)?,
            );
            descriptor.int_memory_bytes = info.int_memory.max(0) as u64;
            descriptor.priority = info.priority;
            descriptor.area = info.area.unwrap_or(1.0);
            descriptor.power = info.power.unwrap_or(0.1);
            let mut agent = None;
            if let Some(a) = attachments.iter().find(|a| a.pe == info.part) {
                if let Some(&segment) = segment_ids.get(&a.segment) {
                    let address = match a.wrapper.address {
                        Some(x) => param_u64(a.wrapper.part, &a.wrapper.name, "Address", x)?,
                        None => {
                            next_auto_address += 1;
                            next_auto_address
                        }
                    };
                    agent = Some(
                        builder.add_agent(
                            segment,
                            WrapperConfig {
                                address,
                                buffer_size: param_u32(
                                    a.wrapper.part,
                                    &a.wrapper.name,
                                    "BufferSize",
                                    a.wrapper.buffer_size,
                                )?,
                                max_time: param_u32(
                                    a.wrapper.part,
                                    &a.wrapper.name,
                                    "MaxTime",
                                    a.wrapper.max_time,
                                )?
                                .max(1),
                            },
                        ),
                    );
                }
            }
            pe_index_by_part.insert(info.part, pes.len());
            pes.push(PeRt {
                descriptor,
                agent,
                last_process: None,
                rr_next: 0,
                free_at_ns: 0,
                busy_ns: 0,
                busy_cycles: 0,
                is_env: false,
            });
        }
        for bridge in platform.bridges() {
            if let (Some(&a), Some(&b)) = (segment_ids.get(&bridge.a), segment_ids.get(&bridge.b)) {
                builder.add_bridge(a, b, BridgeConfig::default());
            }
        }
        let network = builder.build()?;

        // ---- Processes --------------------------------------------------
        // The per-simulation symbol table: every name the hot path will
        // log is interned here, at build time.
        let mut log = SimLog::new();
        let signal_syms: Vec<Sym> = system
            .model
            .signals()
            .map(|(_, signal)| log.intern(signal.name()))
            .collect();
        let start_sym = log.intern("start");
        let drop_sym = log.intern("drop");
        let corrupt_sym = log.intern("corrupt");
        let unroutable_sym = log.intern("unroutable");

        let mapping = system.mapping();
        let mut processes: Vec<ProcessRt> = Vec::new();
        let mut by_instance = HashMap::new();
        let mut machines: HashMap<StateMachineId, Arc<MachineRt>> = HashMap::new();
        for instance in tree.active_instances(&system.model) {
            let node = tree.node(instance);
            let class = node.class;
            let sm =
                system
                    .model
                    .class(class)
                    .behavior()
                    .ok_or_else(|| SimError::MissingBehaviour {
                        class: system.model.class(class).name().to_owned(),
                    })?;
            let machine_rt = match machines.get(&sm) {
                Some(rt) => Arc::clone(rt),
                None => {
                    // One clone per class — the per-step clone this
                    // replaces used to run once per executed step.
                    let machine = system.model.state_machine(sm).clone();
                    let mut state_syms = Vec::with_capacity(machine.state_count());
                    for (_, state) in machine.states() {
                        state_syms.push(log.intern(state.name()));
                    }
                    let timers = machine_timer_names(&machine)
                        .into_iter()
                        .map(|name| {
                            let label = log.intern(&format!("timer:{name}"));
                            TimerRt { name, label }
                        })
                        .collect();
                    let rt = Arc::new(MachineRt {
                        machine,
                        state_syms,
                        timers,
                    });
                    machines.insert(sm, Arc::clone(&rt));
                    rt
                }
            };
            let initial = machine_rt.machine.initial().ok_or_else(|| {
                SimError::BadModel(format!(
                    "state machine `{}` has no initial state",
                    machine_rt.machine.name()
                ))
            })?;
            let part = node.path.last().copied();
            let (pe, priority) = match part {
                Some(part) => {
                    let info = app.process(part);
                    let pe = mapping
                        .instance_of_process(part)
                        .and_then(|platform_part| pe_index_by_part.get(&platform_part).copied())
                        .unwrap_or(0);
                    (pe, info.as_ref().map(|i| i.priority).unwrap_or(0))
                }
                None => (0, 0),
            };
            let mut vars = Scope::new();
            for v in machine_rt.machine.variables() {
                vars.set(&v.name, v.init.clone());
            }
            let name = tree.display_name(&system.model, instance);
            let name_sym = log.intern(&name);
            let timer_gens = vec![0; machine_rt.timers.len()];
            by_instance.insert(instance, processes.len());
            processes.push(ProcessRt {
                instance,
                name,
                name_sym,
                class,
                machine: machine_rt,
                state: initial,
                vars,
                queue: VecDeque::new(),
                pe,
                priority,
                timer_gens,
                fault_nonce: 0,
                stats: ProcessStats::default(),
            });
        }
        if processes.is_empty() {
            return Err(SimError::BadModel(
                "application has no active process instances".into(),
            ));
        }
        let mut pe_procs: Vec<Vec<ProcIndex>> = vec![Vec::new(); pes.len()];
        for (index, process) in processes.iter().enumerate() {
            pe_procs[process.pe].push(index);
        }

        let events = EventQueue::new(config.queue);
        let mut sim = Simulation {
            system: Arc::new(system.clone()),
            config,
            routing: Arc::new(routing),
            processes,
            by_instance: Arc::new(by_instance),
            pes,
            pe_procs: Arc::new(pe_procs),
            network,
            events,
            next_seq: 0,
            now_ns: 0,
            steps: 0,
            log,
            signal_syms,
            start_sym,
            drop_sym,
            corrupt_sym,
            unroutable_sym,
            scratch_params: Scope::new(),
            fault_tally: FaultTally::default(),
            last_useful_ns: 0,
            proc_perf: Vec::new(),
            lp: None,
        };
        // Every process performs its Start step at t=0.
        for index in 0..sim.processes.len() {
            sim.processes[index].queue.push_back((0, QueueEntry::Start));
            sim.schedule(
                0,
                EventKind::Deliver {
                    target: index,
                    entry_kind: DeliverKind::Start,
                },
            );
        }
        Ok(sim)
    }

    fn schedule(&mut self, time_ns: u64, kind: EventKind) {
        // Inside a parallel run, creations go through the LP context:
        // same-LP events join the window queue under a tentative key,
        // cross-LP events become exports. The barrier coordinator later
        // assigns the exact global sequence numbers.
        if let Some(lp) = self.lp.as_deref_mut() {
            lp.schedule(time_ns, kind);
            return;
        }
        let seq = self.next_seq;
        self.next_seq += 1;
        self.events.push(time_ns, seq, kind);
    }

    /// The next fault-decision salt for `proc_index`: unique per
    /// decision, advancing in the process's deterministic step order.
    fn next_fault_salt(&mut self, proc_index: ProcIndex) -> u64 {
        let nonce = &mut self.processes[proc_index].fault_nonce;
        let salt = ((proc_index as u64) << 40) ^ *nonce;
        *nonce += 1;
        salt
    }

    /// Runs to completion (event queue drained, time horizon passed, or
    /// step bound hit) and returns the report.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Runtime`] when an action-language error occurs
    /// inside a process step.
    pub fn run(self) -> Result<SimReport, SimError> {
        self.run_with(&mut NoopSink)
    }

    /// [`Simulation::run`] with tracing: run-to-completion steps become
    /// spans on per-element `pe/<name>` tracks, bus reservations become
    /// spans on per-segment `hibi/<name>` tracks, signal latencies feed
    /// the `sim.signal_latency_ns` histogram, and the event-queue depth
    /// is sampled on the `sim/events` track (see
    /// [`crate::config::TraceOptions`]).
    ///
    /// Tracing is observation only: the returned report and log are
    /// byte-identical to an untraced [`Simulation::run`].
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Runtime`] when an action-language error occurs
    /// inside a process step.
    pub fn run_with<T: TraceSink>(self, tracer: &mut T) -> Result<SimReport, SimError> {
        // `NoFaults` short-circuits every hook, so this monomorphises to
        // the fault-free engine.
        self.run_with_faults(&mut NoFaults, tracer)
    }

    /// [`Simulation::run_with`] plus deterministic fault injection: the
    /// [`FaultModel`] decides, in event order, whether each HIBI-borne
    /// signal is delivered intact, corrupted, or dropped, whether timers
    /// jitter, and whether a processing element is inside an outage
    /// window.
    ///
    /// With an inactive model (e.g. [`NoFaults`] or a zero-rate
    /// [`tut_faults::FaultPlan`]) every hook short-circuits without
    /// drawing randomness, so the log and report are byte-identical to
    /// [`Simulation::run`].
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Runtime`] when an action-language error occurs
    /// inside a process step, and [`SimError::WatchdogExpired`] when an
    /// armed [`crate::config::Watchdog`] limit fires.
    pub fn run_with_faults<F: FaultModel, T: TraceSink>(
        self,
        faults: &mut F,
        tracer: &mut T,
    ) -> Result<SimReport, SimError> {
        // `NoProf` statically removes every self-profiling site.
        self.run_with_faults_prof(faults, tracer, perf::NoProf)
    }

    /// [`Simulation::run_with_faults`] plus host self-profiling: each
    /// run-to-completion step is attributed to its process
    /// (`proc/<name>` frames) nested under the event kind that triggered
    /// it (`sim.event.deliver` / `sim.event.timer` / `sim.event.pe_free`),
    /// all under one `sim.run` frame — drain with
    /// [`tut_trace::perf::drain`].
    ///
    /// Host-time observation never perturbs simulated behaviour: a
    /// profiled run's log and report are byte-identical to an unprofiled
    /// run (pinned by `tests/profiler.rs`). With [`perf::NoProf`] the
    /// instrumentation compiles away entirely.
    ///
    /// # Errors
    ///
    /// Same contract as [`Simulation::run_with_faults`].
    pub fn run_with_faults_prof<F: FaultModel, T: TraceSink, P: Prof>(
        mut self,
        faults: &mut F,
        tracer: &mut T,
        prof: P,
    ) -> Result<SimReport, SimError> {
        // Self-profiling prologue: resolve per-process and per-event-kind
        // labels once so the hot loop moves only `Copy` ids.
        let kind_labels = if P::ACTIVE && prof.enabled() {
            for index in 0..self.processes.len() {
                let name = format!("proc/{}", self.processes[index].name);
                self.proc_perf.push(perf::label(&name));
            }
            Some([
                perf::label("sim.event.deliver"),
                perf::label("sim.event.timer"),
                perf::label("sim.event.pe_free"),
            ])
        } else {
            None
        };
        let _run_span = prof.enter_named("sim.run");
        let queue_track = tracer.track("sim/events", Clock::Sim);
        let watchdog = self.config.watchdog;
        let mut events_popped: u64 = 0;
        while let Some((time_ns, _seq, kind)) = self.events.pop() {
            if time_ns > self.config.max_time_ns || self.steps >= self.config.max_steps {
                break;
            }
            events_popped += 1;
            if watchdog.max_events > 0 && events_popped > watchdog.max_events {
                return Err(self.watchdog_expired(time_ns, events_popped, "event-budget"));
            }
            if watchdog.quiescence_ns > 0
                && time_ns.saturating_sub(self.last_useful_ns) > watchdog.quiescence_ns
            {
                return Err(self.watchdog_expired(time_ns, events_popped, "quiescence"));
            }
            self.now_ns = time_ns;
            if tracer.enabled() && self.config.trace.queue_depth {
                let depth = self.events.len() as f64;
                tracer.counter(queue_track, "queue_depth", self.now_ns, depth);
                tracer.gauge("sim.event_queue_depth", depth);
            }
            self.handle_event(kind, faults, tracer, prof, kind_labels)?;
        }
        tracer.add("sim.steps", self.steps);
        Ok(self.into_report())
    }

    /// Processes one popped event at `self.now_ns` — the dispatch shared
    /// by the serial main loop and the parallel kernel's per-LP window
    /// executor.
    fn handle_event<F: FaultModel, T: TraceSink, P: Prof>(
        &mut self,
        kind: EventKind,
        faults: &mut F,
        tracer: &mut T,
        prof: P,
        kind_labels: Option<[perf::Label; 3]>,
    ) -> Result<(), SimError> {
        match kind {
            EventKind::Deliver { target, entry_kind } => {
                let _kind_span = kind_labels.map(|l| prof.enter(l[0]));
                match entry_kind {
                    DeliverKind::Start => {
                        // Start entries were enqueued at construction.
                    }
                    DeliverKind::Signal {
                        signal,
                        values,
                        sender,
                        bytes,
                        sent_at_ns,
                    } => {
                        let latency_ns = self.now_ns.saturating_sub(sent_at_ns);
                        tracer.observe("sim.signal_latency_ns", latency_ns);
                        tracer.add("sim.signals_delivered", 1);
                        let sender_sym = self.processes[sender].name_sym;
                        let receiver_sym = self.processes[target].name_sym;
                        let signal_sym = self.signal_syms[signal.index()];
                        let now = self.now_ns;
                        self.log.push_sig(
                            now,
                            sender_sym,
                            receiver_sym,
                            signal_sym,
                            bytes,
                            latency_ns,
                        );
                        self.processes[target].stats.signals_received += 1;
                        self.processes[target]
                            .queue
                            .push_back((now, QueueEntry::Signal { signal, values }));
                    }
                }
                let pe = self.processes[target].pe;
                self.try_dispatch(pe, faults, tracer, prof)?;
            }
            EventKind::TimerFired {
                target,
                slot,
                generation,
            } => {
                let _kind_span = kind_labels.map(|l| prof.enter(l[1]));
                let current = self.processes[target].timer_gens[slot as usize];
                if current == generation {
                    let now = self.now_ns;
                    self.processes[target]
                        .queue
                        .push_back((now, QueueEntry::Timer { slot }));
                    let pe = self.processes[target].pe;
                    self.try_dispatch(pe, faults, tracer, prof)?;
                }
            }
            EventKind::PeFree { pe } => {
                let _kind_span = kind_labels.map(|l| prof.enter(l[2]));
                self.try_dispatch(pe, faults, tracer, prof)?;
            }
        }
        Ok(())
    }

    /// Pops and processes this logical process's next queued event,
    /// recording per-event bookkeeping for the barrier coordinator's
    /// replay. Returns `false` when the queue is empty. The caller (the
    /// parallel kernel's shard executor) decides *whether* the next
    /// event may run — it interleaves the LPs of one shard in global
    /// `(time, key)` order and enforces the safe-window limit.
    /// Serial run that also tallies the events processed and how many
    /// fixed `lookahead_ns` safe-windows the event stream spans — the
    /// single-worker path of the parallel kernel, whose one shard would
    /// own every LP and therefore degenerates to the serial engine
    /// executing a single whole-horizon window.
    ///
    /// Callers must have checked that no watchdog is armed.
    pub(crate) fn run_counting_windows<F: FaultModel>(
        mut self,
        faults: &mut F,
        lookahead_ns: u64,
    ) -> Result<(SimReport, u64, u64), SimError> {
        let mut events: u64 = 0;
        let mut fixed_windows: u64 = 0;
        let mut fixed_end: u64 = 0;
        while let Some((time_ns, _seq, kind)) = self.events.pop() {
            if time_ns > self.config.max_time_ns || self.steps >= self.config.max_steps {
                break;
            }
            events += 1;
            if time_ns >= fixed_end {
                fixed_windows += 1;
                fixed_end = time_ns.saturating_add(lookahead_ns);
            }
            self.now_ns = time_ns;
            self.handle_event(kind, faults, &mut NoopSink, perf::NoProf, None)?;
        }
        Ok((self.into_report(), events, fixed_windows))
    }

    pub(crate) fn lp_step<F: FaultModel>(&mut self, faults: &mut F) -> Result<bool, SimError> {
        let (time_ns, kind, children_mark) = {
            let lp = self.lp.as_mut().expect("lp_step needs an LP context");
            let Some((time_ns, kind)) = lp.pop_next() else {
                return Ok(false);
            };
            (time_ns, kind, lp.creations())
        };
        let log_mark = self.log.records_len();
        let steps_mark = self.steps;
        self.now_ns = time_ns;
        self.handle_event(kind, faults, &mut NoopSink, perf::NoProf, None)?;
        let log_records = (self.log.records_len() - log_mark) as u32;
        let steps = (self.steps - steps_mark) as u32;
        self.lp.as_mut().expect("lp context").record_processed(
            time_ns,
            children_mark,
            log_records,
            steps,
        );
        Ok(true)
    }

    /// Runs one step on `pe` if it is free, not in an outage window, and
    /// a process is ready.
    fn try_dispatch<F: FaultModel, T: TraceSink, P: Prof>(
        &mut self,
        pe: PeIndex,
        faults: &mut F,
        tracer: &mut T,
        prof: P,
    ) -> Result<(), SimError> {
        if self.pes[pe].free_at_ns > self.now_ns {
            return Ok(());
        }
        if faults.is_active() && !self.pes[pe].is_env {
            if let Some(until_ns) = faults.outage_until(&self.pes[pe].descriptor.name, self.now_ns)
            {
                // Stalled element: park the dispatch. A finite outage
                // retries when it lifts; a permanent one never runs again
                // (the watchdog turns that into an error).
                if until_ns != u64::MAX && until_ns > self.now_ns {
                    self.schedule(until_ns, EventKind::PeFree { pe });
                }
                return Ok(());
            }
        }
        // Scan only this element's (static, ascending) process list.
        let chosen = match self.config.scheduler.policy {
            // Highest priority first; ties broken by lowest process
            // index for determinism (strict-max scan over an ascending
            // list).
            crate::config::SchedPolicy::Priority => {
                let mut best: Option<ProcIndex> = None;
                for &index in &self.pe_procs[pe] {
                    if self.processes[index].queue.is_empty() {
                        continue;
                    }
                    match best {
                        Some(b) if self.processes[index].priority <= self.processes[b].priority => {
                        }
                        _ => best = Some(index),
                    }
                }
                best
            }
            // Fair rotation: first ready process at or after the
            // rotating pointer, wrapping to the first ready.
            crate::config::SchedPolicy::RoundRobin => {
                let start = self.pes[pe].rr_next;
                let mut first: Option<ProcIndex> = None;
                let mut at_or_after: Option<ProcIndex> = None;
                for &index in &self.pe_procs[pe] {
                    if self.processes[index].queue.is_empty() {
                        continue;
                    }
                    if first.is_none() {
                        first = Some(index);
                    }
                    if at_or_after.is_none() && index >= start {
                        at_or_after = Some(index);
                        break;
                    }
                }
                at_or_after.or(first)
            }
        };
        let Some(proc_index) = chosen else {
            return Ok(());
        };
        if matches!(
            self.config.scheduler.policy,
            crate::config::SchedPolicy::RoundRobin
        ) {
            self.pes[pe].rr_next = proc_index + 1;
        }
        self.execute_step(proc_index, faults, tracer, prof)?;
        Ok(())
    }

    /// Executes one run-to-completion step of `proc_index` at `now_ns`.
    fn execute_step<F: FaultModel, T: TraceSink, P: Prof>(
        &mut self,
        proc_index: ProcIndex,
        faults: &mut F,
        tracer: &mut T,
        prof: P,
    ) -> Result<(), SimError> {
        // Per-process host self-time: the whole step (action execution,
        // cost accounting, effect dispatch) charges to `proc/<name>`.
        let _proc_span = if P::ACTIVE {
            self.proc_perf.get(proc_index).map(|&l| prof.enter(l))
        } else {
            None
        };
        self.steps += 1;
        let (enqueued_ns, entry) = self.processes[proc_index]
            .queue
            .pop_front()
            .expect("dispatch only picks non-empty queues");
        let pe_index = self.processes[proc_index].pe;
        let start_ns = self.now_ns;
        // Response-time accounting: delivery -> dispatch.
        let waited = start_ns.saturating_sub(enqueued_ns);
        {
            let stats = &mut self.processes[proc_index].stats;
            stats.queue_wait_ns += waited;
            stats.max_queue_wait_ns = stats.max_queue_wait_ns.max(waited);
        }

        // Shared per-class machine image: an `Arc` bump instead of the
        // per-step deep clone of the whole state machine this replaced.
        let machine_rt = Arc::clone(&self.processes[proc_index].machine);
        let machine = &machine_rt.machine;
        let name_sym = self.processes[proc_index].name_sym;
        let from_state = self.processes[proc_index].state;

        // The process's variables move into the step's environment (and
        // back out below); the parameter scope is recycled across steps.
        let mut env = Env {
            vars: std::mem::take(&mut self.processes[proc_index].vars),
            params: std::mem::take(&mut self.scratch_params),
        };
        let mut effects: Vec<Effect> = Vec::new();
        let mut weight: u64 = 0;
        let mut to_state = from_state;
        let mut fired = false;

        let trigger_sym;
        match entry {
            QueueEntry::Start => {
                trigger_sym = self.start_sym;
                fired = true;
                let state = machine.state(from_state);
                action::execute(state.entry(), &mut env, &mut effects, &mut weight)
                    .map_err(|e| self.runtime_error(proc_index, e))?;
            }
            QueueEntry::Signal { signal, values } => {
                trigger_sym = self.signal_syms[signal.index()];
                // Bind signal parameters positionally, moving the
                // delivered payload into the scope.
                let params = self.system.model.signal(signal).params();
                for (param, value) in params.iter().zip(values) {
                    env.params.set(&param.name, value);
                }
                let transition =
                    machine
                        .transitions_from(from_state)
                        .find(|(_, t)| match t.trigger() {
                            Trigger::Signal(s) if *s == signal => match t.guard() {
                                Some(guard) => {
                                    guard.eval(&env).map(|v| v.is_truthy()).unwrap_or(false)
                                }
                                None => true,
                            },
                            _ => false,
                        });
                if let Some((_, t)) = transition {
                    fired = true;
                    action::execute(t.actions(), &mut env, &mut effects, &mut weight)
                        .map_err(|e| self.runtime_error(proc_index, e))?;
                    to_state = t.target();
                    if to_state != from_state {
                        let state = machine.state(to_state);
                        action::execute(state.entry(), &mut env, &mut effects, &mut weight)
                            .map_err(|e| self.runtime_error(proc_index, e))?;
                    }
                }
            }
            QueueEntry::Timer { slot } => {
                let timer = &machine_rt.timers[slot as usize];
                trigger_sym = timer.label;
                let transition =
                    machine
                        .transitions_from(from_state)
                        .find(|(_, t)| match t.trigger() {
                            Trigger::Timer(n) if *n == timer.name => match t.guard() {
                                Some(guard) => {
                                    guard.eval(&env).map(|v| v.is_truthy()).unwrap_or(false)
                                }
                                None => true,
                            },
                            _ => false,
                        });
                if let Some((_, t)) = transition {
                    fired = true;
                    action::execute(t.actions(), &mut env, &mut effects, &mut weight)
                        .map_err(|e| self.runtime_error(proc_index, e))?;
                    to_state = t.target();
                    if to_state != from_state {
                        let state = machine.state(to_state);
                        action::execute(state.entry(), &mut env, &mut effects, &mut weight)
                            .map_err(|e| self.runtime_error(proc_index, e))?;
                    }
                }
            }
        }

        if !fired {
            // Discarded input: log and charge only the dispatch
            // overhead. The trigger symbol doubles as the dropped-input
            // identity (signal name, `timer:<name>`, or `start`).
            self.log.push_drop(start_ns, name_sym, trigger_sym);
            self.processes[proc_index].stats.drops += 1;
            let from_sym = machine_rt.state_syms[from_state.index()];
            let drop_sym = self.drop_sym;
            self.finish_step(
                proc_index, pe_index, start_ns, 0, from_sym, from_sym, drop_sym, tracer,
            );
            // Nothing fired, so the moved-out scopes go straight back.
            env.params.clear();
            self.processes[proc_index].vars = env.vars;
            self.scratch_params = env.params;
            return Ok(());
        }

        // Completion transitions fire within the same step, bounded to
        // avoid livelock on a mis-modelled machine.
        env.params.clear();
        for _ in 0..64 {
            let transition = machine
                .transitions_from(to_state)
                .find(|(_, t)| match t.trigger() {
                    Trigger::Completion => match t.guard() {
                        Some(guard) => guard.eval(&env).map(|v| v.is_truthy()).unwrap_or(false),
                        None => true,
                    },
                    _ => false,
                });
            let Some((_, t)) = transition else { break };
            action::execute(t.actions(), &mut env, &mut effects, &mut weight)
                .map_err(|e| self.runtime_error(proc_index, e))?;
            let next = t.target();
            if next != to_state {
                let state = machine.state(next);
                action::execute(state.entry(), &mut env, &mut effects, &mut weight)
                    .map_err(|e| self.runtime_error(proc_index, e))?;
                to_state = next;
            } else {
                to_state = next;
                break;
            }
        }

        // ---- Cost accounting -------------------------------------------
        let pe_kind = self.pes[pe_index].descriptor.kind;
        let cost_model = &self.config.cost_model;
        let mut cycles =
            cost_model.step_overhead_cycles(pe_kind) + cost_model.weight_cycles(pe_kind, weight);
        let mut send_bytes_total = 0u64;
        for effect in &effects {
            match effect {
                Effect::Compute { class, units } => {
                    cycles += cost_model.compute_cycles(pe_kind, *class, *units);
                }
                Effect::Send { values, .. } => {
                    let bytes: u64 = self.config.header_bytes
                        + values.iter().map(|v| v.size_bytes() as u64).sum::<u64>();
                    send_bytes_total += bytes;
                }
                _ => {}
            }
        }
        let mem_units = send_bytes_total / self.config.bytes_per_mem_unit.max(1);
        cycles += cost_model.compute_cycles(pe_kind, tut_uml::action::CostClass::Mem, mem_units);
        // RTOS context switch: charged when the element switches to a
        // different process than the one that ran last.
        if self.pes[pe_index].last_process != Some(proc_index) {
            if self.pes[pe_index].last_process.is_some() {
                cycles += self.config.scheduler.context_switch_cycles;
            }
            self.pes[pe_index].last_process = Some(proc_index);
        }
        if self.pes[pe_index].is_env {
            cycles = 0;
        }
        let duration_ns = self.pes[pe_index].descriptor.ns_for_cycles(cycles);
        let end_ns = start_ns + duration_ns;

        // Persist process state.
        self.processes[proc_index].vars = env.vars;
        self.processes[proc_index].state = to_state;

        // ---- Effects ---------------------------------------------------
        for effect in effects {
            match effect {
                Effect::Send {
                    port,
                    signal,
                    values,
                } => {
                    self.dispatch_send(proc_index, &port, signal, values, end_ns, faults, tracer);
                }
                Effect::SetTimer { name, duration } => {
                    let slot = machine_rt.timer_slot(&name);
                    let generation = {
                        let g = &mut self.processes[proc_index].timer_gens[slot];
                        *g += 1;
                        *g
                    };
                    let duration = if faults.is_active() {
                        let salt = self.next_fault_salt(proc_index);
                        duration + faults.timer_jitter_ns(start_ns, duration, salt)
                    } else {
                        duration
                    };
                    self.schedule(
                        end_ns + duration,
                        EventKind::TimerFired {
                            target: proc_index,
                            slot: slot as u32,
                            generation,
                        },
                    );
                }
                Effect::CancelTimer { name } => {
                    let slot = machine_rt.timer_slot(&name);
                    self.processes[proc_index].timer_gens[slot] += 1;
                }
                Effect::Log(message) => {
                    self.log.push_user(end_ns, name_sym, &message);
                }
                Effect::Count { counter, amount } => {
                    self.log.push_count(end_ns, name_sym, &counter, amount);
                }
                Effect::Compute { .. } => {}
            }
        }

        // Hand the (already cleared) parameter scope back for reuse.
        self.scratch_params = env.params;
        let from_sym = machine_rt.state_syms[from_state.index()];
        let to_sym = machine_rt.state_syms[to_state.index()];
        self.finish_step(
            proc_index,
            pe_index,
            start_ns,
            cycles,
            from_sym,
            to_sym,
            trigger_sym,
            tracer,
        );
        Ok(())
    }

    #[allow(clippy::too_many_arguments)]
    fn finish_step<T: TraceSink>(
        &mut self,
        proc_index: ProcIndex,
        pe_index: PeIndex,
        start_ns: u64,
        cycles: u64,
        from_state: Sym,
        to_state: Sym,
        trigger: Sym,
        tracer: &mut T,
    ) {
        let duration_ns = self.pes[pe_index].descriptor.ns_for_cycles(cycles);
        let end_ns = start_ns + duration_ns;
        if tracer.enabled() {
            let pe_name = &self.pes[pe_index].descriptor.name;
            if self.config.trace.step_spans {
                let track = tracer.track(&format!("pe/{pe_name}"), Clock::Sim);
                tracer.span(
                    track,
                    &format!(
                        "{} [{}]",
                        self.processes[proc_index].name,
                        self.log.resolve(trigger)
                    ),
                    start_ns,
                    duration_ns,
                );
            }
            tracer.observe("sim.step_duration_ns", duration_ns);
            tracer.add(&format!("pe.{pe_name}.busy_ns"), duration_ns);
        }
        self.log.push_exec(
            start_ns,
            self.processes[proc_index].name_sym,
            cycles,
            duration_ns,
            from_state,
            to_state,
            trigger,
        );
        let stats = &mut self.processes[proc_index].stats;
        stats.steps += 1;
        stats.cycles += cycles;
        stats.busy_ns += duration_ns;
        if !self.pes[pe_index].is_env {
            // Useful work for the watchdog's quiescence deadline.
            self.last_useful_ns = self.last_useful_ns.max(start_ns);
        }
        let pe = &mut self.pes[pe_index];
        pe.free_at_ns = end_ns;
        pe.busy_ns += duration_ns;
        pe.busy_cycles += cycles;
        self.schedule(end_ns, EventKind::PeFree { pe: pe_index });
    }

    /// Routes a sent signal to its receivers and schedules deliveries,
    /// applying the fault model's per-transfer verdict to HIBI-borne
    /// signals.
    #[allow(clippy::too_many_arguments)]
    fn dispatch_send<F: FaultModel, T: TraceSink>(
        &mut self,
        sender: ProcIndex,
        port_name: &str,
        signal: SignalId,
        values: Vec<Value>,
        send_time_ns: u64,
        faults: &mut F,
        tracer: &mut T,
    ) {
        let sender_instance = self.processes[sender].instance;
        let sender_class = self.processes[sender].class;
        let sender_sym = self.processes[sender].name_sym;
        let signal_sym = self.signal_syms[signal.index()];
        let Some(port) = self.system.model.find_port(sender_class, port_name) else {
            // Cold path: interning the port name here is fine.
            let port_sym = self.log.intern(port_name);
            self.log
                .push_lost(send_time_ns, sender_sym, port_sym, signal_sym);
            return;
        };
        let receivers: Vec<_> = self
            .routing
            .receivers(sender_instance, port, signal)
            .to_vec();
        if receivers.is_empty() {
            let port_sym = self.log.intern(port_name);
            self.log
                .push_lost(send_time_ns, sender_sym, port_sym, signal_sym);
            return;
        }
        let bytes: u64 =
            self.config.header_bytes + values.iter().map(|v| v.size_bytes() as u64).sum::<u64>();
        self.processes[sender].stats.signals_sent += receivers.len() as u64;
        self.processes[sender].stats.bytes_sent += bytes * receivers.len() as u64;
        // The payload moves into the last receiver's delivery; earlier
        // receivers (multicast) get clones.
        let last = receivers.len() - 1;
        let mut payload = Some(values);
        for (i, endpoint) in receivers.into_iter().enumerate() {
            let Some(&target) = self.by_instance.get(&endpoint.instance) else {
                continue;
            };
            let sender_pe = self.processes[sender].pe;
            let target_pe = self.processes[target].pe;
            let mut values = if i == last {
                payload
                    .take()
                    .expect("payload consumed before last receiver")
            } else {
                payload
                    .as_ref()
                    .expect("payload consumed before last receiver")
                    .clone()
            };
            let delivery_ns = if sender_pe == target_pe {
                send_time_ns + self.config.local_latency_ns
            } else if self.pes[sender_pe].is_env || self.pes[target_pe].is_env {
                send_time_ns + self.config.env_latency_ns
            } else {
                match (self.pes[sender_pe].agent, self.pes[target_pe].agent) {
                    (Some(from), Some(to)) => {
                        let result =
                            self.network
                                .transfer_with(from, to, bytes, send_time_ns, tracer);
                        if !result.routed {
                            // The network tallies the count; the log
                            // records which signal fell back.
                            self.log.push_fault(
                                send_time_ns,
                                sender_sym,
                                self.unroutable_sym,
                                signal_sym,
                            );
                        }
                        if faults.is_active() {
                            // Only HIBI-borne signals are subject to the
                            // channel fault process; local and environment
                            // deliveries are memory copies. The salt keys
                            // this transfer's draws so they are the same
                            // regardless of global call order.
                            let salt = self.next_fault_salt(sender);
                            match faults.transfer_verdict(
                                send_time_ns,
                                bytes,
                                result.segments_traversed,
                                salt,
                            ) {
                                TransferVerdict::Deliver => {}
                                TransferVerdict::Corrupt => {
                                    corrupt_values(&mut values, faults, send_time_ns, salt);
                                    self.fault_tally.corrupted += 1;
                                    tracer.add("sim.faults_corrupted", 1);
                                    self.log.push_fault(
                                        send_time_ns,
                                        sender_sym,
                                        self.corrupt_sym,
                                        signal_sym,
                                    );
                                }
                                TransferVerdict::Drop => {
                                    self.fault_tally.dropped += 1;
                                    tracer.add("sim.faults_dropped", 1);
                                    self.log.push_fault(
                                        send_time_ns,
                                        sender_sym,
                                        self.drop_sym,
                                        signal_sym,
                                    );
                                    continue;
                                }
                            }
                        }
                        result.completion_ns
                    }
                    _ => send_time_ns + self.config.local_latency_ns,
                }
            };
            self.schedule(
                delivery_ns,
                EventKind::Deliver {
                    target,
                    entry_kind: DeliverKind::Signal {
                        signal,
                        values,
                        sender,
                        bytes,
                        sent_at_ns: send_time_ns,
                    },
                },
            );
        }
    }

    fn runtime_error(&self, proc_index: ProcIndex, err: tut_uml::Error) -> SimError {
        SimError::Runtime {
            process: self.processes[proc_index].name.clone(),
            message: err.to_string(),
        }
    }

    /// Up to three processes most likely responsible for a livelock:
    /// deepest input queues first, then most steps executed, then name.
    fn hot_processes(&self) -> Vec<String> {
        let mut ranked: Vec<&ProcessRt> = self.processes.iter().collect();
        ranked.sort_by(|a, b| {
            b.queue
                .len()
                .cmp(&a.queue.len())
                .then(b.stats.steps.cmp(&a.stats.steps))
                .then(a.name.cmp(&b.name))
        });
        ranked.into_iter().take(3).map(|p| p.name.clone()).collect()
    }

    fn watchdog_expired(&self, time_ns: u64, events: u64, limit: &str) -> SimError {
        SimError::WatchdogExpired {
            time_ns,
            events,
            limit: limit.to_owned(),
            hot_processes: self.hot_processes(),
        }
    }

    fn into_report(self) -> SimReport {
        let mut report = SimReport {
            end_time_ns: self.now_ns,
            total_steps: self.steps,
            log: self.log,
            processes: Vec::new(),
            pes: Vec::new(),
            faults: FaultTally {
                unroutable: self.network.unroutable_transfers(),
                ..self.fault_tally
            },
        };
        for process in self.processes {
            report.processes.push((process.name, process.stats));
        }
        for pe in self.pes {
            report.pes.push((
                pe.descriptor.name.clone(),
                PeStats {
                    busy_ns: pe.busy_ns,
                    busy_cycles: pe.busy_cycles,
                    is_env: pe.is_env,
                },
            ));
        }
        report
    }
}

/// Corrupts an in-flight payload: flips one bit of the first `Bytes`
/// value, or perturbs the first `Int` through its little-endian byte
/// image when the signal carries no raw bytes. Signals with no
/// corruptible value (e.g. `Bool`/`Str` only) keep the fault record but
/// arrive unchanged.
fn corrupt_values<F: FaultModel>(values: &mut [Value], faults: &mut F, now_ns: u64, salt: u64) {
    if let Some(bytes) = values.iter_mut().find_map(|v| match v {
        Value::Bytes(b) if !b.is_empty() => Some(b),
        _ => None,
    }) {
        faults.corrupt_payload(now_ns, bytes, salt);
        return;
    }
    if let Some(value) = values.iter_mut().find(|v| matches!(v, Value::Int(_))) {
        if let Value::Int(n) = value {
            let mut image = n.to_le_bytes();
            faults.corrupt_payload(now_ns, &mut image, salt);
            *value = Value::Int(i64::from_le_bytes(image));
        }
    }
}

/// Checked `i64 → u32` lowering of a platform tagged value; out-of-range
/// values become a spanned-attributable [`SimError::ParamOutOfRange`]
/// instead of silently truncating.
fn param_u32(
    part: PropertyId,
    owner: &str,
    param: &'static str,
    value: i64,
) -> Result<u32, SimError> {
    u32::try_from(value).map_err(|_| SimError::ParamOutOfRange {
        element: part.to_string(),
        owner: owner.to_owned(),
        param,
        value,
        min: 0,
        max: u32::MAX as u64,
    })
}

/// Checked `i64 → u64` lowering (rejects negative values).
fn param_u64(
    part: PropertyId,
    owner: &str,
    param: &'static str,
    value: i64,
) -> Result<u64, SimError> {
    u64::try_from(value).map_err(|_| SimError::ParamOutOfRange {
        element: part.to_string(),
        owner: owner.to_owned(),
        param,
        value,
        min: 0,
        max: u64::MAX,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::log::RecordRef;
    use tut_faults::{FaultConfig, FaultPlan, Outage};
    use tut_profile::application::ProcessType;
    use tut_profile::platform::ComponentKind;
    use tut_profile_core::TagValue;
    use tut_uml::action::{BinOp, CostClass, Expr, Statement};
    use tut_uml::statemachine::StateMachine;
    use tut_uml::value::DataType;

    /// A ping-pong system: two processes exchanging a counter signal,
    /// mapped to two CPUs on one HIBI segment.
    fn ping_pong(count: i64, same_pe: bool) -> SystemModel {
        let mut s = SystemModel::new("PingPong");
        let top = s.model.add_class("Top");
        s.apply(top, |t| t.application).unwrap();

        let ping_sig = s.model.add_signal("Ping");
        s.model.signal_mut(ping_sig).add_param("n", DataType::Int);
        let pong_sig = s.model.add_signal("Pong");
        s.model.signal_mut(pong_sig).add_param("n", DataType::Int);

        // Pinger: starts the exchange, counts down.
        let pinger = s.model.add_class("Pinger");
        s.apply(pinger, |t| t.application_component).unwrap();
        let p_out = s.model.add_port(pinger, "out");
        let p_in = s.model.add_port(pinger, "in");
        s.model.port_mut(p_out).add_required(ping_sig);
        s.model.port_mut(p_in).add_provided(pong_sig);
        let mut sm = StateMachine::new("PingerB");
        let idle = sm.add_state_with_entry(
            "Idle",
            vec![Statement::Send {
                port: "out".into(),
                signal: ping_sig,
                args: vec![Expr::int(count)],
            }],
        );
        let wait = sm.add_state("Wait");
        sm.set_initial(idle);
        sm.add_transition(idle, wait, Trigger::Completion, None, vec![]);
        // On Pong with n > 0 send another Ping.
        sm.add_transition(
            wait,
            wait,
            Trigger::Signal(pong_sig),
            Some(Expr::param("n").bin(BinOp::Gt, Expr::int(0))),
            vec![
                Statement::Compute {
                    class: CostClass::Control,
                    amount: Expr::int(10),
                },
                Statement::Send {
                    port: "out".into(),
                    signal: ping_sig,
                    args: vec![Expr::param("n")],
                },
            ],
        );
        s.model.add_state_machine(pinger, sm);

        // Ponger: replies with n-1.
        let ponger = s.model.add_class("Ponger");
        s.apply(ponger, |t| t.application_component).unwrap();
        let q_in = s.model.add_port(ponger, "in");
        let q_out = s.model.add_port(ponger, "out");
        s.model.port_mut(q_in).add_provided(ping_sig);
        s.model.port_mut(q_out).add_required(pong_sig);
        let mut sm = StateMachine::new("PongerB");
        let st = sm.add_state("S");
        sm.set_initial(st);
        sm.add_transition(
            st,
            st,
            Trigger::Signal(ping_sig),
            None,
            vec![
                Statement::Compute {
                    class: CostClass::Control,
                    amount: Expr::int(50),
                },
                Statement::Send {
                    port: "out".into(),
                    signal: pong_sig,
                    args: vec![Expr::param("n").bin(BinOp::Sub, Expr::int(1))],
                },
            ],
        );
        s.model.add_state_machine(ponger, sm);

        let ping_part = s.model.add_part(top, "pinger", pinger);
        let pong_part = s.model.add_part(top, "ponger", ponger);
        for part in [ping_part, pong_part] {
            s.apply(part, |t| t.application_process).unwrap();
        }
        s.model.add_connector(
            top,
            "ping_wire",
            tut_uml::model::ConnectorEnd {
                part: Some(ping_part),
                port: p_out,
            },
            tut_uml::model::ConnectorEnd {
                part: Some(pong_part),
                port: q_in,
            },
        );
        s.model.add_connector(
            top,
            "pong_wire",
            tut_uml::model::ConnectorEnd {
                part: Some(pong_part),
                port: q_out,
            },
            tut_uml::model::ConnectorEnd {
                part: Some(ping_part),
                port: p_in,
            },
        );

        // Groups + platform + mapping.
        let g1 = s.add_process_group("group1", false, ProcessType::General);
        let g2 = s.add_process_group("group2", false, ProcessType::General);
        s.assign_to_group(ping_part, g1);
        s.assign_to_group(pong_part, g2);

        let platform = s.model.add_class("Platform");
        s.apply(platform, |t| t.platform).unwrap();
        let nios = s.add_platform_component("Nios", ComponentKind::General, 50, 2.0, 0.5);
        let cpu1 = s.add_platform_instance(platform, "cpu1", nios, 1, 0);
        let cpu2 = s.add_platform_instance(platform, "cpu2", nios, 2, 0);

        // One segment with two wrappers.
        let seg_class = s.model.add_class("Seg");
        s.apply(seg_class, |t| t.hibi_segment).unwrap();
        let wrap_class = s.model.add_class("Wrap");
        s.apply_with(
            wrap_class,
            |t| t.hibi_wrapper,
            [("Address", TagValue::Int(16))],
        )
        .unwrap();
        let wrap_class2 = s.model.add_class("Wrap2");
        s.apply_with(
            wrap_class2,
            |t| t.hibi_wrapper,
            [("Address", TagValue::Int(32))],
        )
        .unwrap();
        let seg = s.model.add_part(platform, "seg", seg_class);
        let seg_port = s.model.add_port(seg_class, "agents");
        let nios_port = s.model.add_port(nios, "hibi");
        for (cpu, wc, name) in [(cpu1, wrap_class, "w1"), (cpu2, wrap_class2, "w2")] {
            let wp = s.model.add_port(wc, "pe");
            let wb = s.model.add_port(wc, "bus");
            let w = s.model.add_part(platform, name, wc);
            s.model.add_connector(
                platform,
                format!("{name}_pe"),
                tut_uml::model::ConnectorEnd {
                    part: Some(w),
                    port: wp,
                },
                tut_uml::model::ConnectorEnd {
                    part: Some(cpu),
                    port: nios_port,
                },
            );
            s.model.add_connector(
                platform,
                format!("{name}_bus"),
                tut_uml::model::ConnectorEnd {
                    part: Some(w),
                    port: wb,
                },
                tut_uml::model::ConnectorEnd {
                    part: Some(seg),
                    port: seg_port,
                },
            );
        }

        s.map_group(g1, cpu1, false);
        if same_pe {
            s.map_group(g2, cpu1, false);
        } else {
            s.map_group(g2, cpu2, false);
        }
        s
    }

    #[test]
    fn ping_pong_completes_expected_rounds() {
        let system = ping_pong(5, false);
        let sim = Simulation::from_system(&system, SimConfig::default()).unwrap();
        let report = sim.run().unwrap();
        // 5 pings, 5 pongs (n = 5..1), final pong n=0 consumed without send.
        let sig_count = report
            .log
            .iter()
            .filter(|r| matches!(r, RecordRef::Sig { .. }))
            .count();
        assert_eq!(sig_count, 10, "log: {}", report.log.to_text());
        // Ponger did 5 compute-heavy steps.
        let ponger = report
            .processes
            .iter()
            .find(|(name, _)| name == "ponger")
            .unwrap();
        assert_eq!(ponger.1.signals_received, 5);
        assert!(ponger.1.cycles > 0);
        assert!(report.end_time_ns > 0);
    }

    #[test]
    fn same_pe_mapping_avoids_the_bus() {
        let cross = Simulation::from_system(&ping_pong(20, false), SimConfig::default())
            .unwrap()
            .run()
            .unwrap();
        let local = Simulation::from_system(&ping_pong(20, true), SimConfig::default())
            .unwrap()
            .run()
            .unwrap();
        // Paper §4.1: grouping to minimise communication between PEs
        // improves performance; local mapping should finish sooner.
        assert!(
            local.end_time_ns < cross.end_time_ns,
            "local {} vs cross {}",
            local.end_time_ns,
            cross.end_time_ns
        );
    }

    #[test]
    fn deterministic_runs_produce_identical_logs() {
        let a = Simulation::from_system(&ping_pong(10, false), SimConfig::default())
            .unwrap()
            .run()
            .unwrap();
        let b = Simulation::from_system(&ping_pong(10, false), SimConfig::default())
            .unwrap()
            .run()
            .unwrap();
        assert_eq!(a.log, b.log);
        assert_eq!(a.end_time_ns, b.end_time_ns);
    }

    #[test]
    fn missing_application_rejected() {
        let s = SystemModel::new("Empty");
        assert!(matches!(
            Simulation::from_system(&s, SimConfig::default()),
            Err(SimError::NoApplication)
        ));
    }

    #[test]
    fn interned_log_renders_identically_to_per_record_rendering() {
        let report = Simulation::from_system(&ping_pong(10, false), SimConfig::default())
            .unwrap()
            .run()
            .unwrap();
        let text = report.log.to_text();
        // The streamed rendering must match rendering each record on its
        // own (the pre-interning code path).
        let mut manual = String::from("# TUT-Profile simulation log-file v1\n");
        for record in report.log.iter() {
            manual.push_str(&record.to_owned().to_line());
            manual.push('\n');
        }
        assert_eq!(text, manual);
        // A re-parsed log interns in a different order yet renders the
        // same bytes.
        let parsed = SimLog::parse(&text).unwrap();
        assert_eq!(parsed.to_text(), text);
    }

    #[test]
    fn log_round_trips_through_text() {
        let report = Simulation::from_system(&ping_pong(3, false), SimConfig::default())
            .unwrap()
            .run()
            .unwrap();
        let text = report.log.to_text();
        let parsed = SimLog::parse(&text).unwrap();
        assert_eq!(parsed, report.log);
    }

    #[test]
    fn step_bound_stops_runaway_models() {
        let config = SimConfig {
            max_steps: 7,
            ..SimConfig::default()
        };
        let report = Simulation::from_system(&ping_pong(1_000_000, false), config)
            .unwrap()
            .run()
            .unwrap();
        assert!(report.total_steps <= 7);
    }

    #[test]
    fn zero_rate_fault_plan_matches_fault_free_run() {
        let baseline = Simulation::from_system(&ping_pong(10, false), SimConfig::default())
            .unwrap()
            .run()
            .unwrap();
        let mut plan = FaultPlan::new(FaultConfig::default());
        let faulted = Simulation::from_system(&ping_pong(10, false), SimConfig::default())
            .unwrap()
            .run_with_faults(&mut plan, &mut NoopSink)
            .unwrap();
        assert_eq!(baseline.log.to_text(), faulted.log.to_text());
        assert_eq!(baseline.end_time_ns, faulted.end_time_ns);
        assert_eq!(faulted.faults, FaultTally::default());
    }

    #[test]
    fn dropped_transfers_are_recorded_and_tallied() {
        let mut plan = FaultPlan::new(FaultConfig {
            drop_per_hop: 1.0,
            ..FaultConfig::default()
        });
        let report = Simulation::from_system(&ping_pong(10, false), SimConfig::default())
            .unwrap()
            .run_with_faults(&mut plan, &mut NoopSink)
            .unwrap();
        // The very first ping is dropped on the bus, so the exchange
        // dies immediately.
        assert_eq!(report.faults.dropped, 1);
        let drops = report
            .log
            .iter()
            .filter(|r| matches!(r, RecordRef::Fault { kind, .. } if *kind == "drop"))
            .count();
        assert_eq!(drops, 1);
        let sigs = report
            .log
            .iter()
            .filter(|r| matches!(r, RecordRef::Sig { .. }))
            .count();
        assert_eq!(sigs, 0, "no signal survives a 100% drop channel");
    }

    #[test]
    fn corrupted_transfers_mutate_the_payload_in_flight() {
        let config = SimConfig {
            max_steps: 400,
            ..SimConfig::default()
        };
        let mut plan = FaultPlan::new(FaultConfig::with_ber(7, 1.0));
        let report = Simulation::from_system(&ping_pong(3, false), config)
            .unwrap()
            .run_with_faults(&mut plan, &mut NoopSink)
            .unwrap();
        assert!(report.faults.corrupted > 0);
        assert_eq!(report.faults.injected(), report.faults.corrupted);
        let faults = report
            .log
            .iter()
            .filter(|r| matches!(r, RecordRef::Fault { kind, .. } if *kind == "corrupt"))
            .count() as u64;
        assert_eq!(faults, report.faults.corrupted);
    }

    #[test]
    fn event_budget_watchdog_converts_storms_into_errors() {
        let config = SimConfig {
            watchdog: crate::config::Watchdog {
                max_events: 50,
                quiescence_ns: 0,
            },
            ..SimConfig::default()
        };
        let err = Simulation::from_system(&ping_pong(1_000_000, false), config)
            .unwrap()
            .run()
            .unwrap_err();
        match err {
            SimError::WatchdogExpired {
                limit,
                events,
                hot_processes,
                ..
            } => {
                assert_eq!(limit, "event-budget");
                assert_eq!(events, 51);
                assert!(!hot_processes.is_empty());
            }
            other => panic!("expected WatchdogExpired, got {other:?}"),
        }
    }

    #[test]
    fn finite_outage_delays_but_does_not_lose_work() {
        let clean = Simulation::from_system(&ping_pong(5, false), SimConfig::default())
            .unwrap()
            .run()
            .unwrap();
        // cpu2 (the ponger's element) is down for the first 50 µs.
        let mut plan = FaultPlan::new(FaultConfig {
            outages: vec![Outage {
                pe: "cpu2".into(),
                from_ns: 0,
                until_ns: 50_000,
            }],
            ..FaultConfig::default()
        });
        let stalled = Simulation::from_system(&ping_pong(5, false), SimConfig::default())
            .unwrap()
            .run_with_faults(&mut plan, &mut NoopSink)
            .unwrap();
        let sigs = |r: &SimReport| {
            r.log
                .iter()
                .filter(|rec| matches!(rec, RecordRef::Sig { .. }))
                .count()
        };
        assert_eq!(sigs(&clean), sigs(&stalled), "no signal is lost");
        assert!(
            stalled.end_time_ns > clean.end_time_ns,
            "outage defers completion: {} vs {}",
            stalled.end_time_ns,
            clean.end_time_ns
        );
    }

    /// An environment traffic source driving a sink whose element never
    /// comes back: events keep flowing but no useful work happens.
    fn env_driven_sink() -> SystemModel {
        let mut s = SystemModel::new("Stall");
        let top = s.model.add_class("Top");
        s.apply(top, |t| t.application).unwrap();
        let tick = s.model.add_signal("Tick");

        let ticker = s.model.add_class("Ticker");
        s.apply(ticker, |t| t.application_component).unwrap();
        let t_out = s.model.add_port(ticker, "out");
        s.model.port_mut(t_out).add_required(tick);
        let mut sm = StateMachine::new("TickerB");
        let run = sm.add_state_with_entry(
            "Run",
            vec![Statement::SetTimer {
                name: "t".into(),
                duration: Expr::int(500),
            }],
        );
        sm.set_initial(run);
        sm.add_transition(
            run,
            run,
            Trigger::Timer("t".into()),
            None,
            vec![
                Statement::Send {
                    port: "out".into(),
                    signal: tick,
                    args: vec![],
                },
                Statement::SetTimer {
                    name: "t".into(),
                    duration: Expr::int(500),
                },
            ],
        );
        s.model.add_state_machine(ticker, sm);

        let sink = s.model.add_class("Sink");
        s.apply(sink, |t| t.application_component).unwrap();
        let s_in = s.model.add_port(sink, "in");
        s.model.port_mut(s_in).add_provided(tick);
        let mut sm = StateMachine::new("SinkB");
        let st = sm.add_state("S");
        sm.set_initial(st);
        sm.add_transition(
            st,
            st,
            Trigger::Signal(tick),
            None,
            vec![Statement::Compute {
                class: CostClass::Control,
                amount: Expr::int(10),
            }],
        );
        s.model.add_state_machine(sink, sm);

        let tick_part = s.model.add_part(top, "ticker", ticker);
        let sink_part = s.model.add_part(top, "sink", sink);
        for part in [tick_part, sink_part] {
            s.apply(part, |t| t.application_process).unwrap();
        }
        s.model.add_connector(
            top,
            "wire",
            tut_uml::model::ConnectorEnd {
                part: Some(tick_part),
                port: t_out,
            },
            tut_uml::model::ConnectorEnd {
                part: Some(sink_part),
                port: s_in,
            },
        );

        // Only the sink is mapped; the ticker stays on the environment
        // element (a traffic source outside the platform).
        let g1 = s.add_process_group("group1", false, ProcessType::General);
        s.assign_to_group(sink_part, g1);
        let platform = s.model.add_class("Platform");
        s.apply(platform, |t| t.platform).unwrap();
        let nios = s.add_platform_component("Nios", ComponentKind::General, 50, 2.0, 0.5);
        let cpu1 = s.add_platform_instance(platform, "cpu1", nios, 1, 0);
        s.map_group(g1, cpu1, false);
        s
    }

    #[test]
    fn quiescence_watchdog_names_the_stalled_process() {
        let config = SimConfig {
            watchdog: crate::config::Watchdog {
                max_events: 0,
                quiescence_ns: 10_000,
            },
            ..SimConfig::default()
        };
        let mut plan = FaultPlan::new(FaultConfig {
            outages: vec![Outage {
                pe: "cpu1".into(),
                from_ns: 0,
                until_ns: u64::MAX,
            }],
            ..FaultConfig::default()
        });
        let err = Simulation::from_system(&env_driven_sink(), config)
            .unwrap()
            .run_with_faults(&mut plan, &mut NoopSink)
            .unwrap_err();
        match err {
            SimError::WatchdogExpired {
                limit,
                time_ns,
                hot_processes,
                ..
            } => {
                assert_eq!(limit, "quiescence");
                assert!(time_ns > 10_000);
                assert_eq!(hot_processes.first().map(String::as_str), Some("sink"));
            }
            other => panic!("expected WatchdogExpired, got {other:?}"),
        }
        // Without the outage the same watchdog stays quiet.
        let config = SimConfig {
            watchdog: crate::config::Watchdog {
                max_events: 0,
                quiescence_ns: 10_000,
            },
            ..SimConfig::default()
        };
        let report = Simulation::from_system(&env_driven_sink(), config)
            .unwrap()
            .run()
            .unwrap();
        assert!(report.total_steps > 0);
    }
}
