//! The discrete-event simulation engine.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap, VecDeque};

use tut_faults::{FaultModel, NoFaults, TransferVerdict};
use tut_hibi::topology::{
    Arbitration as HibiArbitration, BridgeConfig, NetworkBuilder, SegmentConfig, WrapperConfig,
};
use tut_hibi::{AgentId, Network};
use tut_platform::{PeDescriptor, PeKind};
use tut_profile::platform::{Arbitration, ComponentKind};
use tut_profile::SystemModel;
use tut_trace::{Clock, NoopSink, TraceSink};
use tut_uml::action::{self, Effect, Env};
use tut_uml::ids::{ClassId, PropertyId, SignalId, StateId, StateMachineId};
use tut_uml::instances::{InstanceIndex, InstanceTree, RoutingTable};
use tut_uml::statemachine::Trigger;
use tut_uml::Value;

use crate::config::SimConfig;
use crate::error::SimError;
use crate::log::{LogRecord, SimLog};
use crate::report::{FaultTally, PeStats, ProcessStats, SimReport};

/// Index of a processing element inside a [`Simulation`].
type PeIndex = usize;
/// Index of a process inside a [`Simulation`].
type ProcIndex = usize;

#[derive(Clone, Debug)]
enum QueueEntry {
    /// Pseudo-entry that runs the initial step (entry actions of the
    /// initial state and completion transitions).
    Start,
    Signal {
        signal: SignalId,
        values: Vec<Value>,
    },
    Timer {
        name: String,
    },
}

#[derive(Clone, Debug)]
struct ProcessRt {
    /// Index into the instance tree.
    instance: InstanceIndex,
    /// Dotted display name (log identity).
    name: String,
    class: ClassId,
    sm: StateMachineId,
    state: StateId,
    vars: HashMap<String, Value>,
    /// Pending inputs with their enqueue timestamps (for response-time
    /// accounting).
    queue: VecDeque<(u64, QueueEntry)>,
    pe: PeIndex,
    priority: i64,
    /// Monotonic generation per timer name; a fired event with a stale
    /// generation was cancelled or re-armed.
    timer_gens: HashMap<String, u64>,
    stats: ProcessStats,
}

#[derive(Clone, Debug)]
struct PeRt {
    descriptor: PeDescriptor,
    /// HIBI agent of this element, if attached to the network.
    agent: Option<AgentId>,
    /// The process that ran last (for context-switch accounting).
    last_process: Option<ProcIndex>,
    /// Round-robin pointer for the RoundRobin policy.
    rr_next: ProcIndex,
    free_at_ns: u64,
    busy_ns: u64,
    busy_cycles: u64,
    is_env: bool,
}

#[derive(Clone, PartialEq, Eq, Debug)]
enum EventKind {
    Deliver {
        target: ProcIndex,
        entry_kind: DeliverKind,
    },
    TimerFired {
        target: ProcIndex,
        name: String,
        generation: u64,
    },
    /// The processing element finished a step; dispatch the next ready
    /// process.
    PeFree { pe: PeIndex },
}

#[derive(Clone, PartialEq, Eq, Debug)]
enum DeliverKind {
    Start,
    Signal {
        signal: SignalId,
        values: Vec<Value>,
        sender_name: String,
        bytes: u64,
        sent_at_ns: u64,
    },
}

// Manual ordering impls: earliest time first, then insertion sequence for
// determinism.
#[derive(Debug)]
struct Event {
    time_ns: u64,
    seq: u64,
    kind: EventKind,
}

impl PartialEq for Event {
    fn eq(&self, other: &Self) -> bool {
        self.time_ns == other.time_ns && self.seq == other.seq
    }
}
impl Eq for Event {}
impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Event {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.time_ns, self.seq).cmp(&(other.time_ns, other.seq))
    }
}

/// A runnable co-simulation built from a [`SystemModel`].
pub struct Simulation {
    system: SystemModel,
    config: SimConfig,
    routing: RoutingTable,
    processes: Vec<ProcessRt>,
    /// Instance index -> process index.
    by_instance: HashMap<InstanceIndex, ProcIndex>,
    pes: Vec<PeRt>,
    network: Network,
    events: BinaryHeap<Reverse<Event>>,
    next_seq: u64,
    now_ns: u64,
    steps: u64,
    log: SimLog,
    /// Injected-fault totals (corruptions/drops; unroutable transfers
    /// are tallied by the network itself).
    fault_tally: FaultTally,
    /// Last simulated time a run-to-completion step executed on a
    /// non-environment element (the watchdog's quiescence reference).
    last_useful_ns: u64,
}

impl Simulation {
    /// Builds a simulation from a validated system model.
    ///
    /// # Errors
    ///
    /// * [`SimError::NoApplication`] when no class carries
    ///   `«Application»`.
    /// * [`SimError::MissingBehaviour`] when an instantiated functional
    ///   component has no state machine.
    /// * [`SimError::BadModel`] / [`SimError::Network`] for structural
    ///   problems.
    pub fn from_system(system: &SystemModel, config: SimConfig) -> Result<Simulation, SimError> {
        let app = system.application();
        let top = app.top().ok_or(SimError::NoApplication)?;
        let tree = InstanceTree::build(&system.model, top)
            .map_err(|e| SimError::BadModel(e.to_string()))?;
        let routing = RoutingTable::build(&system.model, &tree);

        // ---- Platform: processing elements + HIBI network --------------
        let platform = system.platform();
        let mut pes: Vec<PeRt> = Vec::new();
        // PE 0 is the environment element: infinitely fast, not on the bus.
        pes.push(PeRt {
            descriptor: PeDescriptor::new("environment", PeKind::GeneralCpu, 1_000_000),
            agent: None,
            last_process: None,
            rr_next: 0,
            free_at_ns: 0,
            busy_ns: 0,
            busy_cycles: 0,
            is_env: true,
        });

        let mut builder = NetworkBuilder::new();
        let mut segment_ids = HashMap::new();
        for segment in platform.segments() {
            let id = builder.add_segment(
                segment.name.clone(),
                SegmentConfig {
                    data_width_bits: segment.data_width as u32,
                    frequency_mhz: segment.frequency as u32,
                    arbitration: match segment.arbitration {
                        Arbitration::Priority => HibiArbitration::Priority,
                        Arbitration::RoundRobin => HibiArbitration::RoundRobin,
                        Arbitration::Tdma => HibiArbitration::Tdma,
                    },
                    tdma_slots: segment.tdma_slots as u32,
                },
            );
            segment_ids.insert(segment.part, id);
        }
        let attachments = platform.attachments();
        let mut pe_index_by_part: HashMap<PropertyId, PeIndex> = HashMap::new();
        let mut next_auto_address = 0x1000u64;
        for info in platform.instances() {
            let kind = match info.kind {
                ComponentKind::General => PeKind::GeneralCpu,
                ComponentKind::Dsp => PeKind::DspCpu,
                ComponentKind::HwAccelerator => PeKind::HwAccelerator,
            };
            let mut descriptor = PeDescriptor::new(info.name.clone(), kind, info.frequency as u32);
            descriptor.int_memory_bytes = info.int_memory.max(0) as u64;
            descriptor.priority = info.priority;
            descriptor.area = info.area.unwrap_or(1.0);
            descriptor.power = info.power.unwrap_or(0.1);
            let agent = attachments
                .iter()
                .find(|a| a.pe == info.part)
                .and_then(|a| {
                    let segment = *segment_ids.get(&a.segment)?;
                    let address = a.wrapper.address.map(|x| x as u64).unwrap_or_else(|| {
                        next_auto_address += 1;
                        next_auto_address
                    });
                    Some(builder.add_agent(
                        segment,
                        WrapperConfig {
                            address,
                            buffer_size: a.wrapper.buffer_size as u32,
                            max_time: a.wrapper.max_time.max(1) as u32,
                        },
                    ))
                });
            pe_index_by_part.insert(info.part, pes.len());
            pes.push(PeRt {
                descriptor,
                agent,
                last_process: None,
                rr_next: 0,
                free_at_ns: 0,
                busy_ns: 0,
                busy_cycles: 0,
                is_env: false,
            });
        }
        for bridge in platform.bridges() {
            if let (Some(&a), Some(&b)) = (segment_ids.get(&bridge.a), segment_ids.get(&bridge.b)) {
                builder.add_bridge(a, b, BridgeConfig::default());
            }
        }
        let network = builder.build()?;

        // ---- Processes --------------------------------------------------
        let mapping = system.mapping();
        let mut processes = Vec::new();
        let mut by_instance = HashMap::new();
        for instance in tree.active_instances(&system.model) {
            let node = tree.node(instance);
            let class = node.class;
            let sm =
                system
                    .model
                    .class(class)
                    .behavior()
                    .ok_or_else(|| SimError::MissingBehaviour {
                        class: system.model.class(class).name().to_owned(),
                    })?;
            let machine = system.model.state_machine(sm);
            let initial = machine.initial().ok_or_else(|| {
                SimError::BadModel(format!(
                    "state machine `{}` has no initial state",
                    machine.name()
                ))
            })?;
            let part = node.path.last().copied();
            let (pe, priority) = match part {
                Some(part) => {
                    let info = app.process(part);
                    let pe = mapping
                        .instance_of_process(part)
                        .and_then(|platform_part| pe_index_by_part.get(&platform_part).copied())
                        .unwrap_or(0);
                    (pe, info.as_ref().map(|i| i.priority).unwrap_or(0))
                }
                None => (0, 0),
            };
            let vars = machine
                .variables()
                .iter()
                .map(|v| (v.name.clone(), v.init.clone()))
                .collect();
            by_instance.insert(instance, processes.len());
            processes.push(ProcessRt {
                instance,
                name: tree.display_name(&system.model, instance),
                class,
                sm,
                state: initial,
                vars,
                queue: VecDeque::new(),
                pe,
                priority,
                timer_gens: HashMap::new(),
                stats: ProcessStats::default(),
            });
        }
        if processes.is_empty() {
            return Err(SimError::BadModel(
                "application has no active process instances".into(),
            ));
        }

        let mut sim = Simulation {
            system: system.clone(),
            config,
            routing,
            processes,
            by_instance,
            pes,
            network,
            events: BinaryHeap::new(),
            next_seq: 0,
            now_ns: 0,
            steps: 0,
            log: SimLog::new(),
            fault_tally: FaultTally::default(),
            last_useful_ns: 0,
        };
        // Every process performs its Start step at t=0.
        for index in 0..sim.processes.len() {
            sim.processes[index].queue.push_back((0, QueueEntry::Start));
            sim.schedule(
                0,
                EventKind::Deliver {
                    target: index,
                    entry_kind: DeliverKind::Start,
                },
            );
        }
        Ok(sim)
    }

    fn schedule(&mut self, time_ns: u64, kind: EventKind) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.events.push(Reverse(Event { time_ns, seq, kind }));
    }

    /// Runs to completion (event queue drained, time horizon passed, or
    /// step bound hit) and returns the report.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Runtime`] when an action-language error occurs
    /// inside a process step.
    pub fn run(self) -> Result<SimReport, SimError> {
        self.run_with(&mut NoopSink)
    }

    /// [`Simulation::run`] with tracing: run-to-completion steps become
    /// spans on per-element `pe/<name>` tracks, bus reservations become
    /// spans on per-segment `hibi/<name>` tracks, signal latencies feed
    /// the `sim.signal_latency_ns` histogram, and the event-queue depth
    /// is sampled on the `sim/events` track (see
    /// [`crate::config::TraceOptions`]).
    ///
    /// Tracing is observation only: the returned report and log are
    /// byte-identical to an untraced [`Simulation::run`].
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Runtime`] when an action-language error occurs
    /// inside a process step.
    pub fn run_with<T: TraceSink>(self, tracer: &mut T) -> Result<SimReport, SimError> {
        // `NoFaults` short-circuits every hook, so this monomorphises to
        // the fault-free engine.
        self.run_with_faults(&mut NoFaults, tracer)
    }

    /// [`Simulation::run_with`] plus deterministic fault injection: the
    /// [`FaultModel`] decides, in event order, whether each HIBI-borne
    /// signal is delivered intact, corrupted, or dropped, whether timers
    /// jitter, and whether a processing element is inside an outage
    /// window.
    ///
    /// With an inactive model (e.g. [`NoFaults`] or a zero-rate
    /// [`tut_faults::FaultPlan`]) every hook short-circuits without
    /// drawing randomness, so the log and report are byte-identical to
    /// [`Simulation::run`].
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Runtime`] when an action-language error occurs
    /// inside a process step, and [`SimError::WatchdogExpired`] when an
    /// armed [`crate::config::Watchdog`] limit fires.
    pub fn run_with_faults<F: FaultModel, T: TraceSink>(
        mut self,
        faults: &mut F,
        tracer: &mut T,
    ) -> Result<SimReport, SimError> {
        let queue_track = tracer.track("sim/events", Clock::Sim);
        let watchdog = self.config.watchdog;
        let mut events_popped: u64 = 0;
        while let Some(Reverse(event)) = self.events.pop() {
            if event.time_ns > self.config.max_time_ns || self.steps >= self.config.max_steps {
                break;
            }
            events_popped += 1;
            if watchdog.max_events > 0 && events_popped > watchdog.max_events {
                return Err(self.watchdog_expired(event.time_ns, events_popped, "event-budget"));
            }
            if watchdog.quiescence_ns > 0
                && event.time_ns.saturating_sub(self.last_useful_ns) > watchdog.quiescence_ns
            {
                return Err(self.watchdog_expired(event.time_ns, events_popped, "quiescence"));
            }
            self.now_ns = event.time_ns;
            if tracer.enabled() && self.config.trace.queue_depth {
                let depth = self.events.len() as f64;
                tracer.counter(queue_track, "queue_depth", self.now_ns, depth);
                tracer.gauge("sim.event_queue_depth", depth);
            }
            match event.kind {
                EventKind::Deliver { target, entry_kind } => {
                    match entry_kind {
                        DeliverKind::Start => {
                            // Start entries were enqueued at construction.
                        }
                        DeliverKind::Signal {
                            signal,
                            values,
                            sender_name,
                            bytes,
                            sent_at_ns,
                        } => {
                            let receiver = self.processes[target].name.clone();
                            let signal_name = self.system.model.signal(signal).name().to_owned();
                            let latency_ns = self.now_ns.saturating_sub(sent_at_ns);
                            tracer.observe("sim.signal_latency_ns", latency_ns);
                            tracer.add("sim.signals_delivered", 1);
                            self.log.push(LogRecord::Sig {
                                time_ns: self.now_ns,
                                sender: sender_name,
                                receiver,
                                signal: signal_name,
                                bytes,
                                latency_ns,
                            });
                            self.processes[target].stats.signals_received += 1;
                            let now = self.now_ns;
                            self.processes[target]
                                .queue
                                .push_back((now, QueueEntry::Signal { signal, values }));
                        }
                    }
                    let pe = self.processes[target].pe;
                    self.try_dispatch(pe, faults, tracer)?;
                }
                EventKind::TimerFired {
                    target,
                    name,
                    generation,
                } => {
                    let current = self.processes[target]
                        .timer_gens
                        .get(&name)
                        .copied()
                        .unwrap_or(0);
                    if current == generation {
                        let now = self.now_ns;
                        self.processes[target]
                            .queue
                            .push_back((now, QueueEntry::Timer { name }));
                        let pe = self.processes[target].pe;
                        self.try_dispatch(pe, faults, tracer)?;
                    }
                }
                EventKind::PeFree { pe } => {
                    self.try_dispatch(pe, faults, tracer)?;
                }
            }
        }
        tracer.add("sim.steps", self.steps);
        Ok(self.into_report())
    }

    /// Runs one step on `pe` if it is free, not in an outage window, and
    /// a process is ready.
    fn try_dispatch<F: FaultModel, T: TraceSink>(
        &mut self,
        pe: PeIndex,
        faults: &mut F,
        tracer: &mut T,
    ) -> Result<(), SimError> {
        if self.pes[pe].free_at_ns > self.now_ns {
            return Ok(());
        }
        if faults.is_active() && !self.pes[pe].is_env {
            let pe_name = self.pes[pe].descriptor.name.clone();
            if let Some(until_ns) = faults.outage_until(&pe_name, self.now_ns) {
                // Stalled element: park the dispatch. A finite outage
                // retries when it lifts; a permanent one never runs again
                // (the watchdog turns that into an error).
                if until_ns != u64::MAX && until_ns > self.now_ns {
                    self.schedule(until_ns, EventKind::PeFree { pe });
                }
                return Ok(());
            }
        }
        let ready: Vec<ProcIndex> = self
            .processes
            .iter()
            .enumerate()
            .filter(|(_, p)| p.pe == pe && !p.queue.is_empty())
            .map(|(index, _)| index)
            .collect();
        if ready.is_empty() {
            return Ok(());
        }
        let proc_index = match self.config.scheduler.policy {
            // Highest priority first; ties broken by process index for
            // determinism.
            crate::config::SchedPolicy::Priority => ready
                .iter()
                .copied()
                .max_by_key(|&index| (self.processes[index].priority, Reverse(index)))
                .expect("ready is non-empty"),
            // Fair rotation: first ready process at or after the rotating
            // pointer.
            crate::config::SchedPolicy::RoundRobin => {
                let start = self.pes[pe].rr_next;
                let chosen = ready
                    .iter()
                    .copied()
                    .find(|&index| index >= start)
                    .unwrap_or(ready[0]);
                self.pes[pe].rr_next = chosen + 1;
                chosen
            }
        };
        self.execute_step(proc_index, faults, tracer)?;
        Ok(())
    }

    /// Executes one run-to-completion step of `proc_index` at `now_ns`.
    fn execute_step<F: FaultModel, T: TraceSink>(
        &mut self,
        proc_index: ProcIndex,
        faults: &mut F,
        tracer: &mut T,
    ) -> Result<(), SimError> {
        self.steps += 1;
        let (enqueued_ns, entry) = self.processes[proc_index]
            .queue
            .pop_front()
            .expect("dispatch only picks non-empty queues");
        let pe_index = self.processes[proc_index].pe;
        let start_ns = self.now_ns;
        // Response-time accounting: delivery -> dispatch.
        let waited = start_ns.saturating_sub(enqueued_ns);
        {
            let stats = &mut self.processes[proc_index].stats;
            stats.queue_wait_ns += waited;
            stats.max_queue_wait_ns = stats.max_queue_wait_ns.max(waited);
        }

        let sm_id = self.processes[proc_index].sm;
        let machine = self.system.model.state_machine(sm_id).clone();
        let from_state = self.processes[proc_index].state;

        let mut env = Env {
            vars: self.processes[proc_index].vars.clone(),
            params: HashMap::new(),
        };
        let mut effects: Vec<Effect> = Vec::new();
        let mut weight: u64 = 0;
        let mut to_state = from_state;
        let mut fired = false;

        let trigger_label;
        match &entry {
            QueueEntry::Start => {
                trigger_label = "start".to_owned();
                fired = true;
                let state = machine.state(from_state);
                action::execute(state.entry(), &mut env, &mut effects, &mut weight)
                    .map_err(|e| self.runtime_error(proc_index, e))?;
            }
            QueueEntry::Signal { signal, values } => {
                trigger_label = self.system.model.signal(*signal).name().to_owned();
                // Bind signal parameters positionally.
                let params = self.system.model.signal(*signal).params();
                for (param, value) in params.iter().zip(values.iter()) {
                    env.params.insert(param.name.clone(), value.clone());
                }
                let transition =
                    machine
                        .transitions_from(from_state)
                        .find(|(_, t)| match t.trigger() {
                            Trigger::Signal(s) if s == signal => match t.guard() {
                                Some(guard) => {
                                    guard.eval(&env).map(|v| v.is_truthy()).unwrap_or(false)
                                }
                                None => true,
                            },
                            _ => false,
                        });
                if let Some((_, t)) = transition {
                    fired = true;
                    action::execute(t.actions(), &mut env, &mut effects, &mut weight)
                        .map_err(|e| self.runtime_error(proc_index, e))?;
                    to_state = t.target();
                    if to_state != from_state {
                        let state = machine.state(to_state);
                        action::execute(state.entry(), &mut env, &mut effects, &mut weight)
                            .map_err(|e| self.runtime_error(proc_index, e))?;
                    }
                }
            }
            QueueEntry::Timer { name } => {
                trigger_label = format!("timer:{name}");
                let transition =
                    machine
                        .transitions_from(from_state)
                        .find(|(_, t)| match t.trigger() {
                            Trigger::Timer(n) if n == name => match t.guard() {
                                Some(guard) => {
                                    guard.eval(&env).map(|v| v.is_truthy()).unwrap_or(false)
                                }
                                None => true,
                            },
                            _ => false,
                        });
                if let Some((_, t)) = transition {
                    fired = true;
                    action::execute(t.actions(), &mut env, &mut effects, &mut weight)
                        .map_err(|e| self.runtime_error(proc_index, e))?;
                    to_state = t.target();
                    if to_state != from_state {
                        let state = machine.state(to_state);
                        action::execute(state.entry(), &mut env, &mut effects, &mut weight)
                            .map_err(|e| self.runtime_error(proc_index, e))?;
                    }
                }
            }
        }

        if !fired {
            // Discarded input: log and charge only the dispatch overhead.
            let signal_name = match &entry {
                QueueEntry::Signal { signal, .. } => {
                    self.system.model.signal(*signal).name().to_owned()
                }
                QueueEntry::Timer { name } => format!("timer:{name}"),
                QueueEntry::Start => "start".to_owned(),
            };
            self.log.push(LogRecord::Drop {
                time_ns: start_ns,
                process: self.processes[proc_index].name.clone(),
                signal: signal_name,
            });
            self.processes[proc_index].stats.drops += 1;
            self.finish_step(
                proc_index, pe_index, start_ns, 0, from_state, from_state, "drop", tracer,
            );
            return Ok(());
        }

        // Completion transitions fire within the same step, bounded to
        // avoid livelock on a mis-modelled machine.
        env.params.clear();
        for _ in 0..64 {
            let transition = machine
                .transitions_from(to_state)
                .find(|(_, t)| match t.trigger() {
                    Trigger::Completion => match t.guard() {
                        Some(guard) => guard.eval(&env).map(|v| v.is_truthy()).unwrap_or(false),
                        None => true,
                    },
                    _ => false,
                });
            let Some((_, t)) = transition else { break };
            action::execute(t.actions(), &mut env, &mut effects, &mut weight)
                .map_err(|e| self.runtime_error(proc_index, e))?;
            let next = t.target();
            if next != to_state {
                let state = machine.state(next);
                action::execute(state.entry(), &mut env, &mut effects, &mut weight)
                    .map_err(|e| self.runtime_error(proc_index, e))?;
                to_state = next;
            } else {
                to_state = next;
                break;
            }
        }

        // ---- Cost accounting -------------------------------------------
        let pe_kind = self.pes[pe_index].descriptor.kind;
        let cost_model = &self.config.cost_model;
        let mut cycles =
            cost_model.step_overhead_cycles(pe_kind) + cost_model.weight_cycles(pe_kind, weight);
        let mut send_bytes_total = 0u64;
        for effect in &effects {
            match effect {
                Effect::Compute { class, units } => {
                    cycles += cost_model.compute_cycles(pe_kind, *class, *units);
                }
                Effect::Send { values, .. } => {
                    let bytes: u64 = self.config.header_bytes
                        + values.iter().map(|v| v.size_bytes() as u64).sum::<u64>();
                    send_bytes_total += bytes;
                }
                _ => {}
            }
        }
        let mem_units = send_bytes_total / self.config.bytes_per_mem_unit.max(1);
        cycles += cost_model.compute_cycles(pe_kind, tut_uml::action::CostClass::Mem, mem_units);
        // RTOS context switch: charged when the element switches to a
        // different process than the one that ran last.
        if self.pes[pe_index].last_process != Some(proc_index) {
            if self.pes[pe_index].last_process.is_some() {
                cycles += self.config.scheduler.context_switch_cycles;
            }
            self.pes[pe_index].last_process = Some(proc_index);
        }
        if self.pes[pe_index].is_env {
            cycles = 0;
        }
        let duration_ns = self.pes[pe_index].descriptor.ns_for_cycles(cycles);
        let end_ns = start_ns + duration_ns;

        // Persist process state.
        self.processes[proc_index].vars = env.vars;
        self.processes[proc_index].state = to_state;

        // ---- Effects ---------------------------------------------------
        for effect in effects {
            match effect {
                Effect::Send {
                    port,
                    signal,
                    values,
                } => {
                    self.dispatch_send(proc_index, &port, signal, values, end_ns, faults, tracer);
                }
                Effect::SetTimer { name, duration } => {
                    let generation = {
                        let gens = &mut self.processes[proc_index].timer_gens;
                        let g = gens.entry(name.clone()).or_insert(0);
                        *g += 1;
                        *g
                    };
                    let duration = if faults.is_active() {
                        duration + faults.timer_jitter_ns(duration)
                    } else {
                        duration
                    };
                    self.schedule(
                        end_ns + duration,
                        EventKind::TimerFired {
                            target: proc_index,
                            name,
                            generation,
                        },
                    );
                }
                Effect::CancelTimer { name } => {
                    let gens = &mut self.processes[proc_index].timer_gens;
                    *gens.entry(name).or_insert(0) += 1;
                }
                Effect::Log(message) => {
                    self.log.push(LogRecord::User {
                        time_ns: end_ns,
                        process: self.processes[proc_index].name.clone(),
                        message,
                    });
                }
                Effect::Count { counter, amount } => {
                    self.log.push(LogRecord::Count {
                        time_ns: end_ns,
                        process: self.processes[proc_index].name.clone(),
                        counter,
                        amount,
                    });
                }
                Effect::Compute { .. } => {}
            }
        }

        let (from_name, to_name) = (
            machine.state(from_state).name().to_owned(),
            machine.state(to_state).name().to_owned(),
        );
        self.finish_step(
            proc_index,
            pe_index,
            start_ns,
            cycles,
            from_state,
            to_state,
            &trigger_label,
            tracer,
        );
        // Re-use names for the EXEC record written by finish_step: done
        // there to keep record layout in one place.
        let _ = (from_name, to_name);
        Ok(())
    }

    #[allow(clippy::too_many_arguments)]
    fn finish_step<T: TraceSink>(
        &mut self,
        proc_index: ProcIndex,
        pe_index: PeIndex,
        start_ns: u64,
        cycles: u64,
        from_state: StateId,
        to_state: StateId,
        trigger: &str,
        tracer: &mut T,
    ) {
        let duration_ns = self.pes[pe_index].descriptor.ns_for_cycles(cycles);
        let end_ns = start_ns + duration_ns;
        if tracer.enabled() {
            let pe_name = &self.pes[pe_index].descriptor.name;
            if self.config.trace.step_spans {
                let track = tracer.track(&format!("pe/{pe_name}"), Clock::Sim);
                tracer.span(
                    track,
                    &format!("{} [{trigger}]", self.processes[proc_index].name),
                    start_ns,
                    duration_ns,
                );
            }
            tracer.observe("sim.step_duration_ns", duration_ns);
            tracer.add(&format!("pe.{pe_name}.busy_ns"), duration_ns);
        }
        let machine = self
            .system
            .model
            .state_machine(self.processes[proc_index].sm);
        self.log.push(LogRecord::Exec {
            time_ns: start_ns,
            process: self.processes[proc_index].name.clone(),
            cycles,
            duration_ns,
            from_state: machine.state(from_state).name().to_owned(),
            to_state: machine.state(to_state).name().to_owned(),
            trigger: trigger.to_owned(),
        });
        let stats = &mut self.processes[proc_index].stats;
        stats.steps += 1;
        stats.cycles += cycles;
        stats.busy_ns += duration_ns;
        if !self.pes[pe_index].is_env {
            // Useful work for the watchdog's quiescence deadline.
            self.last_useful_ns = self.last_useful_ns.max(start_ns);
        }
        let pe = &mut self.pes[pe_index];
        pe.free_at_ns = end_ns;
        pe.busy_ns += duration_ns;
        pe.busy_cycles += cycles;
        self.schedule(end_ns, EventKind::PeFree { pe: pe_index });
    }

    /// Routes a sent signal to its receivers and schedules deliveries,
    /// applying the fault model's per-transfer verdict to HIBI-borne
    /// signals.
    #[allow(clippy::too_many_arguments)]
    fn dispatch_send<F: FaultModel, T: TraceSink>(
        &mut self,
        sender: ProcIndex,
        port_name: &str,
        signal: SignalId,
        values: Vec<Value>,
        send_time_ns: u64,
        faults: &mut F,
        tracer: &mut T,
    ) {
        let sender_instance = self.processes[sender].instance;
        let sender_class = self.processes[sender].class;
        let Some(port) = self.system.model.find_port(sender_class, port_name) else {
            self.log.push(LogRecord::Lost {
                time_ns: send_time_ns,
                process: self.processes[sender].name.clone(),
                port: port_name.to_owned(),
                signal: self.system.model.signal(signal).name().to_owned(),
            });
            return;
        };
        let receivers: Vec<_> = self
            .routing
            .receivers(sender_instance, port, signal)
            .to_vec();
        if receivers.is_empty() {
            self.log.push(LogRecord::Lost {
                time_ns: send_time_ns,
                process: self.processes[sender].name.clone(),
                port: port_name.to_owned(),
                signal: self.system.model.signal(signal).name().to_owned(),
            });
            return;
        }
        let bytes: u64 =
            self.config.header_bytes + values.iter().map(|v| v.size_bytes() as u64).sum::<u64>();
        self.processes[sender].stats.signals_sent += receivers.len() as u64;
        self.processes[sender].stats.bytes_sent += bytes * receivers.len() as u64;
        let signal_name = self.system.model.signal(signal).name().to_owned();
        for endpoint in receivers {
            let Some(&target) = self.by_instance.get(&endpoint.instance) else {
                continue;
            };
            let sender_pe = self.processes[sender].pe;
            let target_pe = self.processes[target].pe;
            let mut values = values.clone();
            let delivery_ns = if sender_pe == target_pe {
                send_time_ns + self.config.local_latency_ns
            } else if self.pes[sender_pe].is_env || self.pes[target_pe].is_env {
                send_time_ns + self.config.env_latency_ns
            } else {
                match (self.pes[sender_pe].agent, self.pes[target_pe].agent) {
                    (Some(from), Some(to)) => {
                        let result =
                            self.network
                                .transfer_with(from, to, bytes, send_time_ns, tracer);
                        if !result.routed {
                            // The network tallies the count; the log
                            // records which signal fell back.
                            self.log.push(LogRecord::Fault {
                                time_ns: send_time_ns,
                                process: self.processes[sender].name.clone(),
                                kind: "unroutable".into(),
                                signal: signal_name.clone(),
                            });
                        }
                        if faults.is_active() {
                            // Only HIBI-borne signals are subject to the
                            // channel fault process; local and environment
                            // deliveries are memory copies.
                            match faults.transfer_verdict(
                                send_time_ns,
                                bytes,
                                result.segments_traversed,
                            ) {
                                TransferVerdict::Deliver => {}
                                TransferVerdict::Corrupt => {
                                    corrupt_values(&mut values, faults);
                                    self.fault_tally.corrupted += 1;
                                    tracer.add("sim.faults_corrupted", 1);
                                    self.log.push(LogRecord::Fault {
                                        time_ns: send_time_ns,
                                        process: self.processes[sender].name.clone(),
                                        kind: "corrupt".into(),
                                        signal: signal_name.clone(),
                                    });
                                }
                                TransferVerdict::Drop => {
                                    self.fault_tally.dropped += 1;
                                    tracer.add("sim.faults_dropped", 1);
                                    self.log.push(LogRecord::Fault {
                                        time_ns: send_time_ns,
                                        process: self.processes[sender].name.clone(),
                                        kind: "drop".into(),
                                        signal: signal_name.clone(),
                                    });
                                    continue;
                                }
                            }
                        }
                        result.completion_ns
                    }
                    _ => send_time_ns + self.config.local_latency_ns,
                }
            };
            let sender_name = self.processes[sender].name.clone();
            self.schedule(
                delivery_ns,
                EventKind::Deliver {
                    target,
                    entry_kind: DeliverKind::Signal {
                        signal,
                        values,
                        sender_name,
                        bytes,
                        sent_at_ns: send_time_ns,
                    },
                },
            );
        }
    }

    fn runtime_error(&self, proc_index: ProcIndex, err: tut_uml::Error) -> SimError {
        SimError::Runtime {
            process: self.processes[proc_index].name.clone(),
            message: err.to_string(),
        }
    }

    /// Up to three processes most likely responsible for a livelock:
    /// deepest input queues first, then most steps executed, then name.
    fn hot_processes(&self) -> Vec<String> {
        let mut ranked: Vec<&ProcessRt> = self.processes.iter().collect();
        ranked.sort_by(|a, b| {
            b.queue
                .len()
                .cmp(&a.queue.len())
                .then(b.stats.steps.cmp(&a.stats.steps))
                .then(a.name.cmp(&b.name))
        });
        ranked.into_iter().take(3).map(|p| p.name.clone()).collect()
    }

    fn watchdog_expired(&self, time_ns: u64, events: u64, limit: &str) -> SimError {
        SimError::WatchdogExpired {
            time_ns,
            events,
            limit: limit.to_owned(),
            hot_processes: self.hot_processes(),
        }
    }

    fn into_report(self) -> SimReport {
        let mut report = SimReport {
            end_time_ns: self.now_ns,
            total_steps: self.steps,
            log: self.log,
            processes: Vec::new(),
            pes: Vec::new(),
            faults: FaultTally {
                unroutable: self.network.unroutable_transfers(),
                ..self.fault_tally
            },
        };
        for process in self.processes {
            report.processes.push((process.name, process.stats));
        }
        for pe in self.pes {
            report.pes.push((
                pe.descriptor.name.clone(),
                PeStats {
                    busy_ns: pe.busy_ns,
                    busy_cycles: pe.busy_cycles,
                    is_env: pe.is_env,
                },
            ));
        }
        report
    }
}

/// Corrupts an in-flight payload: flips one bit of the first `Bytes`
/// value, or perturbs the first `Int` through its little-endian byte
/// image when the signal carries no raw bytes. Signals with no
/// corruptible value (e.g. `Bool`/`Str` only) keep the fault record but
/// arrive unchanged.
fn corrupt_values<F: FaultModel>(values: &mut [Value], faults: &mut F) {
    if let Some(bytes) = values.iter_mut().find_map(|v| match v {
        Value::Bytes(b) if !b.is_empty() => Some(b),
        _ => None,
    }) {
        faults.corrupt_payload(bytes);
        return;
    }
    if let Some(value) = values.iter_mut().find(|v| matches!(v, Value::Int(_))) {
        if let Value::Int(n) = value {
            let mut image = n.to_le_bytes();
            faults.corrupt_payload(&mut image);
            *value = Value::Int(i64::from_le_bytes(image));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tut_faults::{FaultConfig, FaultPlan, Outage};
    use tut_profile::application::ProcessType;
    use tut_profile::platform::ComponentKind;
    use tut_profile_core::TagValue;
    use tut_uml::action::{BinOp, CostClass, Expr, Statement};
    use tut_uml::statemachine::StateMachine;
    use tut_uml::value::DataType;

    /// A ping-pong system: two processes exchanging a counter signal,
    /// mapped to two CPUs on one HIBI segment.
    fn ping_pong(count: i64, same_pe: bool) -> SystemModel {
        let mut s = SystemModel::new("PingPong");
        let top = s.model.add_class("Top");
        s.apply(top, |t| t.application).unwrap();

        let ping_sig = s.model.add_signal("Ping");
        s.model.signal_mut(ping_sig).add_param("n", DataType::Int);
        let pong_sig = s.model.add_signal("Pong");
        s.model.signal_mut(pong_sig).add_param("n", DataType::Int);

        // Pinger: starts the exchange, counts down.
        let pinger = s.model.add_class("Pinger");
        s.apply(pinger, |t| t.application_component).unwrap();
        let p_out = s.model.add_port(pinger, "out");
        let p_in = s.model.add_port(pinger, "in");
        s.model.port_mut(p_out).add_required(ping_sig);
        s.model.port_mut(p_in).add_provided(pong_sig);
        let mut sm = StateMachine::new("PingerB");
        let idle = sm.add_state_with_entry(
            "Idle",
            vec![Statement::Send {
                port: "out".into(),
                signal: ping_sig,
                args: vec![Expr::int(count)],
            }],
        );
        let wait = sm.add_state("Wait");
        sm.set_initial(idle);
        sm.add_transition(idle, wait, Trigger::Completion, None, vec![]);
        // On Pong with n > 0 send another Ping.
        sm.add_transition(
            wait,
            wait,
            Trigger::Signal(pong_sig),
            Some(Expr::param("n").bin(BinOp::Gt, Expr::int(0))),
            vec![
                Statement::Compute {
                    class: CostClass::Control,
                    amount: Expr::int(10),
                },
                Statement::Send {
                    port: "out".into(),
                    signal: ping_sig,
                    args: vec![Expr::param("n")],
                },
            ],
        );
        s.model.add_state_machine(pinger, sm);

        // Ponger: replies with n-1.
        let ponger = s.model.add_class("Ponger");
        s.apply(ponger, |t| t.application_component).unwrap();
        let q_in = s.model.add_port(ponger, "in");
        let q_out = s.model.add_port(ponger, "out");
        s.model.port_mut(q_in).add_provided(ping_sig);
        s.model.port_mut(q_out).add_required(pong_sig);
        let mut sm = StateMachine::new("PongerB");
        let st = sm.add_state("S");
        sm.set_initial(st);
        sm.add_transition(
            st,
            st,
            Trigger::Signal(ping_sig),
            None,
            vec![
                Statement::Compute {
                    class: CostClass::Control,
                    amount: Expr::int(50),
                },
                Statement::Send {
                    port: "out".into(),
                    signal: pong_sig,
                    args: vec![Expr::param("n").bin(BinOp::Sub, Expr::int(1))],
                },
            ],
        );
        s.model.add_state_machine(ponger, sm);

        let ping_part = s.model.add_part(top, "pinger", pinger);
        let pong_part = s.model.add_part(top, "ponger", ponger);
        for part in [ping_part, pong_part] {
            s.apply(part, |t| t.application_process).unwrap();
        }
        s.model.add_connector(
            top,
            "ping_wire",
            tut_uml::model::ConnectorEnd {
                part: Some(ping_part),
                port: p_out,
            },
            tut_uml::model::ConnectorEnd {
                part: Some(pong_part),
                port: q_in,
            },
        );
        s.model.add_connector(
            top,
            "pong_wire",
            tut_uml::model::ConnectorEnd {
                part: Some(pong_part),
                port: q_out,
            },
            tut_uml::model::ConnectorEnd {
                part: Some(ping_part),
                port: p_in,
            },
        );

        // Groups + platform + mapping.
        let g1 = s.add_process_group("group1", false, ProcessType::General);
        let g2 = s.add_process_group("group2", false, ProcessType::General);
        s.assign_to_group(ping_part, g1);
        s.assign_to_group(pong_part, g2);

        let platform = s.model.add_class("Platform");
        s.apply(platform, |t| t.platform).unwrap();
        let nios = s.add_platform_component("Nios", ComponentKind::General, 50, 2.0, 0.5);
        let cpu1 = s.add_platform_instance(platform, "cpu1", nios, 1, 0);
        let cpu2 = s.add_platform_instance(platform, "cpu2", nios, 2, 0);

        // One segment with two wrappers.
        let seg_class = s.model.add_class("Seg");
        s.apply(seg_class, |t| t.hibi_segment).unwrap();
        let wrap_class = s.model.add_class("Wrap");
        s.apply_with(
            wrap_class,
            |t| t.hibi_wrapper,
            [("Address", TagValue::Int(16))],
        )
        .unwrap();
        let wrap_class2 = s.model.add_class("Wrap2");
        s.apply_with(
            wrap_class2,
            |t| t.hibi_wrapper,
            [("Address", TagValue::Int(32))],
        )
        .unwrap();
        let seg = s.model.add_part(platform, "seg", seg_class);
        let seg_port = s.model.add_port(seg_class, "agents");
        let nios_port = s.model.add_port(nios, "hibi");
        for (cpu, wc, name) in [(cpu1, wrap_class, "w1"), (cpu2, wrap_class2, "w2")] {
            let wp = s.model.add_port(wc, "pe");
            let wb = s.model.add_port(wc, "bus");
            let w = s.model.add_part(platform, name, wc);
            s.model.add_connector(
                platform,
                format!("{name}_pe"),
                tut_uml::model::ConnectorEnd {
                    part: Some(w),
                    port: wp,
                },
                tut_uml::model::ConnectorEnd {
                    part: Some(cpu),
                    port: nios_port,
                },
            );
            s.model.add_connector(
                platform,
                format!("{name}_bus"),
                tut_uml::model::ConnectorEnd {
                    part: Some(w),
                    port: wb,
                },
                tut_uml::model::ConnectorEnd {
                    part: Some(seg),
                    port: seg_port,
                },
            );
        }

        s.map_group(g1, cpu1, false);
        if same_pe {
            s.map_group(g2, cpu1, false);
        } else {
            s.map_group(g2, cpu2, false);
        }
        s
    }

    #[test]
    fn ping_pong_completes_expected_rounds() {
        let system = ping_pong(5, false);
        let sim = Simulation::from_system(&system, SimConfig::default()).unwrap();
        let report = sim.run().unwrap();
        // 5 pings, 5 pongs (n = 5..1), final pong n=0 consumed without send.
        let sig_count = report
            .log
            .records
            .iter()
            .filter(|r| matches!(r, LogRecord::Sig { .. }))
            .count();
        assert_eq!(sig_count, 10, "log: {}", report.log.to_text());
        // Ponger did 5 compute-heavy steps.
        let ponger = report
            .processes
            .iter()
            .find(|(name, _)| name == "ponger")
            .unwrap();
        assert_eq!(ponger.1.signals_received, 5);
        assert!(ponger.1.cycles > 0);
        assert!(report.end_time_ns > 0);
    }

    #[test]
    fn same_pe_mapping_avoids_the_bus() {
        let cross = Simulation::from_system(&ping_pong(20, false), SimConfig::default())
            .unwrap()
            .run()
            .unwrap();
        let local = Simulation::from_system(&ping_pong(20, true), SimConfig::default())
            .unwrap()
            .run()
            .unwrap();
        // Paper §4.1: grouping to minimise communication between PEs
        // improves performance; local mapping should finish sooner.
        assert!(
            local.end_time_ns < cross.end_time_ns,
            "local {} vs cross {}",
            local.end_time_ns,
            cross.end_time_ns
        );
    }

    #[test]
    fn deterministic_runs_produce_identical_logs() {
        let a = Simulation::from_system(&ping_pong(10, false), SimConfig::default())
            .unwrap()
            .run()
            .unwrap();
        let b = Simulation::from_system(&ping_pong(10, false), SimConfig::default())
            .unwrap()
            .run()
            .unwrap();
        assert_eq!(a.log, b.log);
        assert_eq!(a.end_time_ns, b.end_time_ns);
    }

    #[test]
    fn missing_application_rejected() {
        let s = SystemModel::new("Empty");
        assert!(matches!(
            Simulation::from_system(&s, SimConfig::default()),
            Err(SimError::NoApplication)
        ));
    }

    #[test]
    fn log_round_trips_through_text() {
        let report = Simulation::from_system(&ping_pong(3, false), SimConfig::default())
            .unwrap()
            .run()
            .unwrap();
        let text = report.log.to_text();
        let parsed = SimLog::parse(&text).unwrap();
        assert_eq!(parsed, report.log);
    }

    #[test]
    fn step_bound_stops_runaway_models() {
        let config = SimConfig {
            max_steps: 7,
            ..SimConfig::default()
        };
        let report = Simulation::from_system(&ping_pong(1_000_000, false), config)
            .unwrap()
            .run()
            .unwrap();
        assert!(report.total_steps <= 7);
    }

    #[test]
    fn zero_rate_fault_plan_matches_fault_free_run() {
        let baseline = Simulation::from_system(&ping_pong(10, false), SimConfig::default())
            .unwrap()
            .run()
            .unwrap();
        let mut plan = FaultPlan::new(FaultConfig::default());
        let faulted = Simulation::from_system(&ping_pong(10, false), SimConfig::default())
            .unwrap()
            .run_with_faults(&mut plan, &mut NoopSink)
            .unwrap();
        assert_eq!(baseline.log.to_text(), faulted.log.to_text());
        assert_eq!(baseline.end_time_ns, faulted.end_time_ns);
        assert_eq!(faulted.faults, FaultTally::default());
    }

    #[test]
    fn dropped_transfers_are_recorded_and_tallied() {
        let mut plan = FaultPlan::new(FaultConfig {
            drop_per_hop: 1.0,
            ..FaultConfig::default()
        });
        let report = Simulation::from_system(&ping_pong(10, false), SimConfig::default())
            .unwrap()
            .run_with_faults(&mut plan, &mut NoopSink)
            .unwrap();
        // The very first ping is dropped on the bus, so the exchange
        // dies immediately.
        assert_eq!(report.faults.dropped, 1);
        let drops = report
            .log
            .records
            .iter()
            .filter(|r| matches!(r, LogRecord::Fault { kind, .. } if kind == "drop"))
            .count();
        assert_eq!(drops, 1);
        let sigs = report
            .log
            .records
            .iter()
            .filter(|r| matches!(r, LogRecord::Sig { .. }))
            .count();
        assert_eq!(sigs, 0, "no signal survives a 100% drop channel");
    }

    #[test]
    fn corrupted_transfers_mutate_the_payload_in_flight() {
        let config = SimConfig {
            max_steps: 400,
            ..SimConfig::default()
        };
        let mut plan = FaultPlan::new(FaultConfig::with_ber(7, 1.0));
        let report = Simulation::from_system(&ping_pong(3, false), config)
            .unwrap()
            .run_with_faults(&mut plan, &mut NoopSink)
            .unwrap();
        assert!(report.faults.corrupted > 0);
        assert_eq!(report.faults.injected(), report.faults.corrupted);
        let faults = report
            .log
            .records
            .iter()
            .filter(|r| matches!(r, LogRecord::Fault { kind, .. } if kind == "corrupt"))
            .count() as u64;
        assert_eq!(faults, report.faults.corrupted);
    }

    #[test]
    fn event_budget_watchdog_converts_storms_into_errors() {
        let config = SimConfig {
            watchdog: crate::config::Watchdog {
                max_events: 50,
                quiescence_ns: 0,
            },
            ..SimConfig::default()
        };
        let err = Simulation::from_system(&ping_pong(1_000_000, false), config)
            .unwrap()
            .run()
            .unwrap_err();
        match err {
            SimError::WatchdogExpired {
                limit,
                events,
                hot_processes,
                ..
            } => {
                assert_eq!(limit, "event-budget");
                assert_eq!(events, 51);
                assert!(!hot_processes.is_empty());
            }
            other => panic!("expected WatchdogExpired, got {other:?}"),
        }
    }

    #[test]
    fn finite_outage_delays_but_does_not_lose_work() {
        let clean = Simulation::from_system(&ping_pong(5, false), SimConfig::default())
            .unwrap()
            .run()
            .unwrap();
        // cpu2 (the ponger's element) is down for the first 50 µs.
        let mut plan = FaultPlan::new(FaultConfig {
            outages: vec![Outage {
                pe: "cpu2".into(),
                from_ns: 0,
                until_ns: 50_000,
            }],
            ..FaultConfig::default()
        });
        let stalled = Simulation::from_system(&ping_pong(5, false), SimConfig::default())
            .unwrap()
            .run_with_faults(&mut plan, &mut NoopSink)
            .unwrap();
        let sigs = |r: &SimReport| {
            r.log
                .records
                .iter()
                .filter(|rec| matches!(rec, LogRecord::Sig { .. }))
                .count()
        };
        assert_eq!(sigs(&clean), sigs(&stalled), "no signal is lost");
        assert!(
            stalled.end_time_ns > clean.end_time_ns,
            "outage defers completion: {} vs {}",
            stalled.end_time_ns,
            clean.end_time_ns
        );
    }

    /// An environment traffic source driving a sink whose element never
    /// comes back: events keep flowing but no useful work happens.
    fn env_driven_sink() -> SystemModel {
        let mut s = SystemModel::new("Stall");
        let top = s.model.add_class("Top");
        s.apply(top, |t| t.application).unwrap();
        let tick = s.model.add_signal("Tick");

        let ticker = s.model.add_class("Ticker");
        s.apply(ticker, |t| t.application_component).unwrap();
        let t_out = s.model.add_port(ticker, "out");
        s.model.port_mut(t_out).add_required(tick);
        let mut sm = StateMachine::new("TickerB");
        let run = sm.add_state_with_entry(
            "Run",
            vec![Statement::SetTimer {
                name: "t".into(),
                duration: Expr::int(500),
            }],
        );
        sm.set_initial(run);
        sm.add_transition(
            run,
            run,
            Trigger::Timer("t".into()),
            None,
            vec![
                Statement::Send {
                    port: "out".into(),
                    signal: tick,
                    args: vec![],
                },
                Statement::SetTimer {
                    name: "t".into(),
                    duration: Expr::int(500),
                },
            ],
        );
        s.model.add_state_machine(ticker, sm);

        let sink = s.model.add_class("Sink");
        s.apply(sink, |t| t.application_component).unwrap();
        let s_in = s.model.add_port(sink, "in");
        s.model.port_mut(s_in).add_provided(tick);
        let mut sm = StateMachine::new("SinkB");
        let st = sm.add_state("S");
        sm.set_initial(st);
        sm.add_transition(
            st,
            st,
            Trigger::Signal(tick),
            None,
            vec![Statement::Compute {
                class: CostClass::Control,
                amount: Expr::int(10),
            }],
        );
        s.model.add_state_machine(sink, sm);

        let tick_part = s.model.add_part(top, "ticker", ticker);
        let sink_part = s.model.add_part(top, "sink", sink);
        for part in [tick_part, sink_part] {
            s.apply(part, |t| t.application_process).unwrap();
        }
        s.model.add_connector(
            top,
            "wire",
            tut_uml::model::ConnectorEnd {
                part: Some(tick_part),
                port: t_out,
            },
            tut_uml::model::ConnectorEnd {
                part: Some(sink_part),
                port: s_in,
            },
        );

        // Only the sink is mapped; the ticker stays on the environment
        // element (a traffic source outside the platform).
        let g1 = s.add_process_group("group1", false, ProcessType::General);
        s.assign_to_group(sink_part, g1);
        let platform = s.model.add_class("Platform");
        s.apply(platform, |t| t.platform).unwrap();
        let nios = s.add_platform_component("Nios", ComponentKind::General, 50, 2.0, 0.5);
        let cpu1 = s.add_platform_instance(platform, "cpu1", nios, 1, 0);
        s.map_group(g1, cpu1, false);
        s
    }

    #[test]
    fn quiescence_watchdog_names_the_stalled_process() {
        let config = SimConfig {
            watchdog: crate::config::Watchdog {
                max_events: 0,
                quiescence_ns: 10_000,
            },
            ..SimConfig::default()
        };
        let mut plan = FaultPlan::new(FaultConfig {
            outages: vec![Outage {
                pe: "cpu1".into(),
                from_ns: 0,
                until_ns: u64::MAX,
            }],
            ..FaultConfig::default()
        });
        let err = Simulation::from_system(&env_driven_sink(), config)
            .unwrap()
            .run_with_faults(&mut plan, &mut NoopSink)
            .unwrap_err();
        match err {
            SimError::WatchdogExpired {
                limit,
                time_ns,
                hot_processes,
                ..
            } => {
                assert_eq!(limit, "quiescence");
                assert!(time_ns > 10_000);
                assert_eq!(hot_processes.first().map(String::as_str), Some("sink"));
            }
            other => panic!("expected WatchdogExpired, got {other:?}"),
        }
        // Without the outage the same watchdog stays quiet.
        let config = SimConfig {
            watchdog: crate::config::Watchdog {
                max_events: 0,
                quiescence_ns: 10_000,
            },
            ..SimConfig::default()
        };
        let report = Simulation::from_system(&env_driven_sink(), config)
            .unwrap()
            .run()
            .unwrap();
        assert!(report.total_steps > 0);
    }
}
