//! Conservative parallel discrete-event kernel.
//!
//! The simulation is partitioned into **logical processes** (LPs) along
//! the platform mapping: every set of HIBI segments that can exchange
//! traffic forms one LP, and the environment plus all unattached
//! elements form LP 0. Cross-LP signals never ride the bus (routable
//! pairs are merged into one LP), so the minimum cross-LP delivery
//! latency — the engine's fixed local/environment latencies — is a
//! sound **lookahead** bound.
//!
//! LPs are grouped into contiguous **shards**, one per worker thread.
//! Inside a shard the worker runs its LPs like a miniature serial
//! engine: it always executes the earliest `(time, key)` event across
//! all of its LP queues, and a cross-LP creation whose home LP lives in
//! the same shard is forwarded directly into the sibling queue — no
//! barrier needed. Only creations that cross a *shard* boundary become
//! exports. A key is either a globally-finalised sequence number
//! (`Final`) or a shard-monotone creation ordinal (`Fresh`); every
//! fresh event was created after every finalised one it can tie with,
//! so `Final < Fresh` is exactly the serial tie-break, and fresh
//! ordinals are assigned in shard execution order, which matches the
//! order the replay below assigns real sequence numbers.
//!
//! Each round the coordinator grants every shard an **adaptive safe
//! window**: shard `s` may run up to `min` over the other shards of
//! their earliest pending event time, plus the lookahead. When the stub
//! heap is sparse this coalesces what a fixed `lookahead_ns` march
//! would split into thousands of windows into a handful. Conservatism
//! is preserved because any event another shard can ever send here is
//! at least lookahead later than that shard's earliest pending work,
//! and a shard that *exports* clamps its own window to `export time +
//! lookahead`, the earliest instant the rest of the system could react
//! back. The limit case is a single worker: its one shard owns every
//! LP, the grant covers the whole horizon in one window, and the
//! shard's miniature serial engine *is* the serial engine — so the
//! kernel runs it directly, with no LP split, replay or merge, and the
//! only residual cost is the window tally.
//!
//! After each round the coordinator **replays the skeleton** of what
//! the serial engine would have done: it pops its stub heap in global
//! `(time, seq)` order, matches each stub against the owning LP's event
//! record, assigns real sequence numbers to that event's creations in
//! creation order, and appends the event's log extent to the merge
//! plan. Shards may legitimately run *ahead* of the replay (their
//! records simply wait in per-LP carryover buffers until the global
//! order catches up), and the replay stops at the first stub whose
//! shard has not yet covered it. This reproduces the serial engine's
//! sequence numbering — and therefore its log — exactly, which is what
//! makes the merged [`crate::SimLog`] bit-identical to a serial run at
//! any thread count.
//!
//! Workers exchange one message per shard per window — a `Vec`-backed
//! batch of event records, creations and cross-shard exports whose
//! buffers are recycled through a free-list — and the coordinator skips
//! dispatching shards that can make no progress this round.
//!
//! Whenever the conservative contract cannot be kept cheaply (armed
//! watchdog, step budget exhausted mid-replay, a runtime error inside
//! an LP, or a replay mismatch), the kernel discards the parallel
//! attempt and reruns the pristine simulation serially, so callers
//! always observe exact serial semantics.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};
use std::sync::mpsc;
use std::sync::Arc;

use tut_faults::{FaultModel, NoFaults};
use tut_trace::{perf, NoopSink};

use crate::engine::{EventKind, Simulation};
use crate::error::SimError;
use crate::intern::Sym;
use crate::report::{FaultTally, PeStats, SimReport};

/// Event ordering key inside one LP queue.
///
/// Variant order is load-bearing: `Final` (a globally-assigned sequence
/// number from the replay or the initial build) always compares before
/// `Fresh` (a shard-monotone creation ordinal), because every fresh
/// event was created after every finalised one, and two fresh events
/// compare by creation order — exactly the relative order of the
/// sequence numbers the replay will eventually assign them.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug)]
enum LpKey {
    Final(u64),
    Fresh(u64),
}

/// One pending event inside an LP's queue.
#[derive(Clone, Debug)]
struct LpEvent {
    time_ns: u64,
    key: LpKey,
    kind: EventKind,
}

impl PartialEq for LpEvent {
    fn eq(&self, other: &LpEvent) -> bool {
        self.cmp(other) == std::cmp::Ordering::Equal
    }
}

impl Eq for LpEvent {}

impl PartialOrd for LpEvent {
    fn partial_cmp(&self, other: &LpEvent) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for LpEvent {
    fn cmp(&self, other: &LpEvent) -> std::cmp::Ordering {
        (self.time_ns, self.key).cmp(&(other.time_ns, other.key))
    }
}

/// Per-processed-event bookkeeping an LP hands to the coordinator.
#[derive(Clone, Copy, Debug)]
struct EventRecord {
    time_ns: u64,
    /// Events this one scheduled (children), in creation order.
    children: u32,
    /// Log records this event appended.
    log_records: u32,
    /// Run-to-completion steps this event executed.
    steps: u32,
}

/// A cross-shard creation whose payload must be shipped to its home LP.
#[derive(Clone, Debug)]
struct Export {
    /// Run-cumulative creation index of the creating LP; the event time
    /// lives in that LP's `children` entry at this index.
    created: u64,
    kind: EventKind,
}

/// Everything one LP produced in one window, drained at the barrier.
/// The inner buffers travel coordinator → worker → coordinator and are
/// recycled through a free-list, so steady-state windows allocate
/// nothing.
#[derive(Default, Debug)]
struct WindowOut {
    records: Vec<EventRecord>,
    /// `(home LP, event time)` of every creation, in creation order.
    children: Vec<(u32, u64)>,
    exports: Vec<Export>,
}

/// The LP context attached to a [`Simulation`] clone while it acts as
/// one logical process of a parallel run. [`Simulation::schedule`]
/// diverts into [`LpCtx::schedule`]; the shard executor drains the
/// queue through [`LpCtx::peek_key`] / [`Simulation::lp_step`].
#[derive(Clone, Debug)]
pub(crate) struct LpCtx {
    my_lp: u32,
    my_shard: u32,
    lp_of_proc: Arc<Vec<u32>>,
    lp_of_pe: Arc<Vec<u32>>,
    shard_of_lp: Arc<Vec<u32>>,
    heap: BinaryHeap<Reverse<LpEvent>>,
    /// Next fresh creation ordinal; shard-monotone, synced by the shard
    /// executor around every event so ordinals order creations across
    /// the whole shard.
    next_fresh: u64,
    /// `(home LP, time)` of every event scheduled this window.
    children: Vec<(u32, u64)>,
    /// Creations drained in previous windows; `children_base + i` is
    /// the run-cumulative index of window-local creation `i`.
    children_base: u64,
    /// Cross-LP creations staying inside this shard, delivered into the
    /// sibling queue by the executor after the event completes:
    /// `(home LP, time, fresh ordinal, payload)`.
    outbox: Vec<(u32, u64, u64, EventKind)>,
    exports: Vec<Export>,
    records: Vec<EventRecord>,
}

impl LpCtx {
    fn new(
        my_lp: u32,
        my_shard: u32,
        lp_of_proc: Arc<Vec<u32>>,
        lp_of_pe: Arc<Vec<u32>>,
        shard_of_lp: Arc<Vec<u32>>,
    ) -> LpCtx {
        LpCtx {
            my_lp,
            my_shard,
            lp_of_proc,
            lp_of_pe,
            shard_of_lp,
            heap: BinaryHeap::new(),
            next_fresh: 0,
            children: Vec::new(),
            children_base: 0,
            outbox: Vec::new(),
            exports: Vec::new(),
            records: Vec::new(),
        }
    }

    /// Seeds an already-finalised event (initial queue or import).
    fn push_final(&mut self, time_ns: u64, seq: u64, kind: EventKind) {
        self.heap.push(Reverse(LpEvent {
            time_ns,
            key: LpKey::Final(seq),
            kind,
        }));
    }

    /// Delivers a same-shard forward from a sibling LP.
    fn push_fresh(&mut self, time_ns: u64, ord: u64, kind: EventKind) {
        self.heap.push(Reverse(LpEvent {
            time_ns,
            key: LpKey::Fresh(ord),
            kind,
        }));
    }

    /// Records a creation: same-LP events join the queue under a
    /// tentative `Fresh` key, same-shard cross-LP events go to the
    /// outbox for local forwarding, cross-shard events become exports.
    pub(crate) fn schedule(&mut self, time_ns: u64, kind: EventKind) {
        let home = kind.home_lp(&self.lp_of_proc, &self.lp_of_pe);
        let created = self.children_base + self.children.len() as u64;
        self.children.push((home, time_ns));
        let ord = self.next_fresh;
        self.next_fresh += 1;
        if home == self.my_lp {
            self.push_fresh(time_ns, ord, kind);
        } else if self.shard_of_lp[home as usize] == self.my_shard {
            self.outbox.push((home, time_ns, ord, kind));
        } else {
            self.exports.push(Export { created, kind });
        }
    }

    /// `(time, key)` of the next queued event, if any.
    fn peek_key(&self) -> Option<(u64, LpKey)> {
        self.heap.peek().map(|entry| (entry.0.time_ns, entry.0.key))
    }

    /// Pops the next queued event in `(time, key)` order.
    pub(crate) fn pop_next(&mut self) -> Option<(u64, EventKind)> {
        self.heap.pop().map(|entry| (entry.0.time_ns, entry.0.kind))
    }

    /// Number of creations recorded so far this window (the mark taken
    /// before an event is handled).
    pub(crate) fn creations(&self) -> usize {
        self.children.len()
    }

    /// Closes the bookkeeping of one processed event.
    pub(crate) fn record_processed(
        &mut self,
        time_ns: u64,
        children_mark: usize,
        log_records: u32,
        steps: u32,
    ) {
        self.records.push(EventRecord {
            time_ns,
            children: (self.children.len() - children_mark) as u32,
            log_records,
            steps,
        });
    }

    /// Drains the window's bookkeeping into a recycled shell and
    /// advances the cumulative creation base.
    fn take_window(&mut self, mut shell: WindowOut) -> WindowOut {
        self.children_base += self.children.len() as u64;
        std::mem::swap(&mut self.records, &mut shell.records);
        std::mem::swap(&mut self.children, &mut shell.children);
        std::mem::swap(&mut self.exports, &mut shell.exports);
        shell
    }

    /// Rewrites `Fresh` keys the coordinator has since finalised to
    /// their assigned global sequence numbers.
    fn patch_fresh(&mut self, finalize: impl Fn(u64) -> Option<u64>) {
        let patched: Vec<Reverse<LpEvent>> = self
            .heap
            .drain()
            .map(|Reverse(mut event)| {
                if let LpKey::Fresh(ord) = event.key {
                    if let Some(seq) = finalize(ord) {
                        event.key = LpKey::Final(seq);
                    }
                }
                Reverse(event)
            })
            .collect();
        self.heap = BinaryHeap::from(patched);
    }
}

/// Union-find with path halving; used to merge HIBI segments into LPs.
struct UnionFind {
    parent: Vec<usize>,
}

impl UnionFind {
    fn new(n: usize) -> UnionFind {
        UnionFind {
            parent: (0..n).collect(),
        }
    }

    fn find(&mut self, mut x: usize) -> usize {
        while self.parent[x] != x {
            self.parent[x] = self.parent[self.parent[x]];
            x = self.parent[x];
        }
        x
    }

    fn union(&mut self, a: usize, b: usize) {
        let ra = self.find(a);
        let rb = self.find(b);
        if ra != rb {
            let (lo, hi) = (ra.min(rb), ra.max(rb));
            self.parent[hi] = lo;
        }
    }
}

/// The LP decomposition of one built simulation.
pub(crate) struct Partition {
    pub(crate) lp_of_proc: Arc<Vec<u32>>,
    pub(crate) lp_of_pe: Arc<Vec<u32>>,
    pub(crate) n_lps: usize,
    /// LPs that own at least one process (the effective parallelism).
    pub(crate) occupied_lps: usize,
    /// Minimum cross-LP delivery latency; `u64::MAX` when no two LPs
    /// communicate at all.
    pub(crate) lookahead_ns: u64,
}

/// Partitions a simulation into LPs along the platform mapping.
///
/// * Attached elements whose segments can route to each other share an
///   LP (they contend for the same bus state).
/// * Attached elements that *communicate* without a route are also
///   merged: the engine delivers such transfers with zero latency,
///   which would break any positive lookahead.
/// * The environment and all unattached elements form LP 0; their
///   deliveries pay the fixed environment/local latency, which bounds
///   the lookahead.
pub(crate) fn build_partition(sim: &Simulation) -> Partition {
    let segments = sim.network.segment_count();

    // One representative agent per segment, for routability probes.
    let mut rep = vec![None; segments];
    for pe in &sim.pes {
        if let Some(agent) = pe.agent {
            let seg = sim.network.segment_of(agent).index();
            rep[seg].get_or_insert(agent);
        }
    }

    // Merge segments that can exchange bus traffic.
    let mut uf = UnionFind::new(segments.max(1));
    for a in 0..segments {
        for b in (a + 1)..segments {
            if let (Some(ra), Some(rb)) = (rep[a], rep[b]) {
                if sim.network.route(ra, rb).is_ok() {
                    uf.union(a, b);
                }
            }
        }
    }

    // Communicating processing-element pairs, from the signal routing
    // table (the application's static communication graph).
    let mut pe_pairs: Vec<(usize, usize)> = Vec::new();
    for (&(instance, _port, _signal), receivers) in sim.routing.iter() {
        let Some(&sender) = sim.by_instance.get(&instance) else {
            continue;
        };
        for endpoint in receivers {
            let Some(&receiver) = sim.by_instance.get(&endpoint.instance) else {
                continue;
            };
            let (pa, pb) = (sim.processes[sender].pe, sim.processes[receiver].pe);
            if pa != pb {
                pe_pairs.push((pa, pb));
            }
        }
    }

    // Merge segment components forced together by unroutable traffic.
    for &(a, b) in &pe_pairs {
        if let (Some(aa), Some(ab)) = (sim.pes[a].agent, sim.pes[b].agent) {
            uf.union(
                sim.network.segment_of(aa).index(),
                sim.network.segment_of(ab).index(),
            );
        }
    }

    // Number the LPs: 0 is the environment/unattached LP, 1.. one per
    // surviving segment component.
    let mut component_lp: HashMap<usize, u32> = HashMap::new();
    let mut lp_of_pe = vec![0u32; sim.pes.len()];
    let mut n_lps = 1usize;
    for (index, pe) in sim.pes.iter().enumerate() {
        if pe.is_env {
            continue;
        }
        if let Some(agent) = pe.agent {
            let root = uf.find(sim.network.segment_of(agent).index());
            let lp = *component_lp.entry(root).or_insert_with(|| {
                let id = n_lps as u32;
                n_lps += 1;
                id
            });
            lp_of_pe[index] = lp;
        }
    }
    let lp_of_proc: Vec<u32> = sim
        .processes
        .iter()
        .map(|process| lp_of_pe[process.pe])
        .collect();

    // Lookahead: the minimum latency of any cross-LP delivery. After
    // the merges above a cross-LP pair never rides the bus, so it pays
    // either the environment latency (an env endpoint) or the fixed
    // local fallback latency.
    let mut lookahead_ns = u64::MAX;
    for &(a, b) in &pe_pairs {
        if lp_of_pe[a] == lp_of_pe[b] {
            continue;
        }
        let latency = if sim.pes[a].is_env || sim.pes[b].is_env {
            sim.config.env_latency_ns
        } else {
            sim.config.local_latency_ns
        };
        lookahead_ns = lookahead_ns.min(latency);
    }

    let mut occupied = vec![false; n_lps];
    for process in &sim.processes {
        occupied[lp_of_pe[process.pe] as usize] = true;
    }
    let occupied_lps = occupied.iter().filter(|o| **o).count();

    Partition {
        lp_of_proc: Arc::new(lp_of_proc),
        lp_of_pe: Arc::new(lp_of_pe),
        n_lps,
        occupied_lps,
        lookahead_ns,
    }
}

/// Resolves a thread-count request: `0` means one thread per available
/// logical CPU.
pub(crate) fn resolve_threads(threads: usize) -> usize {
    if threads > 0 {
        threads
    } else {
        std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1)
    }
}

/// What the coordinator sends a worker each round.
enum WorkerCmd {
    Window {
        /// Exclusive horizon the shard may run to.
        grant_ns: u64,
        /// One inbox per LP of the worker's shard, in shard order.
        inbox: Vec<LpInbox>,
        /// Drained batch shells going back onto the worker's free-list.
        recycle: Vec<WindowOut>,
    },
    Done,
}

/// The barrier patch one LP receives before its next window.
#[derive(Default)]
struct LpInbox {
    /// Newly assigned sequence numbers: `(run-cumulative creation
    /// index, sequence)` of this LP's creations the replay finalised.
    finalized: Vec<(u64, u64)>,
    /// Imported cross-shard events: `(time, seq, kind)`.
    imports: Vec<(u64, u64, EventKind)>,
}

/// One worker's answer to a window command.
struct WindowReply {
    /// Exclusive horizon the shard actually covered (its grant, maybe
    /// clamped by its own cross-shard exports). Everything strictly
    /// below is processed and recorded.
    achieved_ns: u64,
    /// Earliest event still pending in the shard's queues.
    frontier_ns: u64,
    outs: Vec<(usize, WindowOut)>,
}

/// One shard of the parallel run: a slice of LPs executed cooperatively
/// by a single worker, plus the shard-level creation registry.
struct ShardWorker {
    /// `(LP id, its simulation clone)` in shard order.
    slots: Vec<(usize, Simulation)>,
    /// Shard slot of each LP (`None` for LPs of other shards).
    slot_of_lp: Vec<Option<usize>>,
    /// Fresh ordinal → `(creating slot, run-cumulative creation
    /// index)`; the ordinal is the index into this vector.
    births: Vec<(u32, u64)>,
    /// Free-list of drained window batches.
    pool: Vec<WindowOut>,
    outbox_scratch: Vec<(u32, u64, u64, EventKind)>,
    max_time_ns: u64,
    lookahead_ns: u64,
    perf_label: String,
}

impl ShardWorker {
    /// Applies the coordinator's patches and runs one safe window.
    fn window<F: FaultModel>(
        &mut self,
        grant_ns: u64,
        inbox: Vec<LpInbox>,
        recycle: Vec<WindowOut>,
        faults: &mut F,
    ) -> Result<WindowReply, SimError> {
        let _shard_span = perf::enter_named(&self.perf_label);
        self.pool.extend(recycle);
        // Rewrite tentative Fresh keys the replay has since finalised.
        // A heap may hold fresh events created by a sibling LP, so the
        // rewrite runs over every slot whenever anything finalised.
        if inbox.iter().any(|entry| !entry.finalized.is_empty()) {
            let maps: Vec<HashMap<u64, u64>> = inbox
                .iter()
                .map(|entry| entry.finalized.iter().copied().collect())
                .collect();
            let births = &self.births;
            for (_, sim) in &mut self.slots {
                let ctx = sim.lp.as_mut().expect("worker sims carry LP contexts");
                ctx.patch_fresh(|ord| {
                    let (slot, created) = births[ord as usize];
                    maps[slot as usize].get(&created).copied()
                });
            }
        }
        for (slot, entry) in inbox.into_iter().enumerate() {
            let ctx = self.slots[slot].1.lp.as_mut().expect("lp context");
            for (time_ns, seq, kind) in entry.imports {
                ctx.push_final(time_ns, seq, kind);
            }
        }
        self.run_window(grant_ns, faults)
    }

    /// The shard executor: repeatedly runs the earliest `(time, key)`
    /// event across the shard's LP queues, forwarding same-shard
    /// creations locally and clamping the window on cross-shard
    /// exports.
    fn run_window<F: FaultModel>(
        &mut self,
        grant_ns: u64,
        faults: &mut F,
    ) -> Result<WindowReply, SimError> {
        let mut limit = grant_ns;
        loop {
            let mut best: Option<(u64, LpKey, usize)> = None;
            for (slot, (_, sim)) in self.slots.iter().enumerate() {
                if let Some((time_ns, key)) = sim.lp.as_ref().expect("lp context").peek_key() {
                    if best.is_none_or(|(bt, bk, _)| (time_ns, key) < (bt, bk)) {
                        best = Some((time_ns, key, slot));
                    }
                }
            }
            let Some((time_ns, _, slot)) = best else {
                break;
            };
            if time_ns >= limit || time_ns > self.max_time_ns {
                break;
            }
            let (children_mark, children_base, exports_mark);
            {
                let ctx = self.slots[slot].1.lp.as_mut().expect("lp context");
                ctx.next_fresh = self.births.len() as u64;
                children_mark = ctx.children.len();
                children_base = ctx.children_base;
                exports_mark = ctx.exports.len();
            }
            self.slots[slot].1.lp_step(faults)?;
            {
                let ctx = self.slots[slot].1.lp.as_mut().expect("lp context");
                for index in children_mark..ctx.children.len() {
                    self.births
                        .push((slot as u32, children_base + index as u64));
                }
                // A cross-shard export means the rest of the system can
                // react from `child time + lookahead` on; running past
                // that would race the reply.
                for export in &ctx.exports[exports_mark..] {
                    let child = (export.created - children_base) as usize;
                    let child_time = ctx.children[child].1;
                    limit = limit.min(child_time.saturating_add(self.lookahead_ns));
                }
                std::mem::swap(&mut ctx.outbox, &mut self.outbox_scratch);
            }
            // Same-shard forwards land in the sibling queue immediately.
            let mut outbox = std::mem::take(&mut self.outbox_scratch);
            for (home, child_time, ord, kind) in outbox.drain(..) {
                let home_slot = self.slot_of_lp[home as usize].expect("forward stays in shard");
                self.slots[home_slot]
                    .1
                    .lp
                    .as_mut()
                    .expect("lp context")
                    .push_fresh(child_time, ord, kind);
            }
            self.outbox_scratch = outbox;
        }
        let mut frontier_ns = u64::MAX;
        let mut outs = Vec::with_capacity(self.slots.len());
        for (lp, sim) in &mut self.slots {
            let ctx = sim.lp.as_mut().expect("lp context");
            if let Some((time_ns, _)) = ctx.peek_key() {
                frontier_ns = frontier_ns.min(time_ns);
            }
            let shell = self.pool.pop().unwrap_or_default();
            outs.push((*lp, ctx.take_window(shell)));
        }
        Ok(WindowReply {
            achieved_ns: limit,
            frontier_ns,
            outs,
        })
    }
}

/// Channel endpoints of the scoped worker threads, one per shard.
/// (A single-worker run never gets here — it degenerates to the serial
/// engine in [`Simulation::run_parallel_stats_with_faults`].)
struct WorkerPool<'scope> {
    cmd_txs: Vec<mpsc::Sender<WorkerCmd>>,
    out_rxs: Vec<mpsc::Receiver<Result<WindowReply, SimError>>>,
    handles: Vec<std::thread::ScopedJoinHandle<'scope, ShardWorker>>,
}

impl WorkerPool<'_> {
    /// Sends one window command; returns `false` on a dead worker.
    fn dispatch(
        &mut self,
        worker: usize,
        grant_ns: u64,
        inbox: Vec<LpInbox>,
        recycle: Vec<WindowOut>,
    ) -> bool {
        self.cmd_txs[worker]
            .send(WorkerCmd::Window {
                grant_ns,
                inbox,
                recycle,
            })
            .is_ok()
    }

    /// Collects the reply of a previously dispatched window.
    fn collect(&mut self, worker: usize) -> Option<Result<WindowReply, SimError>> {
        self.out_rxs[worker].recv().ok()
    }

    /// Shuts the pool down and returns every LP's final simulation.
    fn finish(self, n_lps: usize) -> (Vec<Option<Simulation>>, bool) {
        let mut finals: Vec<Option<Simulation>> = (0..n_lps).map(|_| None).collect();
        let mut failed = false;
        for cmd_tx in &self.cmd_txs {
            let _ = cmd_tx.send(WorkerCmd::Done);
        }
        for handle in self.handles {
            match handle.join() {
                Ok(shard) => {
                    for (lp, sim) in shard.slots {
                        finals[lp] = Some(sim);
                    }
                }
                Err(_) => failed = true,
            }
        }
        (finals, failed)
    }
}

/// Per-LP carryover state on the coordinator: everything the LP has
/// reported, with cursors marking how far the global replay has
/// consumed it. Buffers outlive windows because a shard may run ahead
/// of the replay.
#[derive(Default)]
struct LpBuf {
    records: Vec<EventRecord>,
    rec_cursor: usize,
    children: Vec<(u32, u64)>,
    child_cursor: usize,
    exports: Vec<Export>,
    export_cursor: usize,
}

impl LpBuf {
    fn fully_replayed(&self) -> bool {
        self.rec_cursor == self.records.len()
            && self.child_cursor == self.children.len()
            && self.export_cursor == self.exports.len()
    }
}

/// Static facts about the LP decomposition of a built simulation —
/// what [`Simulation::run_parallel`] would work with.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct ParallelPlan {
    /// Total logical processes (including the environment LP 0, even
    /// when empty).
    pub lps: usize,
    /// LPs that own at least one process — the effective parallelism.
    pub occupied_lps: usize,
    /// Safe-window width: the minimum cross-LP delivery latency, in
    /// nanoseconds (`u64::MAX` when no two LPs communicate).
    pub lookahead_ns: u64,
}

impl ParallelPlan {
    /// Whether [`Simulation::run_parallel`] would actually use the
    /// parallel kernel rather than falling back to the serial engine.
    pub fn parallelizable(&self) -> bool {
        self.occupied_lps > 1 && self.lookahead_ns > 0
    }
}

/// What one [`Simulation::run_parallel_stats`] run actually did — the
/// observability side of the kernel, reported alongside the result so
/// benches and tests can pin window coalescing and batching behaviour.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct ParallelStats {
    /// Whether the parallel kernel produced the result (`false` means a
    /// serial run did, see [`ParallelStats::fallback`]).
    pub used_parallel: bool,
    /// Why the kernel fell back to the serial engine, when it did.
    pub fallback: Option<&'static str>,
    /// Worker threads the run actually used.
    pub workers: usize,
    /// Coordinator rounds (adaptive safe windows) taken.
    pub windows: u64,
    /// Window batches exchanged with workers (dispatches actually sent;
    /// idle shards are skipped).
    pub batches: u64,
    /// Safe windows a fixed `lookahead_ns` march over the same event
    /// stream would have taken — the coalescing baseline.
    pub windows_fixed_step: u64,
    /// Events the coordinator replayed (the global event count).
    pub replayed_events: u64,
}

impl ParallelStats {
    fn serial(reason: &'static str) -> ParallelStats {
        ParallelStats {
            fallback: Some(reason),
            ..ParallelStats::default()
        }
    }

    /// `windows_fixed_step / windows`: how many fixed-lookahead windows
    /// one adaptive window replaced on average.
    pub fn coalescing_factor(&self) -> f64 {
        if self.windows == 0 {
            1.0
        } else {
            self.windows_fixed_step as f64 / self.windows as f64
        }
    }
}

impl Simulation {
    /// The LP decomposition this simulation's platform mapping yields.
    pub fn parallel_plan(&self) -> ParallelPlan {
        let partition = build_partition(self);
        ParallelPlan {
            lps: partition.n_lps,
            occupied_lps: partition.occupied_lps,
            lookahead_ns: partition.lookahead_ns,
        }
    }

    /// Runs the simulation on the conservative parallel kernel and
    /// returns a report whose [`SimLog`](crate::SimLog) is
    /// **bit-identical** to [`Simulation::run`] at any thread count.
    ///
    /// `threads = 0` uses one thread per available logical CPU. The
    /// kernel falls back to the serial engine whenever parallelism
    /// cannot help or exactness cannot be kept cheaply: a single
    /// occupied LP, zero lookahead, an armed watchdog (its event budget
    /// is a global pop count), a step budget exhausted mid-window, or a
    /// runtime error inside a logical process.
    ///
    /// # Errors
    ///
    /// Same contract as [`Simulation::run`]; errors are always reported
    /// with exact serial semantics (the failing parallel attempt is
    /// discarded and the run repeated serially).
    pub fn run_parallel(self, threads: usize) -> Result<SimReport, SimError> {
        self.run_parallel_with_faults(threads, &NoFaults)
    }

    /// [`Simulation::run_parallel`] with deterministic fault injection.
    ///
    /// The fault model is cloned into every worker; the [`FaultModel`]
    /// contract (every decision a pure function of its `(now, salt)`
    /// key) makes the injected fault stream identical to a serial
    /// [`Simulation::run_with_faults`] run with the same model.
    ///
    /// # Errors
    ///
    /// Same contract as [`Simulation::run_with_faults`].
    pub fn run_parallel_with_faults<F>(
        self,
        threads: usize,
        faults: &F,
    ) -> Result<SimReport, SimError>
    where
        F: FaultModel + Clone + Send,
    {
        self.run_parallel_stats_with_faults(threads, faults)
            .map(|(report, _)| report)
    }

    /// [`Simulation::run_parallel`] plus kernel observability: how many
    /// adaptive windows the run took, the fixed-step baseline they
    /// coalesced, and whether (and why) the kernel fell back to the
    /// serial engine.
    ///
    /// # Errors
    ///
    /// Same contract as [`Simulation::run_parallel`].
    pub fn run_parallel_stats(
        self,
        threads: usize,
    ) -> Result<(SimReport, ParallelStats), SimError> {
        self.run_parallel_stats_with_faults(threads, &NoFaults)
    }

    /// [`Simulation::run_parallel_stats`] with deterministic fault
    /// injection.
    ///
    /// # Errors
    ///
    /// Same contract as [`Simulation::run_parallel_with_faults`].
    pub fn run_parallel_stats_with_faults<F>(
        self,
        threads: usize,
        faults: &F,
    ) -> Result<(SimReport, ParallelStats), SimError>
    where
        F: FaultModel + Clone + Send,
    {
        let threads = resolve_threads(threads);
        // The watchdog's event budget counts global pops in serial
        // order; honouring it exactly needs the serial engine.
        if self.config.watchdog.is_armed() {
            let stats = ParallelStats::serial("watchdog");
            return self.run_serially(faults).map(|report| (report, stats));
        }
        let partition = build_partition(&self);
        if partition.occupied_lps <= 1 {
            let stats = ParallelStats::serial("single-lp");
            return self.run_serially(faults).map(|report| (report, stats));
        }
        if partition.lookahead_ns == 0 {
            let stats = ParallelStats::serial("zero-lookahead");
            return self.run_serially(faults).map(|report| (report, stats));
        }
        let mut stats = ParallelStats::default();
        if threads.min(partition.n_lps).max(1) == 1 {
            // One shard would own every LP: the adaptive grant covers
            // the whole horizon in a single window, and the shard's
            // "miniature serial engine" over all of its LPs is the
            // serial engine itself. Run it directly — no LP split, no
            // replay, no merge — keeping only the window tallies the
            // coalescing stats need.
            let _kernel_span = perf::enter_named("sim.run_parallel");
            stats.used_parallel = true;
            stats.workers = 1;
            stats.windows = 1;
            stats.batches = 1;
            let (report, events, fixed_windows) =
                self.run_counting_windows(&mut faults.clone(), partition.lookahead_ns)?;
            stats.replayed_events = events;
            stats.windows_fixed_step = fixed_windows;
            return Ok((report, stats));
        }
        match run_conservative(&self, &partition, threads, faults, &mut stats) {
            Some(report) => Ok((report, stats)),
            // Exactness could not be kept (step budget crossed
            // mid-window, runtime error, or replay mismatch): rerun the
            // pristine simulation serially for exact semantics.
            None => {
                let stats = ParallelStats::serial("replay-abort");
                self.run_serially(faults).map(|report| (report, stats))
            }
        }
    }

    fn run_serially<F: FaultModel + Clone>(self, faults: &F) -> Result<SimReport, SimError> {
        self.run_with_faults(&mut faults.clone(), &mut NoopSink)
    }
}

/// One conservative parallel run. Returns `None` when the attempt must
/// be discarded in favour of a serial rerun.
fn run_conservative<F>(
    base: &Simulation,
    partition: &Partition,
    threads: usize,
    faults: &F,
    stats: &mut ParallelStats,
) -> Option<SimReport>
where
    F: FaultModel + Clone + Send,
{
    let _kernel_span = perf::enter_named("sim.run_parallel");
    let n_lps = partition.n_lps;
    let max_time_ns = base.config.max_time_ns;
    let max_steps = base.config.max_steps;
    let lookahead_ns = partition.lookahead_ns;
    // The caller routes single-worker runs to the degenerate serial
    // path, so at least two shards exist here.
    let workers = threads.min(n_lps).max(1);
    debug_assert!(workers >= 2, "single-worker runs bypass the coordinator");
    stats.workers = workers;

    // Contiguous LP → shard assignment, one shard per worker.
    let shard_of_lp: Arc<Vec<u32>> =
        Arc::new((0..n_lps).map(|lp| (lp * workers / n_lps) as u32).collect());
    let shard_lps: Vec<Vec<usize>> = (0..workers)
        .map(|shard| {
            (0..n_lps)
                .filter(|&lp| shard_of_lp[lp] as usize == shard)
                .collect()
        })
        .collect();

    // Coordinator stub heap `(time, seq, lp)`, seeded from the initial
    // event set — the skeleton of the global serial order — plus a
    // per-shard mirror of `(time, seq)` for the window grants.
    let mut stub_heap: BinaryHeap<Reverse<(u64, u64, u32)>> = BinaryHeap::new();
    let mut shard_stubs: Vec<BinaryHeap<Reverse<(u64, u64)>>> =
        (0..workers).map(|_| BinaryHeap::new()).collect();
    {
        let mut queue = base.events.clone();
        while let Some((time_ns, seq, kind)) = queue.pop() {
            let home = kind.home_lp(&partition.lp_of_proc, &partition.lp_of_pe);
            stub_heap.push(Reverse((time_ns, seq, home)));
            shard_stubs[shard_of_lp[home as usize] as usize].push(Reverse((time_ns, seq)));
        }
    }

    // One simulation clone per LP, each seeing only its own events,
    // grouped into per-worker shards.
    let mut shards: Vec<ShardWorker> = (0..workers)
        .map(|shard| {
            let mut slot_of_lp = vec![None; n_lps];
            for (slot, &lp) in shard_lps[shard].iter().enumerate() {
                slot_of_lp[lp] = Some(slot);
            }
            ShardWorker {
                slots: Vec::with_capacity(shard_lps[shard].len()),
                slot_of_lp,
                births: Vec::new(),
                pool: Vec::new(),
                outbox_scratch: Vec::new(),
                max_time_ns,
                lookahead_ns,
                perf_label: format!("shard/{shard}"),
            }
        })
        .collect();
    for lp in 0..n_lps {
        let mut sim = base.clone();
        let mut ctx = LpCtx::new(
            lp as u32,
            shard_of_lp[lp],
            Arc::clone(&partition.lp_of_proc),
            Arc::clone(&partition.lp_of_pe),
            Arc::clone(&shard_of_lp),
        );
        while let Some((time_ns, seq, kind)) = sim.events.pop() {
            if kind.home_lp(&partition.lp_of_proc, &partition.lp_of_pe) == lp as u32 {
                ctx.push_final(time_ns, seq, kind);
            }
        }
        sim.lp = Some(Box::new(ctx));
        shards[shard_of_lp[lp] as usize].slots.push((lp, sim));
    }

    let mut next_seq = base.next_seq;
    let mut total_steps: u64 = 0;
    let mut end_time_ns: u64 = 0;
    // `(lp, log record count)` per replayed same-LP stretch, in
    // global order.
    let mut merge_plan: Vec<(u32, u64)> = Vec::new();
    let mut pending: Vec<LpInbox> = (0..n_lps).map(|_| LpInbox::default()).collect();
    let mut bufs: Vec<LpBuf> = (0..n_lps).map(|_| LpBuf::default()).collect();
    // Exclusive horizon each shard has fully covered so far.
    let mut achieved: Vec<u64> = vec![0; workers];
    // Earliest event still queued inside each shard (from its last
    // reply; before the first window every event is still a stub).
    let mut frontier: Vec<u64> = shard_stubs
        .iter()
        .map(|heap| heap.peek().map_or(u64::MAX, |entry| entry.0 .0))
        .collect();
    let mut recycle: Vec<Vec<WindowOut>> = (0..workers).map(|_| Vec::new()).collect();
    let mut failed = false;
    // Fixed-step window accounting over the replayed stream — what the
    // pre-coalescing kernel (one `lookahead_ns` window per march) would
    // have paid for the same run.
    let mut fixed_end: u64 = 0;

    let finals: Vec<Option<Simulation>> = std::thread::scope(|scope| {
        let mut pool = {
            let mut cmd_txs = Vec::with_capacity(workers);
            let mut out_rxs = Vec::with_capacity(workers);
            let mut handles = Vec::with_capacity(workers);
            for mut shard in shards {
                let (cmd_tx, cmd_rx) = mpsc::channel::<WorkerCmd>();
                let (out_tx, out_rx) = mpsc::channel::<Result<WindowReply, SimError>>();
                let mut worker_faults = faults.clone();
                handles.push(scope.spawn(move || {
                    while let Ok(cmd) = cmd_rx.recv() {
                        let WorkerCmd::Window {
                            grant_ns,
                            inbox,
                            recycle,
                        } = cmd
                        else {
                            break;
                        };
                        let reply = shard.window(grant_ns, inbox, recycle, &mut worker_faults);
                        if out_tx.send(reply).is_err() {
                            break;
                        }
                    }
                    shard
                }));
                cmd_txs.push(cmd_tx);
                out_rxs.push(out_rx);
            }
            WorkerPool {
                cmd_txs,
                out_rxs,
                handles,
            }
        };

        // Coordinator rounds: grant every shard an adaptive safe
        // window, collect the batches, then replay the global order as
        // far as the shards have covered it.
        let mut dispatched = vec![false; workers];
        'rounds: while let Some(&Reverse((top_time, _, _))) = stub_heap.peek() {
            if top_time > max_time_ns {
                break;
            }
            stats.windows += 1;

            // Per-shard grants: everything another shard can ever send
            // here is at least `lookahead` later than that shard's
            // earliest pending work.
            for shard in 0..workers {
                let mut others_min = u64::MAX;
                for (other, heap) in shard_stubs.iter().enumerate() {
                    if other != shard {
                        if let Some(&Reverse((time_ns, _))) = heap.peek() {
                            others_min = others_min.min(time_ns);
                        }
                    }
                }
                let grant = others_min
                    .saturating_add(lookahead_ns)
                    .min(max_time_ns.saturating_add(1));
                let has_imports = shard_lps[shard]
                    .iter()
                    .any(|&lp| !pending[lp].imports.is_empty());
                // Skip shards that can make no progress this round:
                // nothing new is allowed (`grant` not past what they
                // already covered) or nothing of theirs is pending
                // below the grant and no imports are waiting. Deferred
                // key finalisations stay queued in `pending`.
                if !has_imports && (grant <= achieved[shard] || frontier[shard] >= grant) {
                    achieved[shard] = achieved[shard].max(grant);
                    dispatched[shard] = false;
                    continue;
                }
                let inbox: Vec<LpInbox> = shard_lps[shard]
                    .iter()
                    .map(|&lp| std::mem::take(&mut pending[lp]))
                    .collect();
                let shells = std::mem::take(&mut recycle[shard]);
                if !pool.dispatch(shard, grant, inbox, shells) {
                    failed = true;
                    break 'rounds;
                }
                dispatched[shard] = true;
                stats.batches += 1;
            }
            let mut any_dispatched = false;
            for shard in 0..workers {
                if !dispatched[shard] {
                    continue;
                }
                any_dispatched = true;
                match pool.collect(shard) {
                    Some(Ok(reply)) => {
                        achieved[shard] = achieved[shard].max(reply.achieved_ns);
                        frontier[shard] = reply.frontier_ns;
                        for (lp, mut out) in reply.outs {
                            let buf = &mut bufs[lp];
                            buf.records.extend_from_slice(&out.records);
                            buf.children.extend_from_slice(&out.children);
                            buf.exports.append(&mut out.exports);
                            out.records.clear();
                            out.children.clear();
                            recycle[shard].push(out);
                        }
                    }
                    _ => {
                        failed = true;
                        break 'rounds;
                    }
                }
            }

            // Skeleton replay: reproduce the serial engine's pop order
            // and sequence numbering as far as the shards have covered
            // the global order; the rest stays buffered for later
            // rounds.
            let replayed_before = stats.replayed_events;
            while let Some(&Reverse((time_ns, _seq, lp))) = stub_heap.peek() {
                if time_ns > max_time_ns {
                    break;
                }
                let shard = shard_of_lp[lp as usize] as usize;
                if time_ns >= achieved[shard] {
                    break;
                }
                if total_steps >= max_steps {
                    // The serial engine would stop here, but the LPs
                    // already ran past the cut: discard and rerun.
                    failed = true;
                    break 'rounds;
                }
                stub_heap.pop();
                let mirrored = shard_stubs[shard].pop();
                debug_assert_eq!(
                    mirrored.map(|entry| entry.0 .0),
                    Some(time_ns),
                    "shard stub mirror out of sync"
                );
                stats.replayed_events += 1;
                if time_ns >= fixed_end {
                    stats.windows_fixed_step += 1;
                    fixed_end = time_ns.saturating_add(lookahead_ns);
                }
                let lp = lp as usize;
                let buf = &mut bufs[lp];
                let Some(&record) = buf.records.get(buf.rec_cursor) else {
                    failed = true;
                    break 'rounds;
                };
                if record.time_ns != time_ns {
                    failed = true;
                    break 'rounds;
                }
                buf.rec_cursor += 1;
                total_steps += u64::from(record.steps);
                end_time_ns = time_ns;
                // Consecutive same-LP events have contiguous log
                // extents; coalescing them makes the final merge one
                // `extend_remapped` per LP stretch instead of per
                // event.
                match merge_plan.last_mut() {
                    Some((last_lp, count)) if *last_lp == lp as u32 => {
                        *count += u64::from(record.log_records);
                    }
                    _ => merge_plan.push((lp as u32, u64::from(record.log_records))),
                }
                // Assign global sequence numbers to this event's
                // creations, in creation order — exactly what the
                // serial engine's `schedule` would have drawn.
                for _ in 0..record.children {
                    let created = buf.child_cursor;
                    buf.child_cursor += 1;
                    let (home, child_time_ns) = buf.children[created];
                    let seq = next_seq;
                    next_seq += 1;
                    pending[lp].finalized.push((created as u64, seq));
                    stub_heap.push(Reverse((child_time_ns, seq, home)));
                    shard_stubs[shard_of_lp[home as usize] as usize]
                        .push(Reverse((child_time_ns, seq)));
                    if let Some(export) = buf.exports.get(buf.export_cursor) {
                        if export.created == created as u64 {
                            pending[home as usize].imports.push((
                                child_time_ns,
                                seq,
                                export.kind.clone(),
                            ));
                            buf.export_cursor += 1;
                        }
                    }
                }
            }
            // A round that neither ran a shard nor replayed a stub can
            // never make progress again; bail out to the serial rerun
            // rather than spin.
            if !any_dispatched && stats.replayed_events == replayed_before {
                failed = true;
                break;
            }
        }
        // Conservative invariant: on a clean exit everything every LP
        // did must have been replayed.
        if !failed && !bufs.iter().all(LpBuf::fully_replayed) {
            failed = true;
        }

        let (finals, join_failed) = pool.finish(n_lps);
        failed = failed || join_failed;
        finals
    });
    if failed || finals.iter().any(Option::is_none) {
        return None;
    }
    stats.used_parallel = true;

    // Merge the per-LP logs in global replay order. Each LP clone
    // started with a copy of the base log, so its own records begin
    // after that prefix.
    let mut log = base.log.clone();
    let base_records = base.log.records_len();
    let mut remaps: Vec<Vec<Option<Sym>>> = (0..n_lps).map(|_| Vec::new()).collect();
    let mut log_cursor = vec![base_records; n_lps];
    for &(lp, count) in &merge_plan {
        let lp = lp as usize;
        let source = &finals[lp].as_ref().expect("checked above").log;
        let start = log_cursor[lp];
        log.extend_remapped(source, start, start + count as usize, &mut remaps[lp]);
        log_cursor[lp] += count as usize;
    }

    // Assemble the report from each entity's owning LP (the only LP
    // whose clone ever mutated it).
    let mut faults_tally = FaultTally::default();
    for sim in finals.iter().flatten() {
        faults_tally.corrupted += sim.fault_tally.corrupted;
        faults_tally.dropped += sim.fault_tally.dropped;
        faults_tally.unroutable += sim.network.unroutable_transfers();
    }
    let mut report = SimReport {
        end_time_ns,
        total_steps,
        log,
        processes: Vec::new(),
        pes: Vec::new(),
        faults: faults_tally,
    };
    for index in 0..base.processes.len() {
        let owner = partition.lp_of_proc[index] as usize;
        let process = &finals[owner].as_ref().expect("checked above").processes[index];
        report.processes.push((process.name.clone(), process.stats));
    }
    for index in 0..base.pes.len() {
        let owner = partition.lp_of_pe[index] as usize;
        let pe = &finals[owner].as_ref().expect("checked above").pes[index];
        report.pes.push((
            pe.descriptor.name.clone(),
            PeStats {
                busy_ns: pe.busy_ns,
                busy_cycles: pe.busy_cycles,
                is_env: pe.is_env,
            },
        ));
    }
    Some(report)
}
