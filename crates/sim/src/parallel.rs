//! Conservative parallel discrete-event kernel.
//!
//! The simulation is partitioned into **logical processes** (LPs) along
//! the platform mapping: every set of HIBI segments that can exchange
//! traffic forms one LP, and the environment plus all unattached
//! elements form LP 0. Cross-LP signals never ride the bus (routable
//! pairs are merged into one LP), so the minimum cross-LP delivery
//! latency — the engine's fixed local/environment latencies — is a
//! sound **lookahead** bound.
//!
//! Execution is barrier-synchronous: each round the coordinator picks
//! the globally earliest pending event time `M` and lets every LP run
//! all of its events in the safe window `[M, M + lookahead)`. Within a
//! window an LP orders events by `(time, key)` where a key is either a
//! globally-finalised sequence number (`Final`) or a window-local
//! creation counter (`Fresh`). Every `Fresh` event was created inside
//! the current window, hence globally *after* every `Final` event, so
//! `Final < Fresh` is exactly the serial tie-break.
//!
//! After a window the coordinator **replays the skeleton** of what the
//! serial engine would have done: it pops its own stub heap in global
//! `(time, seq)` order, matches each stub against the owning LP's event
//! record, assigns real sequence numbers to that event's creations in
//! creation order, and appends the event's log extent to the merge
//! plan. This reproduces the serial engine's sequence numbering — and
//! therefore its log — exactly, which is what makes the merged
//! [`crate::SimLog`] bit-identical to a serial run at any thread count.
//!
//! Whenever the conservative contract cannot be kept cheaply (armed
//! watchdog, step budget exhausted mid-window, a runtime error inside
//! an LP, or a replay mismatch), the kernel discards the parallel
//! attempt and reruns the pristine simulation serially, so callers
//! always observe exact serial semantics.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};
use std::sync::mpsc;
use std::sync::Arc;

use tut_faults::{FaultModel, NoFaults};
use tut_trace::{perf, NoopSink};

use crate::engine::{EventKind, Simulation};
use crate::error::SimError;
use crate::intern::Sym;
use crate::report::{FaultTally, PeStats, SimReport};

/// Event ordering key inside one LP window.
///
/// Variant order is load-bearing: `Final` (a globally-assigned sequence
/// number from a previous barrier or the initial build) always compares
/// before `Fresh` (a window-local creation counter), because every
/// fresh event was created after every finalised one.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug)]
enum LpKey {
    Final(u64),
    Fresh(u64),
}

/// One pending event inside an LP's window queue.
#[derive(Clone, Debug)]
struct LpEvent {
    time_ns: u64,
    key: LpKey,
    kind: EventKind,
}

impl PartialEq for LpEvent {
    fn eq(&self, other: &LpEvent) -> bool {
        self.cmp(other) == std::cmp::Ordering::Equal
    }
}

impl Eq for LpEvent {}

impl PartialOrd for LpEvent {
    fn partial_cmp(&self, other: &LpEvent) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for LpEvent {
    fn cmp(&self, other: &LpEvent) -> std::cmp::Ordering {
        (self.time_ns, self.key).cmp(&(other.time_ns, other.key))
    }
}

/// Per-processed-event bookkeeping an LP hands to the coordinator.
#[derive(Clone, Copy, Debug)]
struct EventRecord {
    time_ns: u64,
    /// Events this one scheduled (children), in creation order.
    children: u32,
    /// Log records this event appended.
    log_records: u32,
    /// Run-to-completion steps this event executed.
    steps: u32,
}

/// A cross-LP creation whose payload must be shipped to its home LP.
#[derive(Clone, Debug)]
struct Export {
    /// Window-local creation index (the `Fresh` counter value); the
    /// event time lives in the LP's `children` entry at this index.
    created: u64,
    kind: EventKind,
}

/// Everything one LP produced in one window, drained at the barrier.
#[derive(Default, Debug)]
struct WindowOut {
    records: Vec<EventRecord>,
    /// `(home LP, event time)` of every creation, in creation order.
    children: Vec<(u32, u64)>,
    exports: Vec<Export>,
}

/// The LP context attached to a [`Simulation`] clone while it acts as
/// one logical process of a parallel run. [`Simulation::schedule`]
/// diverts into [`LpCtx::schedule`]; the window executor
/// (`Simulation::lp_run_window`) drains the queue through
/// [`LpCtx::peek_next`] / [`LpCtx::pop_next`].
#[derive(Clone, Debug)]
pub(crate) struct LpCtx {
    my_lp: u32,
    lp_of_proc: Arc<Vec<u32>>,
    lp_of_pe: Arc<Vec<u32>>,
    heap: BinaryHeap<Reverse<LpEvent>>,
    /// `(home LP, time)` of every event scheduled this window.
    children: Vec<(u32, u64)>,
    exports: Vec<Export>,
    records: Vec<EventRecord>,
}

impl LpCtx {
    fn new(my_lp: u32, lp_of_proc: Arc<Vec<u32>>, lp_of_pe: Arc<Vec<u32>>) -> LpCtx {
        LpCtx {
            my_lp,
            lp_of_proc,
            lp_of_pe,
            heap: BinaryHeap::new(),
            children: Vec::new(),
            exports: Vec::new(),
            records: Vec::new(),
        }
    }

    /// Seeds an already-finalised event (initial queue or import).
    fn push_final(&mut self, time_ns: u64, seq: u64, kind: EventKind) {
        self.heap.push(Reverse(LpEvent {
            time_ns,
            key: LpKey::Final(seq),
            kind,
        }));
    }

    /// Records a creation: local events join the window queue under a
    /// tentative `Fresh` key, cross-LP events become exports.
    pub(crate) fn schedule(&mut self, time_ns: u64, kind: EventKind) {
        let home = kind.home_lp(&self.lp_of_proc, &self.lp_of_pe);
        let created = self.children.len() as u64;
        self.children.push((home, time_ns));
        if home == self.my_lp {
            self.heap.push(Reverse(LpEvent {
                time_ns,
                key: LpKey::Fresh(created),
                kind,
            }));
        } else {
            self.exports.push(Export { created, kind });
        }
    }

    /// Time of the next queued event, if any.
    pub(crate) fn peek_next(&self) -> Option<u64> {
        self.heap.peek().map(|entry| entry.0.time_ns)
    }

    /// Pops the next queued event in `(time, key)` order.
    pub(crate) fn pop_next(&mut self) -> Option<(u64, EventKind)> {
        self.heap.pop().map(|entry| (entry.0.time_ns, entry.0.kind))
    }

    /// Number of creations recorded so far this window (the mark taken
    /// before an event is handled).
    pub(crate) fn creations(&self) -> usize {
        self.children.len()
    }

    /// Closes the bookkeeping of one processed event.
    pub(crate) fn record_processed(
        &mut self,
        time_ns: u64,
        children_mark: usize,
        log_records: u32,
        steps: u32,
    ) {
        self.records.push(EventRecord {
            time_ns,
            children: (self.children.len() - children_mark) as u32,
            log_records,
            steps,
        });
    }

    /// Drains the window's bookkeeping for the coordinator and resets
    /// the creation counter for the next window.
    fn take_window(&mut self) -> WindowOut {
        WindowOut {
            records: std::mem::take(&mut self.records),
            children: std::mem::take(&mut self.children),
            exports: std::mem::take(&mut self.exports),
        }
    }

    /// Applies the coordinator's barrier patch before the next window:
    /// rewrites last window's tentative `Fresh` keys to their assigned
    /// global sequence numbers and enqueues imported cross-LP events.
    fn apply_inbox(&mut self, finalized: &[u64], imports: Vec<(u64, u64, EventKind)>) {
        if !finalized.is_empty() {
            // A `Fresh` key can only exist if something was created last
            // window, i.e. `finalized` is non-empty — so this rebuild is
            // skipped whenever it would be a no-op.
            let patched: Vec<Reverse<LpEvent>> = self
                .heap
                .drain()
                .map(|Reverse(mut event)| {
                    if let LpKey::Fresh(created) = event.key {
                        event.key = LpKey::Final(finalized[created as usize]);
                    }
                    Reverse(event)
                })
                .collect();
            self.heap = BinaryHeap::from(patched);
        }
        for (time_ns, seq, kind) in imports {
            self.push_final(time_ns, seq, kind);
        }
    }
}

/// Union-find with path halving; used to merge HIBI segments into LPs.
struct UnionFind {
    parent: Vec<usize>,
}

impl UnionFind {
    fn new(n: usize) -> UnionFind {
        UnionFind {
            parent: (0..n).collect(),
        }
    }

    fn find(&mut self, mut x: usize) -> usize {
        while self.parent[x] != x {
            self.parent[x] = self.parent[self.parent[x]];
            x = self.parent[x];
        }
        x
    }

    fn union(&mut self, a: usize, b: usize) {
        let ra = self.find(a);
        let rb = self.find(b);
        if ra != rb {
            let (lo, hi) = (ra.min(rb), ra.max(rb));
            self.parent[hi] = lo;
        }
    }
}

/// The LP decomposition of one built simulation.
pub(crate) struct Partition {
    pub(crate) lp_of_proc: Arc<Vec<u32>>,
    pub(crate) lp_of_pe: Arc<Vec<u32>>,
    pub(crate) n_lps: usize,
    /// LPs that own at least one process (the effective parallelism).
    pub(crate) occupied_lps: usize,
    /// Minimum cross-LP delivery latency; `u64::MAX` when no two LPs
    /// communicate at all.
    pub(crate) lookahead_ns: u64,
}

/// Partitions a simulation into LPs along the platform mapping.
///
/// * Attached elements whose segments can route to each other share an
///   LP (they contend for the same bus state).
/// * Attached elements that *communicate* without a route are also
///   merged: the engine delivers such transfers with zero latency,
///   which would break any positive lookahead.
/// * The environment and all unattached elements form LP 0; their
///   deliveries pay the fixed environment/local latency, which bounds
///   the lookahead.
pub(crate) fn build_partition(sim: &Simulation) -> Partition {
    let segments = sim.network.segment_count();

    // One representative agent per segment, for routability probes.
    let mut rep = vec![None; segments];
    for pe in &sim.pes {
        if let Some(agent) = pe.agent {
            let seg = sim.network.segment_of(agent).index();
            rep[seg].get_or_insert(agent);
        }
    }

    // Merge segments that can exchange bus traffic.
    let mut uf = UnionFind::new(segments.max(1));
    for a in 0..segments {
        for b in (a + 1)..segments {
            if let (Some(ra), Some(rb)) = (rep[a], rep[b]) {
                if sim.network.route(ra, rb).is_ok() {
                    uf.union(a, b);
                }
            }
        }
    }

    // Communicating processing-element pairs, from the signal routing
    // table (the application's static communication graph).
    let mut pe_pairs: Vec<(usize, usize)> = Vec::new();
    for (&(instance, _port, _signal), receivers) in sim.routing.iter() {
        let Some(&sender) = sim.by_instance.get(&instance) else {
            continue;
        };
        for endpoint in receivers {
            let Some(&receiver) = sim.by_instance.get(&endpoint.instance) else {
                continue;
            };
            let (pa, pb) = (sim.processes[sender].pe, sim.processes[receiver].pe);
            if pa != pb {
                pe_pairs.push((pa, pb));
            }
        }
    }

    // Merge segment components forced together by unroutable traffic.
    for &(a, b) in &pe_pairs {
        if let (Some(aa), Some(ab)) = (sim.pes[a].agent, sim.pes[b].agent) {
            uf.union(
                sim.network.segment_of(aa).index(),
                sim.network.segment_of(ab).index(),
            );
        }
    }

    // Number the LPs: 0 is the environment/unattached LP, 1.. one per
    // surviving segment component.
    let mut component_lp: HashMap<usize, u32> = HashMap::new();
    let mut lp_of_pe = vec![0u32; sim.pes.len()];
    let mut n_lps = 1usize;
    for (index, pe) in sim.pes.iter().enumerate() {
        if pe.is_env {
            continue;
        }
        if let Some(agent) = pe.agent {
            let root = uf.find(sim.network.segment_of(agent).index());
            let lp = *component_lp.entry(root).or_insert_with(|| {
                let id = n_lps as u32;
                n_lps += 1;
                id
            });
            lp_of_pe[index] = lp;
        }
    }
    let lp_of_proc: Vec<u32> = sim
        .processes
        .iter()
        .map(|process| lp_of_pe[process.pe])
        .collect();

    // Lookahead: the minimum latency of any cross-LP delivery. After
    // the merges above a cross-LP pair never rides the bus, so it pays
    // either the environment latency (an env endpoint) or the fixed
    // local fallback latency.
    let mut lookahead_ns = u64::MAX;
    for &(a, b) in &pe_pairs {
        if lp_of_pe[a] == lp_of_pe[b] {
            continue;
        }
        let latency = if sim.pes[a].is_env || sim.pes[b].is_env {
            sim.config.env_latency_ns
        } else {
            sim.config.local_latency_ns
        };
        lookahead_ns = lookahead_ns.min(latency);
    }

    let mut occupied = vec![false; n_lps];
    for process in &sim.processes {
        occupied[lp_of_pe[process.pe] as usize] = true;
    }
    let occupied_lps = occupied.iter().filter(|o| **o).count();

    Partition {
        lp_of_proc: Arc::new(lp_of_proc),
        lp_of_pe: Arc::new(lp_of_pe),
        n_lps,
        occupied_lps,
        lookahead_ns,
    }
}

/// Resolves a thread-count request: `0` means one thread per available
/// logical CPU.
pub(crate) fn resolve_threads(threads: usize) -> usize {
    if threads > 0 {
        threads
    } else {
        std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1)
    }
}

/// What the coordinator sends a worker each barrier round.
enum WorkerCmd {
    Window {
        horizon_ns: u64,
        /// One inbox per LP of the worker's shard, in shard order.
        inbox: Vec<LpInbox>,
    },
    Done,
}

/// The barrier patch one LP receives before its next window.
#[derive(Default)]
struct LpInbox {
    /// Assigned sequence numbers of last window's creations, indexed by
    /// creation counter.
    finalized: Vec<u64>,
    /// Imported cross-LP events: `(time, seq, kind)`.
    imports: Vec<(u64, u64, EventKind)>,
}

/// Static facts about the LP decomposition of a built simulation —
/// what [`Simulation::run_parallel`] would work with.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct ParallelPlan {
    /// Total logical processes (including the environment LP 0, even
    /// when empty).
    pub lps: usize,
    /// LPs that own at least one process — the effective parallelism.
    pub occupied_lps: usize,
    /// Safe-window width: the minimum cross-LP delivery latency, in
    /// nanoseconds (`u64::MAX` when no two LPs communicate).
    pub lookahead_ns: u64,
}

impl ParallelPlan {
    /// Whether [`Simulation::run_parallel`] would actually use the
    /// parallel kernel rather than falling back to the serial engine.
    pub fn parallelizable(&self) -> bool {
        self.occupied_lps > 1 && self.lookahead_ns > 0
    }
}

impl Simulation {
    /// The LP decomposition this simulation's platform mapping yields.
    pub fn parallel_plan(&self) -> ParallelPlan {
        let partition = build_partition(self);
        ParallelPlan {
            lps: partition.n_lps,
            occupied_lps: partition.occupied_lps,
            lookahead_ns: partition.lookahead_ns,
        }
    }

    /// Runs the simulation on the conservative parallel kernel and
    /// returns a report whose [`SimLog`](crate::SimLog) is
    /// **bit-identical** to [`Simulation::run`] at any thread count.
    ///
    /// `threads = 0` uses one thread per available logical CPU. The
    /// kernel falls back to the serial engine whenever parallelism
    /// cannot help or exactness cannot be kept cheaply: a single
    /// occupied LP, zero lookahead, an armed watchdog (its event budget
    /// is a global pop count), a step budget exhausted mid-window, or a
    /// runtime error inside a logical process.
    ///
    /// # Errors
    ///
    /// Same contract as [`Simulation::run`]; errors are always reported
    /// with exact serial semantics (the failing parallel attempt is
    /// discarded and the run repeated serially).
    pub fn run_parallel(self, threads: usize) -> Result<SimReport, SimError> {
        self.run_parallel_with_faults(threads, &NoFaults)
    }

    /// [`Simulation::run_parallel`] with deterministic fault injection.
    ///
    /// The fault model is cloned into every worker; the [`FaultModel`]
    /// contract (every decision a pure function of its `(now, salt)`
    /// key) makes the injected fault stream identical to a serial
    /// [`Simulation::run_with_faults`] run with the same model.
    ///
    /// # Errors
    ///
    /// Same contract as [`Simulation::run_with_faults`].
    pub fn run_parallel_with_faults<F>(
        self,
        threads: usize,
        faults: &F,
    ) -> Result<SimReport, SimError>
    where
        F: FaultModel + Clone + Send,
    {
        let threads = resolve_threads(threads);
        // The watchdog's event budget counts global pops in serial
        // order; honouring it exactly needs the serial engine.
        if self.config.watchdog.is_armed() {
            return self.run_serially(faults);
        }
        let partition = build_partition(&self);
        if partition.occupied_lps <= 1 || partition.lookahead_ns == 0 {
            return self.run_serially(faults);
        }
        match run_conservative(&self, &partition, threads, faults) {
            Some(report) => Ok(report),
            // Exactness could not be kept (step budget crossed
            // mid-window, runtime error, or replay mismatch): rerun the
            // pristine simulation serially for exact semantics.
            None => self.run_serially(faults),
        }
    }

    fn run_serially<F: FaultModel + Clone>(self, faults: &F) -> Result<SimReport, SimError> {
        self.run_with_faults(&mut faults.clone(), &mut NoopSink)
    }
}

/// One barrier-synchronous parallel run. Returns `None` when the
/// attempt must be discarded in favour of a serial rerun.
fn run_conservative<F>(
    base: &Simulation,
    partition: &Partition,
    threads: usize,
    faults: &F,
) -> Option<SimReport>
where
    F: FaultModel + Clone + Send,
{
    let _kernel_span = perf::enter_named("sim.run_parallel");
    let n_lps = partition.n_lps;
    let max_time_ns = base.config.max_time_ns;
    let max_steps = base.config.max_steps;
    let lookahead_ns = partition.lookahead_ns;

    // Coordinator stub heap `(time, seq, lp)`, seeded from the initial
    // event set — the skeleton of the global serial order.
    let mut stub_heap: BinaryHeap<Reverse<(u64, u64, u32)>> = BinaryHeap::new();
    {
        let mut queue = base.events.clone();
        while let Some((time_ns, seq, kind)) = queue.pop() {
            let home = kind.home_lp(&partition.lp_of_proc, &partition.lp_of_pe);
            stub_heap.push(Reverse((time_ns, seq, home)));
        }
    }

    // One simulation clone per LP, each seeing only its own events.
    let lp_sims: Vec<Simulation> = (0..n_lps)
        .map(|lp| {
            let mut sim = base.clone();
            let mut ctx = LpCtx::new(
                lp as u32,
                Arc::clone(&partition.lp_of_proc),
                Arc::clone(&partition.lp_of_pe),
            );
            while let Some((time_ns, seq, kind)) = sim.events.pop() {
                if kind.home_lp(&partition.lp_of_proc, &partition.lp_of_pe) == lp as u32 {
                    ctx.push_final(time_ns, seq, kind);
                }
            }
            sim.lp = Some(Box::new(ctx));
            sim
        })
        .collect();

    // Contiguous LP shards, one per worker.
    let workers = threads.min(n_lps).max(1);
    let mut shards: Vec<Vec<(usize, Simulation)>> = (0..workers).map(|_| Vec::new()).collect();
    for (lp, sim) in lp_sims.into_iter().enumerate() {
        shards[lp * workers / n_lps].push((lp, sim));
    }
    let shard_lps: Vec<Vec<usize>> = shards
        .iter()
        .map(|shard| shard.iter().map(|(lp, _)| *lp).collect())
        .collect();

    let mut next_seq = base.next_seq;
    let mut total_steps: u64 = 0;
    let mut end_time_ns: u64 = 0;
    // `(lp, log record count)` per replayed event, in global order.
    let mut merge_plan: Vec<(u32, u32)> = Vec::new();
    let mut pending: Vec<LpInbox> = (0..n_lps).map(|_| LpInbox::default()).collect();
    let mut failed = false;

    let finals: Vec<Option<Simulation>> = std::thread::scope(|scope| {
        let mut cmd_txs = Vec::with_capacity(workers);
        let mut out_rxs = Vec::with_capacity(workers);
        let mut handles = Vec::with_capacity(workers);
        for shard in shards {
            let (cmd_tx, cmd_rx) = mpsc::channel::<WorkerCmd>();
            let (out_tx, out_rx) = mpsc::channel::<Result<Vec<(usize, WindowOut)>, SimError>>();
            let mut worker_faults = faults.clone();
            handles.push(scope.spawn(move || {
                let mut shard = shard;
                let labels: Vec<String> = shard.iter().map(|(lp, _)| format!("lp/{lp}")).collect();
                while let Ok(cmd) = cmd_rx.recv() {
                    let WorkerCmd::Window {
                        horizon_ns,
                        mut inbox,
                    } = cmd
                    else {
                        break;
                    };
                    let mut outs = Vec::with_capacity(shard.len());
                    let mut err = None;
                    for (slot, (lp_id, sim)) in shard.iter_mut().enumerate() {
                        let _lp_span = perf::enter_named(&labels[slot]);
                        let LpInbox { finalized, imports } = std::mem::take(&mut inbox[slot]);
                        let ctx = sim.lp.as_mut().expect("worker sims carry LP contexts");
                        ctx.apply_inbox(&finalized, imports);
                        match sim.lp_run_window(horizon_ns, &mut worker_faults) {
                            Ok(()) => {
                                let ctx = sim.lp.as_mut().expect("lp context");
                                outs.push((*lp_id, ctx.take_window()));
                            }
                            Err(e) => {
                                err = Some(e);
                                break;
                            }
                        }
                    }
                    let message = match err {
                        Some(e) => Err(e),
                        None => Ok(outs),
                    };
                    if out_tx.send(message).is_err() {
                        break;
                    }
                }
                shard
            }));
            cmd_txs.push(cmd_tx);
            out_rxs.push(out_rx);
        }

        // Barrier rounds: each advances the global clock to the next
        // pending event and runs every LP through one safe window.
        'windows: while let Some(&Reverse((start_ns, _, _))) = stub_heap.peek() {
            if start_ns > max_time_ns {
                break;
            }
            let horizon_ns = start_ns.saturating_add(lookahead_ns);
            if horizon_ns <= start_ns {
                // Degenerate horizon (times at the top of the u64
                // range): no window can make progress.
                failed = true;
                break;
            }

            // Dispatch the window with each LP's pending barrier patch.
            for (worker, cmd_tx) in cmd_txs.iter().enumerate() {
                let inbox: Vec<LpInbox> = shard_lps[worker]
                    .iter()
                    .map(|&lp| std::mem::take(&mut pending[lp]))
                    .collect();
                if cmd_tx
                    .send(WorkerCmd::Window { horizon_ns, inbox })
                    .is_err()
                {
                    failed = true;
                    break 'windows;
                }
            }

            // Barrier: collect every LP's window output.
            let mut outs: Vec<WindowOut> = (0..n_lps).map(|_| WindowOut::default()).collect();
            for out_rx in &out_rxs {
                match out_rx.recv() {
                    Ok(Ok(batch)) => {
                        for (lp, out) in batch {
                            outs[lp] = out;
                        }
                    }
                    _ => {
                        failed = true;
                    }
                }
            }
            if failed {
                break;
            }

            // Skeleton replay: reproduce the serial engine's pop order
            // and sequence numbering from the per-LP records.
            let mut rec_cursor = vec![0usize; n_lps];
            let mut child_cursor = vec![0usize; n_lps];
            let mut export_cursor = vec![0usize; n_lps];
            let mut finalized: Vec<Vec<u64>> = outs
                .iter()
                .map(|out| vec![0u64; out.children.len()])
                .collect();
            let mut ok = true;
            while let Some(&Reverse((time_ns, _seq, lp))) = stub_heap.peek() {
                if time_ns >= horizon_ns || time_ns > max_time_ns {
                    break;
                }
                if total_steps >= max_steps {
                    // The serial engine would stop here, but the LPs
                    // already ran past the cut: discard and rerun.
                    ok = false;
                    break;
                }
                stub_heap.pop();
                let lp = lp as usize;
                let Some(&record) = outs[lp].records.get(rec_cursor[lp]) else {
                    ok = false;
                    break;
                };
                if record.time_ns != time_ns {
                    ok = false;
                    break;
                }
                rec_cursor[lp] += 1;
                total_steps += u64::from(record.steps);
                end_time_ns = time_ns;
                merge_plan.push((lp as u32, record.log_records));
                // Assign global sequence numbers to this event's
                // creations, in creation order — exactly what the
                // serial engine's `schedule` would have drawn.
                for _ in 0..record.children {
                    let created = child_cursor[lp];
                    child_cursor[lp] += 1;
                    let (home, child_time_ns) = outs[lp].children[created];
                    let seq = next_seq;
                    next_seq += 1;
                    finalized[lp][created] = seq;
                    stub_heap.push(Reverse((child_time_ns, seq, home)));
                    if let Some(export) = outs[lp].exports.get(export_cursor[lp]) {
                        if export.created == created as u64 {
                            pending[home as usize].imports.push((
                                child_time_ns,
                                seq,
                                export.kind.clone(),
                            ));
                            export_cursor[lp] += 1;
                        }
                    }
                }
            }
            // Conservative invariant: everything an LP did this window
            // must have been replayed.
            if ok {
                for lp in 0..n_lps {
                    if rec_cursor[lp] != outs[lp].records.len()
                        || child_cursor[lp] != outs[lp].children.len()
                        || export_cursor[lp] != outs[lp].exports.len()
                    {
                        ok = false;
                    }
                }
            }
            if !ok {
                failed = true;
                break;
            }
            for (lp, assigned) in finalized.into_iter().enumerate() {
                pending[lp].finalized = assigned;
            }
        }

        for cmd_tx in &cmd_txs {
            let _ = cmd_tx.send(WorkerCmd::Done);
        }
        let mut finals: Vec<Option<Simulation>> = (0..n_lps).map(|_| None).collect();
        for handle in handles {
            match handle.join() {
                Ok(shard) => {
                    for (lp, sim) in shard {
                        finals[lp] = Some(sim);
                    }
                }
                Err(_) => failed = true,
            }
        }
        finals
    });
    if failed || finals.iter().any(Option::is_none) {
        return None;
    }

    // Merge the per-LP logs in global replay order. Each LP clone
    // started with a copy of the base log, so its own records begin
    // after that prefix.
    let mut log = base.log.clone();
    let base_records = base.log.records_len();
    let mut remaps: Vec<Vec<Option<Sym>>> = (0..n_lps).map(|_| Vec::new()).collect();
    let mut log_cursor = vec![base_records; n_lps];
    for &(lp, count) in &merge_plan {
        let lp = lp as usize;
        let source = &finals[lp].as_ref().expect("checked above").log;
        let start = log_cursor[lp];
        log.extend_remapped(source, start, start + count as usize, &mut remaps[lp]);
        log_cursor[lp] += count as usize;
    }

    // Assemble the report from each entity's owning LP (the only LP
    // whose clone ever mutated it).
    let mut faults_tally = FaultTally::default();
    for sim in finals.iter().flatten() {
        faults_tally.corrupted += sim.fault_tally.corrupted;
        faults_tally.dropped += sim.fault_tally.dropped;
        faults_tally.unroutable += sim.network.unroutable_transfers();
    }
    let mut report = SimReport {
        end_time_ns,
        total_steps,
        log,
        processes: Vec::new(),
        pes: Vec::new(),
        faults: faults_tally,
    };
    for index in 0..base.processes.len() {
        let owner = partition.lp_of_proc[index] as usize;
        let process = &finals[owner].as_ref().expect("checked above").processes[index];
        report.processes.push((process.name.clone(), process.stats));
    }
    for index in 0..base.pes.len() {
        let owner = partition.lp_of_pe[index] as usize;
        let pe = &finals[owner].as_ref().expect("checked above").pes[index];
        report.pes.push((
            pe.descriptor.name.clone(),
            PeStats {
                busy_ns: pe.busy_ns,
                busy_cycles: pe.busy_cycles,
                is_env: pe.is_env,
            },
        ));
    }
    Some(report)
}
