//! Event scheduling structures for the engine's future-event set.
//!
//! The engine needs one operation pair — `push(time, seq, event)` /
//! `pop() -> earliest (time, seq)` — with a **total** order: earliest
//! `time_ns` first, ties broken by insertion `seq`. That tie-break is the
//! determinism contract of the whole simulator (and of the parallel
//! kernel's merge), so both implementations here reproduce it exactly:
//!
//! * [`QueueKind::Heap`] — the classic `BinaryHeap<Reverse<_>>`:
//!   O(log n) per operation, no tuning, the reference implementation.
//! * [`QueueKind::Calendar`] — a calendar queue (R. Brown, CACM 1988):
//!   events hash into time-ordered buckets ("days") of width
//!   `width_ns`; popping scans the current day and wraps around the
//!   "year". With the width adapted to the inter-event gap the expected
//!   cost is O(1) per operation. Payloads live in a slab so bucket
//!   entries stay small and `Copy`.
//!
//! The calendar's buckets are **structure-of-arrays**: a dense `times`
//! vector searched on its own cache lines, with a parallel `(seq, event)`
//! vector carrying the tie-break and the payload, both sorted ascending
//! by `(time, seq)` behind a `head` cursor. The hot hold pattern — push a
//! little ahead of now, pop the minimum — then appends at the tail and
//! pops at the head in O(1), and a search never drags payload bytes
//! through the cache. Width adaptation is incremental: every pop feeds an
//! EWMA of the observed inter-event gap, and both the periodic resizes
//! and the bucket-skew trigger (a burst that piles into one bucket) reuse
//! that estimate instead of re-sampling the whole queue.
//!
//! Both kinds pop the *identical* sequence for the same pushes — pinned
//! by tests and by the engine's byte-identical-log property tests.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Which future-event-set implementation a simulation uses.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum QueueKind {
    /// Calendar queue with structure-of-arrays buckets (default: O(1)
    /// amortised hold operations on the simulation hot path).
    #[default]
    Calendar,
    /// Binary min-heap (`BinaryHeap<Reverse<_>>`), the reference
    /// implementation.
    Heap,
}

impl QueueKind {
    /// Stable lower-case name (used by benches and reports).
    pub fn name(self) -> &'static str {
        match self {
            QueueKind::Calendar => "calendar",
            QueueKind::Heap => "heap",
        }
    }
}

/// One heap element: ordered by `(time_ns, seq)` only, the payload is
/// carried along.
#[derive(Clone, Debug)]
struct HeapEntry<T> {
    time_ns: u64,
    seq: u64,
    item: T,
}

impl<T> PartialEq for HeapEntry<T> {
    fn eq(&self, other: &Self) -> bool {
        self.time_ns == other.time_ns && self.seq == other.seq
    }
}
impl<T> Eq for HeapEntry<T> {}
impl<T> PartialOrd for HeapEntry<T> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<T> Ord for HeapEntry<T> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.time_ns, self.seq).cmp(&(other.time_ns, other.seq))
    }
}

/// One calendar bucket: a contiguous `times` vector searched on its own
/// cache lines, with a parallel `(seq, payload)` vector, both sorted
/// **ascending** by `(time, seq)` behind a `head` cursor. The hold
/// pattern's monotone pushes append at the tail in O(1) — including a
/// same-timestamp burst, whose rising seqs are always the bucket tail —
/// the minimum pops in O(1) by advancing `head`, and a push below the
/// minimum reuses the dead slot in front of `head` in O(1). Only a
/// genuine mid-bucket insert pays a memmove, and the dead prefix is
/// compacted amortised-O(1) once it dominates the vector.
#[derive(Clone, Debug)]
struct Bucket<T> {
    /// Index of the bucket minimum; everything before it is dead.
    head: usize,
    times: Vec<u64>,
    entries: Vec<(u64, T)>,
}

impl<T> Default for Bucket<T> {
    fn default() -> Self {
        Bucket {
            head: 0,
            times: Vec::new(),
            entries: Vec::new(),
        }
    }
}

impl<T: Clone> Bucket<T> {
    #[inline]
    fn live(&self) -> usize {
        self.times.len() - self.head
    }

    /// Minimum `(time, seq)` key, if any.
    #[inline]
    fn first_key(&self) -> Option<(u64, u64)> {
        self.times
            .get(self.head)
            .map(|&t| (t, self.entries[self.head].0))
    }

    /// Inserts keeping ascending `(time, seq)` order; returns how many
    /// entries had to shift (0 for the tail-append and head-slot paths).
    fn insert(&mut self, time_ns: u64, seq: u64, item: T) -> usize {
        let len = self.times.len();
        if len == self.head {
            // Live part empty: drop any dead prefix and start over.
            self.times.clear();
            self.entries.clear();
            self.head = 0;
            self.times.push(time_ns);
            self.entries.push((seq, item));
            return 0;
        }
        // Hold-pattern fast path: not earlier than the current tail.
        if (self.times[len - 1], self.entries[len - 1].0) < (time_ns, seq) {
            self.times.push(time_ns);
            self.entries.push((seq, item));
            return 0;
        }
        let mut pos = self.head + self.times[self.head..].partition_point(|&t| t < time_ns);
        while pos < len && self.times[pos] == time_ns && self.entries[pos].0 < seq {
            pos += 1;
        }
        if pos == self.head && self.head > 0 {
            // New bucket minimum: reuse the dead slot in front of head.
            self.head -= 1;
            self.times[self.head] = time_ns;
            self.entries[self.head] = (seq, item);
            return 0;
        }
        self.times.insert(pos, time_ns);
        self.entries.insert(pos, (seq, item));
        len - pos
    }

    /// Removes and returns the minimum by advancing the head cursor.
    fn pop_min(&mut self) -> (u64, u64, T) {
        let time_ns = self.times[self.head];
        let (seq, item) = self.entries[self.head].clone();
        self.head += 1;
        if self.head == self.times.len() {
            self.times.clear();
            self.entries.clear();
            self.head = 0;
        } else if self.head >= 32 && 2 * self.head >= self.times.len() {
            // Dead prefix dominates: compact (amortised O(1) per pop).
            self.times.drain(..self.head);
            self.entries.drain(..self.head);
            self.head = 0;
        }
        (time_ns, seq, item)
    }

    /// Moves every live entry out, clearing the bucket.
    fn drain_into(&mut self, out: &mut Vec<(u64, u64, T)>) {
        for (time_ns, (seq, item)) in self
            .times
            .drain(self.head..)
            .zip(self.entries.drain(self.head..))
        {
            out.push((time_ns, seq, item));
        }
        self.times.clear();
        self.entries.clear();
        self.head = 0;
    }
}

/// A calendar queue with SoA buckets and inline payloads.
///
/// The cursor walks "virtual bucket numbers" (`time / width`), so events
/// pushed behind the cursor (same simulated time, later insertion)
/// simply pull the cursor back — order stays exact.
#[derive(Clone, Debug)]
pub struct CalendarQueue<T> {
    /// Power-of-two bucket array.
    buckets: Vec<Bucket<T>>,
    /// `buckets.len() - 1`.
    mask: u64,
    /// Bucket ("day") width as a power-of-two shift: a day spans
    /// `1 << width_shift` ns, so the day of a timestamp is a shift, not
    /// a division, on the hot path.
    width_shift: u32,
    /// Virtual bucket number the pop cursor is on (`time / width`).
    vcur: u64,
    len: usize,
    /// Smoothed inter-event gap observed at pops (ns, >= 1); the
    /// incremental signal the width adaptation feeds on. Measured as the
    /// mean over [`GAP_WINDOW`]-pop windows — pop times are globally
    /// nondecreasing, so a window mean is one subtraction, and unlike a
    /// per-pop EWMA it cannot be dragged to zero by a run of ties.
    gap_ewma_ns: u64,
    /// Pops observed in the current measurement window.
    gap_window_pops: u32,
    /// Pop time that opened the current measurement window.
    gap_window_start_ns: u64,
    /// Operations since the last resize; re-adaptations are rationed to
    /// at most one per population's worth of traffic so resize work
    /// stays amortised O(1).
    ops_since_resize: u64,
    /// Total entry shifts paid by mid-bucket inserts (the linear-scan
    /// pathology this structure is designed to avoid); pinned by the
    /// same-timestamp regression test.
    shift_ops: u64,
    /// Total geometry rebuilds (diagnostics; resizes must stay rare).
    resizes: u64,
    /// Reused drain buffer for resizes (no allocation at steady state).
    scratch: Vec<(u64, u64, T)>,
}

const MIN_BUCKETS: usize = 4;

/// Pops per inter-event-gap measurement window.
const GAP_WINDOW: u32 = 32;

/// Target mean entries per bucket after a resize. A handful per bucket
/// (rather than Brown's ~1) keeps the bucket array — and its resident
/// cache footprint — 4x smaller, while a mid-bucket insert still only
/// memmoves a few 16-byte entries.
const ENTRIES_PER_BUCKET: usize = 4;

impl<T: Clone> Default for CalendarQueue<T> {
    fn default() -> Self {
        CalendarQueue::new()
    }
}

impl<T: Clone> CalendarQueue<T> {
    /// An empty queue with the initial bucket geometry.
    pub fn new() -> CalendarQueue<T> {
        CalendarQueue {
            buckets: (0..MIN_BUCKETS).map(|_| Bucket::default()).collect(),
            mask: MIN_BUCKETS as u64 - 1,
            width_shift: 10,
            vcur: 0,
            len: 0,
            gap_ewma_ns: 0,
            gap_window_pops: 0,
            gap_window_start_ns: 0,
            ops_since_resize: 0,
            shift_ops: 0,
            resizes: 0,
            scratch: Vec::new(),
        }
    }

    /// Number of queued events.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Total entry shifts mid-bucket inserts have paid so far — the
    /// work a same-timestamp burst would degrade into without skew
    /// re-adaptation. Exposed for regression tests and benches.
    pub fn shift_ops(&self) -> u64 {
        self.shift_ops
    }

    /// Total geometry rebuilds so far. Resizes are rationed by the
    /// ops-since-resize cooldown, so this must stay far below the
    /// operation count; exposed for regression tests and benches.
    pub fn resizes(&self) -> u64 {
        self.resizes
    }

    #[inline]
    fn bucket_of(&self, time_ns: u64) -> usize {
        ((time_ns >> self.width_shift) & self.mask) as usize
    }

    /// End of virtual day `vb`, saturating at the top of the range.
    #[inline]
    fn day_end(&self, vb: u64) -> u64 {
        let next = vb + 1;
        if next > (u64::MAX >> self.width_shift) {
            u64::MAX
        } else {
            next << self.width_shift
        }
    }

    /// Inserts an event. `(time_ns, seq)` pairs must be unique (the
    /// engine's global insertion sequence guarantees it).
    pub fn push(&mut self, time_ns: u64, seq: u64, item: T) {
        let index = self.bucket_of(time_ns);
        let shifted = self.buckets[index].insert(time_ns, seq, item);
        self.shift_ops += shifted as u64;
        self.len += 1;
        self.ops_since_resize += 1;
        // An event earlier than the cursor's day pulls the cursor back.
        let vb = time_ns >> self.width_shift;
        if vb < self.vcur {
            self.vcur = vb;
        }
        if self.len > 2 * ENTRIES_PER_BUCKET * self.buckets.len() {
            self.resize();
        } else if shifted > 8 && self.skewed(index) {
            // A burst piled into one bucket and mid-bucket inserts are
            // paying linear shifts: re-adapt the geometry now instead of
            // waiting for the next population threshold.
            self.resize();
        }
    }

    /// Whether `index` holds an outsized share of the population and
    /// enough traffic has passed since the last resize (the cooldown
    /// keeps an un-splittable burst — identical timestamps — from
    /// resizing on every push).
    fn skewed(&self, index: usize) -> bool {
        let live = self.buckets[index].live();
        live >= 8 * ENTRIES_PER_BUCKET
            && live * self.buckets.len() >= 4 * self.len
            && self.ops_since_resize >= self.len as u64 / 2
    }

    /// Whether the incrementally observed inter-event gap has drifted
    /// far enough from the current day width that the geometry is stale
    /// (a steady-state population never crosses the len thresholds, so
    /// this is what keeps the width honest after the warm-up spread).
    fn width_stale(&self) -> bool {
        if self.gap_ewma_ns == 0 || self.ops_since_resize < self.len as u64 {
            return false;
        }
        let width = 1u64 << self.width_shift;
        let target = self.width_target();
        width > 4 * target || 4 * width < target
    }

    /// Ideal day width from the gap estimate: a day should hold about
    /// [`ENTRIES_PER_BUCKET`] gap-sized strides (min 1 ns). Both
    /// [`Self::resize`] and the staleness check use this, so they can
    /// never disagree about the geometry they want.
    fn width_target(&self) -> u64 {
        (2 * ENTRIES_PER_BUCKET as u64 * self.gap_ewma_ns).max(1)
    }

    /// Removes and returns the earliest event by `(time_ns, seq)`.
    pub fn pop(&mut self) -> Option<(u64, u64, T)> {
        if self.len == 0 {
            self.gap_window_pops = 0;
            return None;
        }
        let nbuckets = self.buckets.len() as u64;
        for vb in self.vcur..=self.vcur.saturating_add(nbuckets) {
            let index = (vb & self.mask) as usize;
            if let Some((time_ns, _)) = self.buckets[index].first_key() {
                // Within this bucket's current "day"?
                if time_ns < self.day_end(vb) {
                    self.vcur = vb;
                    let (t, s, item) = self.buckets[index].pop_min();
                    return Some(self.note_pop(t, s, item));
                }
            }
        }
        // A full year passed with no event in its day: the set is sparse
        // relative to the current geometry. Find the global minimum
        // directly (each bucket's minimum is its head) and jump to it.
        let (index, _) = self
            .buckets
            .iter()
            .enumerate()
            .filter_map(|(i, b)| b.first_key().map(|key| (i, key)))
            .min_by_key(|&(_, key)| key)
            .expect("len > 0 means some bucket is non-empty");
        let (t, s, item) = self.buckets[index].pop_min();
        self.vcur = t >> self.width_shift;
        Some(self.note_pop(t, s, item))
    }

    fn note_pop(&mut self, time_ns: u64, seq: u64, item: T) -> (u64, u64, T) {
        self.len -= 1;
        // Incremental width signal: windowed mean of the head's gap.
        if self.gap_window_pops == 0 {
            self.gap_window_start_ns = time_ns;
        }
        self.gap_window_pops += 1;
        if self.gap_window_pops > GAP_WINDOW {
            let mean = ((time_ns - self.gap_window_start_ns) / GAP_WINDOW as u64).max(1);
            self.gap_ewma_ns = if self.gap_ewma_ns == 0 {
                mean
            } else {
                (self.gap_ewma_ns + mean) / 2
            };
            self.gap_window_pops = 0;
        }
        self.ops_since_resize += 1;
        if (self.len < self.buckets.len() && self.buckets.len() > MIN_BUCKETS) || self.width_stale()
        {
            self.resize();
        }
        (time_ns, seq, item)
    }

    /// Rebuilds the calendar with a bucket count proportional to the
    /// population and a day width from the incremental gap estimate
    /// (falling back to a deterministic span sample when no pops have
    /// been observed yet) — Brown's adaptation without the re-sampling
    /// pass on the hot path. Entries move through a reused scratch
    /// buffer and are re-sorted per destination bucket (a handful of
    /// entries each), never globally.
    fn resize(&mut self) {
        let mut scratch = std::mem::take(&mut self.scratch);
        scratch.clear();
        for bucket in &mut self.buckets {
            bucket.drain_into(&mut scratch);
        }

        let nbuckets = (self.len / ENTRIES_PER_BUCKET)
            .next_power_of_two()
            .max(MIN_BUCKETS);
        // Day width from the incremental gap estimate, rounded up to a
        // power of two so day lookups stay shifts; before any pops have
        // been observed, fall back to the population's observed span.
        let target_ns = if self.gap_ewma_ns > 0 {
            self.width_target()
        } else if scratch.len() >= 2 {
            let min = scratch.iter().map(|e| e.0).min().expect("non-empty");
            let max = scratch.iter().map(|e| e.0).max().expect("non-empty");
            (2 * ENTRIES_PER_BUCKET as u64 * (max - min) / scratch.len() as u64).max(1)
        } else {
            1u64 << self.width_shift
        };
        let width_shift = 63 - target_ns.next_power_of_two().min(1 << 62).leading_zeros();

        if self.buckets.len() != nbuckets {
            self.buckets = (0..nbuckets).map(|_| Bucket::default()).collect();
            self.mask = nbuckets as u64 - 1;
        }
        self.width_shift = width_shift;
        self.vcur = scratch
            .iter()
            .map(|e| e.0 >> width_shift)
            .min()
            .unwrap_or(0);
        self.ops_since_resize = 0;
        self.resizes += 1;
        // Each destination bucket re-sorts its handful of entries via
        // ordered insert; resize shuffling is not a hot-path shift, so
        // it stays out of `shift_ops`.
        for (time_ns, seq, item) in scratch.drain(..) {
            let index = ((time_ns >> width_shift) & self.mask) as usize;
            self.buckets[index].insert(time_ns, seq, item);
        }
        self.scratch = scratch;
    }
}

/// The engine's future event set: one of the two [`QueueKind`]s behind a
/// common `(time, seq)`-ordered push/pop interface.
#[derive(Clone, Debug)]
pub struct EventQueue<T> {
    inner: Inner<T>,
}

#[derive(Clone, Debug)]
enum Inner<T> {
    Heap(BinaryHeap<Reverse<HeapEntry<T>>>),
    Calendar(CalendarQueue<T>),
}

impl<T: Clone> EventQueue<T> {
    /// An empty queue of the requested kind.
    pub fn new(kind: QueueKind) -> EventQueue<T> {
        let inner = match kind {
            QueueKind::Heap => Inner::Heap(BinaryHeap::new()),
            QueueKind::Calendar => Inner::Calendar(CalendarQueue::new()),
        };
        EventQueue { inner }
    }

    /// Which implementation this is.
    pub fn kind(&self) -> QueueKind {
        match &self.inner {
            Inner::Heap(_) => QueueKind::Heap,
            Inner::Calendar(_) => QueueKind::Calendar,
        }
    }

    /// Inserts an event under its `(time_ns, seq)` key.
    pub fn push(&mut self, time_ns: u64, seq: u64, item: T) {
        match &mut self.inner {
            Inner::Heap(heap) => heap.push(Reverse(HeapEntry { time_ns, seq, item })),
            Inner::Calendar(cal) => cal.push(time_ns, seq, item),
        }
    }

    /// Removes and returns the earliest event by `(time_ns, seq)`.
    pub fn pop(&mut self) -> Option<(u64, u64, T)> {
        match &mut self.inner {
            Inner::Heap(heap) => heap.pop().map(|Reverse(e)| (e.time_ns, e.seq, e.item)),
            Inner::Calendar(cal) => cal.pop(),
        }
    }

    /// Number of queued events.
    pub fn len(&self) -> usize {
        match &self.inner {
            Inner::Heap(heap) => heap.len(),
            Inner::Calendar(cal) => cal.len(),
        }
    }

    /// True when nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tut_trace::SplitMix64;

    #[test]
    fn pops_in_time_then_seq_order() {
        for kind in [QueueKind::Heap, QueueKind::Calendar] {
            let mut q: EventQueue<&'static str> = EventQueue::new(kind);
            // Three simultaneous events pushed out of seq order, plus
            // earlier and later neighbours.
            q.push(5, 2, "pe_free");
            q.push(5, 0, "deliver");
            q.push(7, 3, "late");
            q.push(5, 1, "timer");
            q.push(2, 4, "early");
            let order: Vec<_> = std::iter::from_fn(|| q.pop()).collect();
            assert_eq!(
                order,
                vec![
                    (2, 4, "early"),
                    (5, 0, "deliver"),
                    (5, 1, "timer"),
                    (5, 2, "pe_free"),
                    (7, 3, "late"),
                ],
                "{} queue broke the (time, seq) order",
                kind.name()
            );
        }
    }

    /// Drives both kinds with an identical randomised hold pattern
    /// (interleaved pushes and pops, clustered times, deliberate ties)
    /// and requires the exact same pop sequence.
    #[test]
    fn calendar_matches_heap_on_randomised_hold_pattern() {
        for seed in 0..8u64 {
            let mut rng = SplitMix64::new(0xCA1E_0000 + seed);
            let mut heap: EventQueue<u64> = EventQueue::new(QueueKind::Heap);
            let mut cal: EventQueue<u64> = EventQueue::new(QueueKind::Calendar);
            let mut seq = 0u64;
            let mut now = 0u64;
            for _ in 0..5_000 {
                let burst = 1 + rng.next_below(4);
                for _ in 0..burst {
                    // Clustered around `now`, with exact ties ~1/4 of
                    // the time.
                    let dt = if rng.next_below(4) == 0 {
                        0
                    } else {
                        rng.next_below(5_000)
                    };
                    let t = now + dt;
                    heap.push(t, seq, seq);
                    cal.push(t, seq, seq);
                    seq += 1;
                }
                let pops = 1 + rng.next_below(burst + 1);
                for _ in 0..pops {
                    let a = heap.pop();
                    let b = cal.pop();
                    assert_eq!(a, b, "seed {seed} diverged at seq {seq}");
                    if let Some((t, _, _)) = a {
                        now = t;
                    }
                }
            }
            // Drain both completely.
            loop {
                let a = heap.pop();
                let b = cal.pop();
                assert_eq!(a, b, "seed {seed} diverged during drain");
                if a.is_none() {
                    break;
                }
            }
        }
    }

    #[test]
    fn resize_preserves_content_and_order() {
        let mut cal: CalendarQueue<u64> = CalendarQueue::new();
        // Push far more than the initial geometry holds, with a huge
        // spread, then a tight cluster: forces grows and width changes.
        for i in 0..1_000u64 {
            cal.push(i * 1_000_000, i, i);
        }
        for i in 1_000..2_000u64 {
            cal.push(500, i, i);
        }
        let mut prev = None;
        let mut count = 0;
        while let Some((t, s, _)) = cal.pop() {
            if let Some(p) = prev {
                assert!((t, s) > p, "order violated: {:?} then {:?}", p, (t, s));
            }
            prev = Some((t, s));
            count += 1;
        }
        assert_eq!(count, 2_000);
        assert!(cal.is_empty());
    }

    #[test]
    fn sparse_times_trigger_direct_search() {
        let mut cal: CalendarQueue<u32> = CalendarQueue::new();
        // Two events much further apart than nbuckets * width: the
        // year-scan gives up and the direct search must find the second.
        cal.push(10, 0, 1);
        cal.push(10_000_000_000, 1, 2);
        assert_eq!(cal.pop(), Some((10, 0, 1)));
        assert_eq!(cal.pop(), Some((10_000_000_000, 1, 2)));
        assert_eq!(cal.pop(), None);
    }

    #[test]
    fn bucket_storage_stays_bounded_across_hold_rounds() {
        let mut cal: CalendarQueue<u32> = CalendarQueue::new();
        for round in 0..1_000u64 {
            for i in 0..8u64 {
                cal.push(round * 100 + i, round * 8 + i, i as u32);
            }
            for _ in 0..8 {
                cal.pop().unwrap();
            }
        }
        // 8 live events at a time -> the geometry and its allocations
        // must not grow with the number of rounds.
        assert!(
            cal.buckets.len() <= 64,
            "bucket array grew to {}",
            cal.buckets.len()
        );
        let capacity: usize = cal.buckets.iter().map(|b| b.times.capacity()).sum();
        assert!(capacity <= 4_096, "bucket capacity grew to {capacity}");
    }

    /// The resize pathology the skew trigger fixes: a burst of events at
    /// one timestamp, pushed *behind* an existing spread that shares its
    /// bucket, used to pay a linear shift per insert. With skew-triggered
    /// re-adaptation the total shift work stays near-constant instead of
    /// quadratic in the burst size.
    #[test]
    fn same_timestamp_burst_does_not_degrade_to_linear_scans() {
        let mut cal: CalendarQueue<u64> = CalendarQueue::new();
        let mut seq = 0u64;
        // A spread population that fixes a wide day geometry.
        for i in 0..256u64 {
            cal.push(i * 10_000, seq, seq);
            seq += 1;
        }
        // Now a same-timestamp burst early in the range: every entry maps
        // to one bucket, behind later-day entries sharing it.
        for _ in 0..2_000u64 {
            cal.push(5_000, seq, seq);
            seq += 1;
        }
        let shifts = cal.shift_ops();
        // Quadratic degradation would pay ~2M shifts here; the skew
        // trigger keeps it around the cost of a couple of re-adaptations.
        assert!(
            shifts < 50_000,
            "same-timestamp burst paid {shifts} entry shifts"
        );
        // And the order contract still holds through the pathology.
        let mut heap: EventQueue<u64> = EventQueue::new(QueueKind::Heap);
        let mut expect = 0u64;
        for i in 0..256u64 {
            heap.push(i * 10_000, expect, expect);
            expect += 1;
        }
        for _ in 0..2_000u64 {
            heap.push(5_000, expect, expect);
            expect += 1;
        }
        loop {
            let a = heap.pop();
            let b = cal.pop();
            assert_eq!(a, b, "burst pattern diverged from heap order");
            if a.is_none() {
                break;
            }
        }
    }

    /// The incremental gap estimate steers resizes: a steady hold
    /// pattern settles the day width near twice the observed gap rather
    /// than whatever the initial geometry guessed.
    #[test]
    fn width_tracks_observed_gap() {
        let mut cal: CalendarQueue<u64> = CalendarQueue::new();
        let mut seq = 0u64;
        let mut now = 0u64;
        for _ in 0..64u64 {
            cal.push(now + 7_000, seq, seq);
            seq += 1;
            now = cal.pop().expect("queued").0;
        }
        // Keep enough population to force a resize after the gap signal
        // exists.
        for i in 0..64u64 {
            cal.push(now + 7_000 * (i + 1), seq, seq);
            seq += 1;
        }
        assert!(cal.gap_ewma_ns > 0, "pops should have fed the gap estimate");
        // Target width is ~2 * ENTRIES_PER_BUCKET gap strides, rounded
        // up to a power of two: within [gap, 16 * gap].
        let width_ns = 1u64 << cal.width_shift;
        assert!(
            width_ns >= cal.gap_ewma_ns && width_ns <= 16 * cal.gap_ewma_ns.max(1),
            "width {} should track the gap estimate {}",
            width_ns,
            cal.gap_ewma_ns
        );
    }
}
