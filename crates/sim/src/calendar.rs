//! Event scheduling structures for the engine's future-event set.
//!
//! The engine needs one operation pair — `push(time, seq, event)` /
//! `pop() -> earliest (time, seq)` — with a **total** order: earliest
//! `time_ns` first, ties broken by insertion `seq`. That tie-break is the
//! determinism contract of the whole simulator (and of the parallel
//! kernel's merge), so both implementations here reproduce it exactly:
//!
//! * [`QueueKind::Heap`] — the classic `BinaryHeap<Reverse<_>>`:
//!   O(log n) per operation, no tuning, the reference implementation.
//! * [`QueueKind::Calendar`] — a calendar queue (R. Brown, CACM 1988):
//!   events hash into time-ordered buckets ("days") of width
//!   `width_ns`; popping scans the current day and wraps around the
//!   "year". With the width adapted to the inter-event gap the expected
//!   cost is O(1) per operation. Payloads live in a slab so bucket
//!   entries stay small and `Copy`.
//!
//! Both kinds pop the *identical* sequence for the same pushes — pinned
//! by tests and by the engine's byte-identical-log property tests.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Which future-event-set implementation a simulation uses.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum QueueKind {
    /// Calendar queue with slab-allocated events (default: O(1) amortised
    /// hold operations on the simulation hot path).
    #[default]
    Calendar,
    /// Binary min-heap (`BinaryHeap<Reverse<_>>`), the reference
    /// implementation.
    Heap,
}

impl QueueKind {
    /// Stable lower-case name (used by benches and reports).
    pub fn name(self) -> &'static str {
        match self {
            QueueKind::Calendar => "calendar",
            QueueKind::Heap => "heap",
        }
    }
}

/// One heap element: ordered by `(time_ns, seq)` only, the payload is
/// carried along.
#[derive(Clone, Debug)]
struct HeapEntry<T> {
    time_ns: u64,
    seq: u64,
    item: T,
}

impl<T> PartialEq for HeapEntry<T> {
    fn eq(&self, other: &Self) -> bool {
        self.time_ns == other.time_ns && self.seq == other.seq
    }
}
impl<T> Eq for HeapEntry<T> {}
impl<T> PartialOrd for HeapEntry<T> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<T> Ord for HeapEntry<T> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.time_ns, self.seq).cmp(&(other.time_ns, other.seq))
    }
}

/// One calendar bucket entry: the ordering key plus the payload's slab
/// slot. `Copy`, so bucket maintenance moves 20 bytes, never the event.
#[derive(Clone, Copy, Debug)]
struct BucketEntry {
    time_ns: u64,
    seq: u64,
    slot: u32,
}

impl BucketEntry {
    #[inline]
    fn key(&self) -> (u64, u64) {
        (self.time_ns, self.seq)
    }
}

/// A calendar queue over slab-allocated payloads.
///
/// Buckets are kept sorted **descending** by `(time_ns, seq)` so the
/// bucket minimum is `last()` and popping it is O(1). The cursor walks
/// "virtual bucket numbers" (`time / width`), so events pushed behind
/// the cursor (same simulated time, later insertion) simply pull the
/// cursor back — order stays exact.
#[derive(Clone, Debug)]
pub struct CalendarQueue<T> {
    /// Payload slab; bucket entries point into it.
    slab: Vec<Option<T>>,
    /// Free slots of `slab`.
    free: Vec<u32>,
    /// Power-of-two bucket array.
    buckets: Vec<Vec<BucketEntry>>,
    /// `buckets.len() - 1`.
    mask: u64,
    /// Bucket ("day") width in nanoseconds.
    width_ns: u64,
    /// Virtual bucket number the pop cursor is on (`time / width`).
    vcur: u64,
    len: usize,
}

const MIN_BUCKETS: usize = 4;

impl<T> Default for CalendarQueue<T> {
    fn default() -> Self {
        CalendarQueue::new()
    }
}

impl<T> CalendarQueue<T> {
    /// An empty queue with the initial bucket geometry.
    pub fn new() -> CalendarQueue<T> {
        CalendarQueue {
            slab: Vec::new(),
            free: Vec::new(),
            buckets: vec![Vec::new(); MIN_BUCKETS],
            mask: MIN_BUCKETS as u64 - 1,
            width_ns: 1_024,
            vcur: 0,
            len: 0,
        }
    }

    /// Number of queued events.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    #[inline]
    fn bucket_of(&self, time_ns: u64) -> usize {
        ((time_ns / self.width_ns) & self.mask) as usize
    }

    /// Inserts an event. `(time_ns, seq)` pairs must be unique (the
    /// engine's global insertion sequence guarantees it).
    pub fn push(&mut self, time_ns: u64, seq: u64, item: T) {
        let slot = match self.free.pop() {
            Some(slot) => {
                self.slab[slot as usize] = Some(item);
                slot
            }
            None => {
                let slot = u32::try_from(self.slab.len()).expect("calendar slab overflow");
                self.slab.push(Some(item));
                slot
            }
        };
        let entry = BucketEntry { time_ns, seq, slot };
        let index = self.bucket_of(time_ns);
        let bucket = &mut self.buckets[index];
        // Descending order: find the first element <= entry and insert
        // before it. Buckets are short (the resize policy keeps the load
        // factor ~1), so this is a handful of comparisons.
        let pos = bucket.partition_point(|e| e.key() > entry.key());
        bucket.insert(pos, entry);
        self.len += 1;
        // An event earlier than the cursor's day pulls the cursor back.
        let vb = time_ns / self.width_ns;
        if vb < self.vcur {
            self.vcur = vb;
        }
        if self.len > 2 * self.buckets.len() {
            self.resize();
        }
    }

    /// Removes and returns the earliest event by `(time_ns, seq)`.
    pub fn pop(&mut self) -> Option<(u64, u64, T)> {
        if self.len == 0 {
            return None;
        }
        let nbuckets = self.buckets.len() as u64;
        for vb in self.vcur..=self.vcur.saturating_add(nbuckets) {
            let index = (vb & self.mask) as usize;
            if let Some(&entry) = self.buckets[index].last() {
                // Within this bucket's current "day"?
                let day_end = (vb + 1).saturating_mul(self.width_ns);
                if entry.time_ns < day_end {
                    self.buckets[index].pop();
                    self.vcur = vb;
                    return Some(self.take(entry));
                }
            }
        }
        // A full year passed with no event in its day: the set is sparse
        // relative to the current geometry. Find the global minimum
        // directly (each bucket's minimum is its tail) and jump to it.
        let entry = self
            .buckets
            .iter()
            .filter_map(|b| b.last().copied())
            .min_by_key(BucketEntry::key)
            .expect("len > 0 means some bucket is non-empty");
        let index = self.bucket_of(entry.time_ns);
        self.buckets[index].pop();
        self.vcur = entry.time_ns / self.width_ns;
        Some(self.take(entry))
    }

    fn take(&mut self, entry: BucketEntry) -> (u64, u64, T) {
        self.len -= 1;
        let item = self.slab[entry.slot as usize]
            .take()
            .expect("bucket entry points at a live slot");
        self.free.push(entry.slot);
        if self.len < self.buckets.len() / 4 && self.buckets.len() > MIN_BUCKETS {
            self.resize();
        }
        (entry.time_ns, entry.seq, item)
    }

    /// Rebuilds the calendar with a bucket count proportional to the
    /// population and a day width matched to the observed inter-event
    /// gap near the head (Brown's adaptation, deterministic variant).
    fn resize(&mut self) {
        let mut entries: Vec<BucketEntry> = Vec::with_capacity(self.len);
        for bucket in &mut self.buckets {
            entries.append(bucket);
        }
        // Ascending (time, seq).
        entries.sort_unstable_by_key(BucketEntry::key);

        let nbuckets = self.len.next_power_of_two().max(MIN_BUCKETS);
        // Average gap over the first events (the ones about to be
        // popped), doubled so a day holds ~2 events; min 1 ns.
        let sample = entries.len().min(64);
        let width_ns = if sample >= 2 {
            let span = entries[sample - 1].time_ns - entries[0].time_ns;
            (2 * span / (sample as u64 - 1)).max(1)
        } else {
            self.width_ns
        };

        self.buckets = vec![Vec::new(); nbuckets];
        self.mask = nbuckets as u64 - 1;
        self.width_ns = width_ns;
        self.vcur = entries.first().map_or(0, |e| e.time_ns / width_ns);
        // Distribute in descending order so each bucket's vec stays
        // sorted descending with plain appends.
        for entry in entries.into_iter().rev() {
            let index = ((entry.time_ns / width_ns) & self.mask) as usize;
            self.buckets[index].push(entry);
        }
    }
}

/// The engine's future event set: one of the two [`QueueKind`]s behind a
/// common `(time, seq)`-ordered push/pop interface.
#[derive(Clone, Debug)]
pub struct EventQueue<T> {
    inner: Inner<T>,
}

#[derive(Clone, Debug)]
enum Inner<T> {
    Heap(BinaryHeap<Reverse<HeapEntry<T>>>),
    Calendar(CalendarQueue<T>),
}

impl<T: Clone> EventQueue<T> {
    /// An empty queue of the requested kind.
    pub fn new(kind: QueueKind) -> EventQueue<T> {
        let inner = match kind {
            QueueKind::Heap => Inner::Heap(BinaryHeap::new()),
            QueueKind::Calendar => Inner::Calendar(CalendarQueue::new()),
        };
        EventQueue { inner }
    }

    /// Which implementation this is.
    pub fn kind(&self) -> QueueKind {
        match &self.inner {
            Inner::Heap(_) => QueueKind::Heap,
            Inner::Calendar(_) => QueueKind::Calendar,
        }
    }

    /// Inserts an event under its `(time_ns, seq)` key.
    pub fn push(&mut self, time_ns: u64, seq: u64, item: T) {
        match &mut self.inner {
            Inner::Heap(heap) => heap.push(Reverse(HeapEntry { time_ns, seq, item })),
            Inner::Calendar(cal) => cal.push(time_ns, seq, item),
        }
    }

    /// Removes and returns the earliest event by `(time_ns, seq)`.
    pub fn pop(&mut self) -> Option<(u64, u64, T)> {
        match &mut self.inner {
            Inner::Heap(heap) => heap.pop().map(|Reverse(e)| (e.time_ns, e.seq, e.item)),
            Inner::Calendar(cal) => cal.pop(),
        }
    }

    /// Number of queued events.
    pub fn len(&self) -> usize {
        match &self.inner {
            Inner::Heap(heap) => heap.len(),
            Inner::Calendar(cal) => cal.len(),
        }
    }

    /// True when nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tut_trace::SplitMix64;

    #[test]
    fn pops_in_time_then_seq_order() {
        for kind in [QueueKind::Heap, QueueKind::Calendar] {
            let mut q: EventQueue<&'static str> = EventQueue::new(kind);
            // Three simultaneous events pushed out of seq order, plus
            // earlier and later neighbours.
            q.push(5, 2, "pe_free");
            q.push(5, 0, "deliver");
            q.push(7, 3, "late");
            q.push(5, 1, "timer");
            q.push(2, 4, "early");
            let order: Vec<_> = std::iter::from_fn(|| q.pop()).collect();
            assert_eq!(
                order,
                vec![
                    (2, 4, "early"),
                    (5, 0, "deliver"),
                    (5, 1, "timer"),
                    (5, 2, "pe_free"),
                    (7, 3, "late"),
                ],
                "{} queue broke the (time, seq) order",
                kind.name()
            );
        }
    }

    /// Drives both kinds with an identical randomised hold pattern
    /// (interleaved pushes and pops, clustered times, deliberate ties)
    /// and requires the exact same pop sequence.
    #[test]
    fn calendar_matches_heap_on_randomised_hold_pattern() {
        for seed in 0..8u64 {
            let mut rng = SplitMix64::new(0xCA1E_0000 + seed);
            let mut heap: EventQueue<u64> = EventQueue::new(QueueKind::Heap);
            let mut cal: EventQueue<u64> = EventQueue::new(QueueKind::Calendar);
            let mut seq = 0u64;
            let mut now = 0u64;
            for _ in 0..5_000 {
                let burst = 1 + rng.next_below(4);
                for _ in 0..burst {
                    // Clustered around `now`, with exact ties ~1/4 of
                    // the time.
                    let dt = if rng.next_below(4) == 0 {
                        0
                    } else {
                        rng.next_below(5_000)
                    };
                    let t = now + dt;
                    heap.push(t, seq, seq);
                    cal.push(t, seq, seq);
                    seq += 1;
                }
                let pops = 1 + rng.next_below(burst + 1);
                for _ in 0..pops {
                    let a = heap.pop();
                    let b = cal.pop();
                    assert_eq!(a, b, "seed {seed} diverged at seq {seq}");
                    if let Some((t, _, _)) = a {
                        now = t;
                    }
                }
            }
            // Drain both completely.
            loop {
                let a = heap.pop();
                let b = cal.pop();
                assert_eq!(a, b, "seed {seed} diverged during drain");
                if a.is_none() {
                    break;
                }
            }
        }
    }

    #[test]
    fn resize_preserves_content_and_order() {
        let mut cal: CalendarQueue<u64> = CalendarQueue::new();
        // Push far more than the initial geometry holds, with a huge
        // spread, then a tight cluster: forces grows and width changes.
        for i in 0..1_000u64 {
            cal.push(i * 1_000_000, i, i);
        }
        for i in 1_000..2_000u64 {
            cal.push(500, i, i);
        }
        let mut prev = None;
        let mut count = 0;
        while let Some((t, s, _)) = cal.pop() {
            if let Some(p) = prev {
                assert!((t, s) > p, "order violated: {:?} then {:?}", p, (t, s));
            }
            prev = Some((t, s));
            count += 1;
        }
        assert_eq!(count, 2_000);
        assert!(cal.is_empty());
    }

    #[test]
    fn sparse_times_trigger_direct_search() {
        let mut cal: CalendarQueue<u32> = CalendarQueue::new();
        // Two events much further apart than nbuckets * width: the
        // year-scan gives up and the direct search must find the second.
        cal.push(10, 0, 1);
        cal.push(10_000_000_000, 1, 2);
        assert_eq!(cal.pop(), Some((10, 0, 1)));
        assert_eq!(cal.pop(), Some((10_000_000_000, 1, 2)));
        assert_eq!(cal.pop(), None);
    }

    #[test]
    fn slab_slots_are_recycled() {
        let mut cal: CalendarQueue<u32> = CalendarQueue::new();
        for round in 0..10u64 {
            for i in 0..8u64 {
                cal.push(round * 100 + i, round * 8 + i, i as u32);
            }
            for _ in 0..8 {
                cal.pop().unwrap();
            }
        }
        // 8 live events at a time -> the slab never needs more slots.
        assert!(cal.slab.len() <= 8, "slab grew to {}", cal.slab.len());
    }
}
