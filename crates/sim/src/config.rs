//! Simulation configuration.

use crate::calendar::QueueKind;
use tut_platform::CostModel;

/// The per-processor scheduling policy — the paper's conclusion names
/// "real-time operating system will be used in system processors" as
/// future work; this is that RTOS model at run-to-completion granularity
/// (EFSM steps are atomic critical sections, as in SDL-style RTOSes).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum SchedPolicy {
    /// Fixed-priority dispatch: the ready process with the highest
    /// `Priority` tagged value runs first (default; matches the profile's
    /// `Priority` semantics).
    #[default]
    Priority,
    /// Round-robin dispatch: ready processes take turns regardless of
    /// priority (a fairness baseline for the RTOS ablation).
    RoundRobin,
}

/// RTOS parameters of the processing elements.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Scheduler {
    /// Dispatch policy.
    pub policy: SchedPolicy,
    /// Cycles charged when a processing element switches from one process
    /// to a different one (context save/restore). Zero models a bare-metal
    /// single loop.
    pub context_switch_cycles: u64,
}

impl Default for Scheduler {
    fn default() -> Self {
        Scheduler {
            policy: SchedPolicy::Priority,
            context_switch_cycles: 0,
        }
    }
}

/// What an attached [`tut_trace::TraceSink`] receives from the engine.
///
/// These only select *which* events are emitted; with the default
/// [`tut_trace::NoopSink`] nothing is recorded regardless, and the
/// simulated behaviour (report, log) never depends on them.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct TraceOptions {
    /// One span per run-to-completion step on the executing element's
    /// `pe/<name>` track (simulated clock).
    pub step_spans: bool,
    /// Event-queue depth counter samples on the `sim/events` track each
    /// time the engine pops an event.
    pub queue_depth: bool,
}

impl Default for TraceOptions {
    fn default() -> Self {
        TraceOptions {
            step_spans: true,
            queue_depth: true,
        }
    }
}

/// Watchdog limits that convert livelock into a structured
/// [`crate::SimError::WatchdogExpired`] instead of running (or idling)
/// to the horizon.
///
/// Both limits default to 0 = disabled, so the watchdog never changes
/// the behaviour of existing configurations.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct Watchdog {
    /// Abort after this many popped events (0 = unlimited). Catches
    /// event storms such as unbounded ARQ retry loops.
    pub max_events: u64,
    /// Abort when no run-to-completion step has executed on a
    /// non-environment element for this much *simulated* time while
    /// events keep flowing (0 = no deadline). Catches quiescent livelock
    /// such as a stalled processing element with traffic still arriving.
    pub quiescence_ns: u64,
}

impl Watchdog {
    /// True when either limit is armed.
    pub fn is_armed(&self) -> bool {
        self.max_events > 0 || self.quiescence_ns > 0
    }
}

/// Tunables of one simulation run.
#[derive(Clone, PartialEq, Debug)]
pub struct SimConfig {
    /// Stop once simulated time passes this horizon (nanoseconds).
    pub max_time_ns: u64,
    /// Stop after this many run-to-completion steps (runaway guard).
    pub max_steps: u64,
    /// The execution cost model.
    pub cost_model: CostModel,
    /// Delivery latency for signals between processes on the same
    /// processing element (local queue push), nanoseconds.
    pub local_latency_ns: u64,
    /// Delivery latency for signals crossing the environment boundary
    /// (traffic sources, radio channel), nanoseconds.
    pub env_latency_ns: u64,
    /// Protocol header bytes added to every signal payload on the bus.
    pub header_bytes: u64,
    /// Sender-side copy cost: one `mem` workload unit per this many
    /// payload bytes.
    pub bytes_per_mem_unit: u64,
    /// The RTOS scheduling model of the processing elements.
    pub scheduler: Scheduler,
    /// Event selection for [`crate::Simulation::run_with`] tracing.
    pub trace: TraceOptions,
    /// Livelock watchdog (disabled by default).
    pub watchdog: Watchdog,
    /// Future-event-set implementation (default: calendar queue). Both
    /// kinds pop the identical `(time, seq)` sequence; this only trades
    /// constant factors on the hot path.
    pub queue: QueueKind,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            max_time_ns: 10_000_000, // 10 ms
            max_steps: 2_000_000,
            cost_model: CostModel::paper_defaults(),
            local_latency_ns: 20,
            env_latency_ns: 1_000,
            header_bytes: 8,
            bytes_per_mem_unit: 4,
            scheduler: Scheduler::default(),
            trace: TraceOptions::default(),
            watchdog: Watchdog::default(),
            queue: QueueKind::default(),
        }
    }
}

impl SimConfig {
    /// A configuration with the given time horizon and defaults for the
    /// rest.
    pub fn with_horizon_ns(max_time_ns: u64) -> SimConfig {
        SimConfig {
            max_time_ns,
            ..SimConfig::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sane() {
        let c = SimConfig::default();
        assert!(c.max_time_ns > 0);
        assert!(c.max_steps > 0);
        assert!(c.bytes_per_mem_unit > 0);
    }

    #[test]
    fn with_horizon() {
        let c = SimConfig::with_horizon_ns(123);
        assert_eq!(c.max_time_ns, 123);
    }

    #[test]
    fn watchdog_defaults_to_disarmed() {
        let c = SimConfig::default();
        assert!(!c.watchdog.is_armed());
        assert!(Watchdog {
            max_events: 1,
            quiescence_ns: 0
        }
        .is_armed());
        assert!(Watchdog {
            max_events: 0,
            quiescence_ns: 1
        }
        .is_armed());
    }
}
