//! Simulation results: per-process and per-element statistics plus the
//! log.

use crate::log::SimLog;

/// Per-process counters accumulated during a run.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct ProcessStats {
    /// Run-to-completion steps executed.
    pub steps: u64,
    /// Total cycles charged on the process's processing element.
    pub cycles: u64,
    /// Total busy time in nanoseconds.
    pub busy_ns: u64,
    /// Signals sent (counted per receiver).
    pub signals_sent: u64,
    /// Signals received.
    pub signals_received: u64,
    /// Payload bytes sent (including headers, counted per receiver).
    pub bytes_sent: u64,
    /// Inputs discarded with no enabled transition.
    pub drops: u64,
    /// Total time inputs waited in the queue before dispatch (response
    /// time accounting, ns).
    pub queue_wait_ns: u64,
    /// Worst-case single-input queueing delay (ns).
    pub max_queue_wait_ns: u64,
}

impl ProcessStats {
    /// Mean queueing delay per step in nanoseconds.
    pub fn mean_queue_wait_ns(&self) -> f64 {
        if self.steps == 0 {
            0.0
        } else {
            self.queue_wait_ns as f64 / self.steps as f64
        }
    }
}

/// Per-processing-element counters.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct PeStats {
    /// Total busy time in nanoseconds.
    pub busy_ns: u64,
    /// Total cycles executed.
    pub busy_cycles: u64,
    /// True for the implicit environment element.
    pub is_env: bool,
}

/// Fault-related totals of one run.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct FaultTally {
    /// Transfers whose payload was corrupted by the fault model.
    pub corrupted: u64,
    /// Transfers dropped in flight by the fault model.
    pub dropped: u64,
    /// Transfers that found no route and fell back to free local
    /// delivery (a platform-model defect, not an injected fault).
    pub unroutable: u64,
}

impl FaultTally {
    /// Total injected faults (corruptions + drops).
    pub fn injected(&self) -> u64 {
        self.corrupted + self.dropped
    }
}

/// The result of a simulation run.
#[derive(Clone, PartialEq, Debug)]
pub struct SimReport {
    /// Simulated time at the last processed event (ns).
    pub end_time_ns: u64,
    /// Total run-to-completion steps.
    pub total_steps: u64,
    /// The simulation log (write `log.to_text()` to produce the log-file
    /// for the profiling tool).
    pub log: SimLog,
    /// `(process name, stats)` in process order.
    pub processes: Vec<(String, ProcessStats)>,
    /// `(element name, stats)` in element order; index 0 is the
    /// environment.
    pub pes: Vec<(String, PeStats)>,
    /// Fault totals (all zero for an un-faulted run on a routable
    /// platform).
    pub faults: FaultTally,
}

impl SimReport {
    /// Total cycles across all non-environment elements.
    pub fn total_cycles(&self) -> u64 {
        self.pes
            .iter()
            .filter(|(_, s)| !s.is_env)
            .map(|(_, s)| s.busy_cycles)
            .sum()
    }

    /// Stats for one process by name.
    pub fn process(&self, name: &str) -> Option<&ProcessStats> {
        self.processes
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, s)| s)
    }

    /// Utilisation of one element over the simulated horizon.
    pub fn pe_utilisation(&self, name: &str) -> Option<f64> {
        if self.end_time_ns == 0 {
            return None;
        }
        self.pes
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, s)| s.busy_ns as f64 / self.end_time_ns as f64)
    }

    /// Total of one named counter across all processes (from the log's
    /// `CNT` records; see `Statement::Count`). Served from the tallies
    /// the log accumulates at push time — no record rescan.
    pub fn counter_total(&self, counter: &str) -> i64 {
        self.log.counter_total(counter)
    }

    /// Total of one named counter for one process, from the log's
    /// push-time tallies.
    pub fn process_counter(&self, process: &str, counter: &str) -> i64 {
        self.log.process_counter(process, counter)
    }

    /// One-paragraph human summary.
    pub fn summary(&self) -> String {
        let mut text = format!(
            "simulated {} steps to t={} ns; {} log records; {} processes on {} elements; total {} cycles",
            self.total_steps,
            self.end_time_ns,
            self.log.len(),
            self.processes.len(),
            self.pes.len(),
            self.total_cycles(),
        );
        if self.faults.injected() > 0 || self.faults.unroutable > 0 {
            text.push_str(&format!(
                "; faults: {} corrupted, {} dropped, {} unroutable",
                self.faults.corrupted, self.faults.dropped, self.faults.unroutable
            ));
        }
        text
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::log::LogRecord;

    fn sample() -> SimReport {
        SimReport {
            end_time_ns: 1000,
            total_steps: 10,
            log: SimLog::new(),
            processes: vec![(
                "p1".into(),
                ProcessStats {
                    steps: 10,
                    cycles: 500,
                    busy_ns: 600,
                    ..ProcessStats::default()
                },
            )],
            pes: vec![
                (
                    "environment".into(),
                    PeStats {
                        busy_ns: 0,
                        busy_cycles: 0,
                        is_env: true,
                    },
                ),
                (
                    "cpu1".into(),
                    PeStats {
                        busy_ns: 600,
                        busy_cycles: 500,
                        is_env: false,
                    },
                ),
            ],
            faults: FaultTally::default(),
        }
    }

    #[test]
    fn totals_exclude_environment() {
        let r = sample();
        assert_eq!(r.total_cycles(), 500);
    }

    #[test]
    fn lookups() {
        let r = sample();
        assert_eq!(r.process("p1").unwrap().cycles, 500);
        assert!(r.process("nope").is_none());
        assert!((r.pe_utilisation("cpu1").unwrap() - 0.6).abs() < 1e-12);
    }

    #[test]
    fn summary_mentions_counts() {
        let text = sample().summary();
        assert!(text.contains("10 steps"));
        assert!(text.contains("500 cycles"));
        assert!(!text.contains("faults"), "clean run stays quiet");
        let mut lossy = sample();
        lossy.faults.dropped = 3;
        assert!(lossy.summary().contains("3 dropped"));
    }

    #[test]
    fn counter_totals_come_from_the_log() {
        let mut r = sample();
        for (process, amount) in [("p1", 2), ("p1", 3), ("p2", 10)] {
            r.log.push(LogRecord::Count {
                time_ns: 1,
                process: process.into(),
                counter: "arq.tx".into(),
                amount,
            });
        }
        r.log.push(LogRecord::Count {
            time_ns: 2,
            process: "p1".into(),
            counter: "arq.acked".into(),
            amount: 4,
        });
        assert_eq!(r.counter_total("arq.tx"), 15);
        assert_eq!(r.process_counter("p1", "arq.tx"), 5);
        assert_eq!(r.process_counter("p1", "arq.acked"), 4);
        assert_eq!(r.counter_total("nope"), 0);
    }
}
