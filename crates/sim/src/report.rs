//! Simulation results: per-process and per-element statistics plus the
//! log.

use crate::log::SimLog;

/// Per-process counters accumulated during a run.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct ProcessStats {
    /// Run-to-completion steps executed.
    pub steps: u64,
    /// Total cycles charged on the process's processing element.
    pub cycles: u64,
    /// Total busy time in nanoseconds.
    pub busy_ns: u64,
    /// Signals sent (counted per receiver).
    pub signals_sent: u64,
    /// Signals received.
    pub signals_received: u64,
    /// Payload bytes sent (including headers, counted per receiver).
    pub bytes_sent: u64,
    /// Inputs discarded with no enabled transition.
    pub drops: u64,
    /// Total time inputs waited in the queue before dispatch (response
    /// time accounting, ns).
    pub queue_wait_ns: u64,
    /// Worst-case single-input queueing delay (ns).
    pub max_queue_wait_ns: u64,
}

impl ProcessStats {
    /// Mean queueing delay per step in nanoseconds.
    pub fn mean_queue_wait_ns(&self) -> f64 {
        if self.steps == 0 {
            0.0
        } else {
            self.queue_wait_ns as f64 / self.steps as f64
        }
    }
}

/// Per-processing-element counters.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct PeStats {
    /// Total busy time in nanoseconds.
    pub busy_ns: u64,
    /// Total cycles executed.
    pub busy_cycles: u64,
    /// True for the implicit environment element.
    pub is_env: bool,
}

/// The result of a simulation run.
#[derive(Clone, PartialEq, Debug)]
pub struct SimReport {
    /// Simulated time at the last processed event (ns).
    pub end_time_ns: u64,
    /// Total run-to-completion steps.
    pub total_steps: u64,
    /// The simulation log (write `log.to_text()` to produce the log-file
    /// for the profiling tool).
    pub log: SimLog,
    /// `(process name, stats)` in process order.
    pub processes: Vec<(String, ProcessStats)>,
    /// `(element name, stats)` in element order; index 0 is the
    /// environment.
    pub pes: Vec<(String, PeStats)>,
}

impl SimReport {
    /// Total cycles across all non-environment elements.
    pub fn total_cycles(&self) -> u64 {
        self.pes
            .iter()
            .filter(|(_, s)| !s.is_env)
            .map(|(_, s)| s.busy_cycles)
            .sum()
    }

    /// Stats for one process by name.
    pub fn process(&self, name: &str) -> Option<&ProcessStats> {
        self.processes
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, s)| s)
    }

    /// Utilisation of one element over the simulated horizon.
    pub fn pe_utilisation(&self, name: &str) -> Option<f64> {
        if self.end_time_ns == 0 {
            return None;
        }
        self.pes
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, s)| s.busy_ns as f64 / self.end_time_ns as f64)
    }

    /// One-paragraph human summary.
    pub fn summary(&self) -> String {
        format!(
            "simulated {} steps to t={} ns; {} log records; {} processes on {} elements; total {} cycles",
            self.total_steps,
            self.end_time_ns,
            self.log.len(),
            self.processes.len(),
            self.pes.len(),
            self.total_cycles(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> SimReport {
        SimReport {
            end_time_ns: 1000,
            total_steps: 10,
            log: SimLog::new(),
            processes: vec![(
                "p1".into(),
                ProcessStats {
                    steps: 10,
                    cycles: 500,
                    busy_ns: 600,
                    ..ProcessStats::default()
                },
            )],
            pes: vec![
                (
                    "environment".into(),
                    PeStats {
                        busy_ns: 0,
                        busy_cycles: 0,
                        is_env: true,
                    },
                ),
                (
                    "cpu1".into(),
                    PeStats {
                        busy_ns: 600,
                        busy_cycles: 500,
                        is_env: false,
                    },
                ),
            ],
        }
    }

    #[test]
    fn totals_exclude_environment() {
        let r = sample();
        assert_eq!(r.total_cycles(), 500);
    }

    #[test]
    fn lookups() {
        let r = sample();
        assert_eq!(r.process("p1").unwrap().cycles, 500);
        assert!(r.process("nope").is_none());
        assert!((r.pe_utilisation("cpu1").unwrap() - 0.6).abs() < 1e-12);
    }

    #[test]
    fn summary_mentions_counts() {
        let text = sample().summary();
        assert!(text.contains("10 steps"));
        assert!(text.contains("500 cycles"));
    }
}
