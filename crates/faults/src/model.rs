//! The [`FaultModel`] trait and its zero-cost [`NoFaults`] default.

/// The fate of one signal transfer, decided by a fault model.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum TransferVerdict {
    /// The transfer arrives intact.
    Deliver,
    /// The transfer arrives with bit errors in its payload.
    Corrupt,
    /// The transfer is lost in flight.
    Drop,
}

/// A source of deterministic fault decisions, queried by the simulation
/// engine at well-defined points in event order.
///
/// Every randomised hook receives the simulation time and an
/// engine-supplied `salt` that is unique per decision point (derived
/// from the deciding process and a per-process nonce). Implementations
/// must make each decision a **pure function of `(now_ns, salt)`** and
/// their own configuration — never of the global call order. This is
/// what lets the conservative parallel kernel replay the exact serial
/// fault stream: logical processes reach the same `(now_ns, salt)`
/// keys in a different interleaving and still draw the same answers.
pub trait FaultModel {
    /// Fast gate: when `false`, callers may skip every other hook (and
    /// the engine emits no fault records at all).
    fn is_active(&self) -> bool;

    /// Decides the fate of a signal transfer of `bytes` bytes that
    /// traversed `hops` network segments.
    fn transfer_verdict(
        &mut self,
        now_ns: u64,
        bytes: u64,
        hops: u32,
        salt: u64,
    ) -> TransferVerdict;

    /// Injects bit errors into a payload (called only after a
    /// [`TransferVerdict::Corrupt`] verdict, with the same
    /// `(now_ns, salt)` key as the verdict).
    fn corrupt_payload(&mut self, now_ns: u64, payload: &mut [u8], salt: u64);

    /// Extra delay, in nanoseconds, added when a timer of nominal
    /// `duration_ns` is armed.
    fn timer_jitter_ns(&mut self, now_ns: u64, duration_ns: u64, salt: u64) -> u64;

    /// If the processing element named `pe` is inside a stall/outage
    /// window at `now_ns`, returns the simulation time at which the
    /// window ends (`u64::MAX` for a permanent outage).
    fn outage_until(&mut self, pe: &str, now_ns: u64) -> Option<u64>;
}

/// The default fault model: nothing ever goes wrong.
///
/// Every method is a trivially-inlinable constant, so code generic over
/// [`FaultModel`] monomorphises to exactly the un-faulted code path.
#[derive(Clone, Copy, Default, Debug)]
pub struct NoFaults;

impl FaultModel for NoFaults {
    #[inline]
    fn is_active(&self) -> bool {
        false
    }

    #[inline]
    fn transfer_verdict(
        &mut self,
        _now_ns: u64,
        _bytes: u64,
        _hops: u32,
        _salt: u64,
    ) -> TransferVerdict {
        TransferVerdict::Deliver
    }

    #[inline]
    fn corrupt_payload(&mut self, _now_ns: u64, _payload: &mut [u8], _salt: u64) {}

    #[inline]
    fn timer_jitter_ns(&mut self, _now_ns: u64, _duration_ns: u64, _salt: u64) -> u64 {
        0
    }

    #[inline]
    fn outage_until(&mut self, _pe: &str, _now_ns: u64) -> Option<u64> {
        None
    }
}
