//! The [`FaultModel`] trait and its zero-cost [`NoFaults`] default.

/// The fate of one signal transfer, decided by a fault model.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum TransferVerdict {
    /// The transfer arrives intact.
    Deliver,
    /// The transfer arrives with bit errors in its payload.
    Corrupt,
    /// The transfer is lost in flight.
    Drop,
}

/// A source of deterministic fault decisions, queried by the simulation
/// engine at well-defined points in event order.
///
/// Implementations must be deterministic: the same sequence of calls
/// must produce the same sequence of answers (seeded PRNG state is the
/// only allowed mutability). The engine guarantees it makes the calls
/// in deterministic event order, so (model, scenario) pairs replay
/// bit-exactly.
pub trait FaultModel {
    /// Fast gate: when `false`, callers may skip every other hook (and
    /// the engine emits no fault records at all).
    fn is_active(&self) -> bool;

    /// Decides the fate of a signal transfer of `bytes` bytes that
    /// traversed `hops` network segments.
    fn transfer_verdict(&mut self, now_ns: u64, bytes: u64, hops: u32) -> TransferVerdict;

    /// Injects bit errors into a payload (called only after a
    /// [`TransferVerdict::Corrupt`] verdict).
    fn corrupt_payload(&mut self, payload: &mut [u8]);

    /// Extra delay, in nanoseconds, added when a timer of nominal
    /// `duration_ns` is armed.
    fn timer_jitter_ns(&mut self, duration_ns: u64) -> u64;

    /// If the processing element named `pe` is inside a stall/outage
    /// window at `now_ns`, returns the simulation time at which the
    /// window ends (`u64::MAX` for a permanent outage).
    fn outage_until(&mut self, pe: &str, now_ns: u64) -> Option<u64>;
}

/// The default fault model: nothing ever goes wrong.
///
/// Every method is a trivially-inlinable constant, so code generic over
/// [`FaultModel`] monomorphises to exactly the un-faulted code path.
#[derive(Clone, Copy, Default, Debug)]
pub struct NoFaults;

impl FaultModel for NoFaults {
    #[inline]
    fn is_active(&self) -> bool {
        false
    }

    #[inline]
    fn transfer_verdict(&mut self, _now_ns: u64, _bytes: u64, _hops: u32) -> TransferVerdict {
        TransferVerdict::Deliver
    }

    #[inline]
    fn corrupt_payload(&mut self, _payload: &mut [u8]) {}

    #[inline]
    fn timer_jitter_ns(&mut self, _duration_ns: u64) -> u64 {
        0
    }

    #[inline]
    fn outage_until(&mut self, _pe: &str, _now_ns: u64) -> Option<u64> {
        None
    }
}
