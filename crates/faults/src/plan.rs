//! Seeded, reproducible fault plans.

use tut_trace::SplitMix64;

use crate::model::{FaultModel, TransferVerdict};

/// A stall/outage window for one processing element.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Outage {
    /// Processing-element instance name (as shown in `SimReport`).
    pub pe: String,
    /// Window start, inclusive, in simulation nanoseconds.
    pub from_ns: u64,
    /// Window end, exclusive (`u64::MAX` for a permanent outage).
    pub until_ns: u64,
}

/// Parameters of a deterministic fault process.
///
/// All rates default to zero: a default-constructed plan injects
/// nothing and draws nothing from its PRNG, so it is behaviourally
/// identical to [`crate::NoFaults`].
#[derive(Clone, PartialEq, Debug)]
pub struct FaultConfig {
    /// PRNG seed; the same seed and scenario reproduce the same run.
    pub seed: u64,
    /// Per-bit probability that a transferred bit is flipped. A
    /// transfer of `b` bytes is corrupted with probability
    /// `1 − (1 − ber)^(8·b)`.
    pub bit_error_rate: f64,
    /// Per-hop probability that a transfer is dropped outright. A
    /// transfer over `h` segments is lost with probability
    /// `1 − (1 − p)^h`.
    pub drop_per_hop: f64,
    /// Maximum extra delay drawn uniformly in `[0, jitter]` whenever a
    /// timer is armed (0 = timers are exact).
    pub timer_jitter_ns: u64,
    /// Stall/outage windows per processing element.
    pub outages: Vec<Outage>,
}

impl Default for FaultConfig {
    fn default() -> FaultConfig {
        FaultConfig {
            seed: 0x5EED,
            bit_error_rate: 0.0,
            drop_per_hop: 0.0,
            timer_jitter_ns: 0,
            outages: Vec::new(),
        }
    }
}

impl FaultConfig {
    /// A plan that only sets the bit-error rate (the common sweep knob).
    pub fn with_ber(seed: u64, bit_error_rate: f64) -> FaultConfig {
        FaultConfig {
            seed,
            bit_error_rate,
            ..FaultConfig::default()
        }
    }
}

/// A [`FaultModel`] driving deterministic fault processes from a seeded
/// SplitMix64 stream.
///
/// Zero-rate hooks short-circuit without drawing from the PRNG, so a
/// plan with some rates at zero perturbs neither the decisions nor the
/// draw sequence of the others.
#[derive(Clone, Debug)]
pub struct FaultPlan {
    config: FaultConfig,
    rng: SplitMix64,
}

impl FaultPlan {
    /// Creates the plan; the PRNG starts at `config.seed`.
    pub fn new(config: FaultConfig) -> FaultPlan {
        let rng = SplitMix64::new(config.seed);
        FaultPlan { config, rng }
    }

    /// The plan's configuration.
    pub fn config(&self) -> &FaultConfig {
        &self.config
    }
}

impl FaultModel for FaultPlan {
    fn is_active(&self) -> bool {
        self.config.bit_error_rate > 0.0
            || self.config.drop_per_hop > 0.0
            || self.config.timer_jitter_ns > 0
            || !self.config.outages.is_empty()
    }

    fn transfer_verdict(&mut self, _now_ns: u64, bytes: u64, hops: u32) -> TransferVerdict {
        // Drop is decided first (a dropped transfer never reaches the
        // receiver to be corrupted). Each decision draws exactly one
        // f64 when its rate is non-zero and nothing otherwise.
        if self.config.drop_per_hop > 0.0 && hops > 0 {
            let survive = (1.0 - self.config.drop_per_hop).powi(hops as i32);
            if self.rng.next_f64() >= survive {
                return TransferVerdict::Drop;
            }
        }
        if self.config.bit_error_rate > 0.0 && bytes > 0 {
            let bits = (8 * bytes).min(i32::MAX as u64) as i32;
            let survive = (1.0 - self.config.bit_error_rate).powi(bits);
            if self.rng.next_f64() >= survive {
                return TransferVerdict::Corrupt;
            }
        }
        TransferVerdict::Deliver
    }

    fn corrupt_payload(&mut self, payload: &mut [u8]) {
        if payload.is_empty() {
            return;
        }
        let bit = self.rng.next_below(payload.len() as u64 * 8);
        payload[(bit / 8) as usize] ^= 1 << (bit % 8);
    }

    fn timer_jitter_ns(&mut self, _duration_ns: u64) -> u64 {
        if self.config.timer_jitter_ns == 0 {
            return 0;
        }
        self.rng.next_below(self.config.timer_jitter_ns + 1)
    }

    fn outage_until(&mut self, pe: &str, now_ns: u64) -> Option<u64> {
        self.config
            .outages
            .iter()
            .find(|o| o.pe == pe && o.from_ns <= now_ns && now_ns < o.until_ns)
            .map(|o| o.until_ns)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn verdicts(plan: &mut FaultPlan, n: usize) -> Vec<TransferVerdict> {
        (0..n)
            .map(|k| plan.transfer_verdict(k as u64, 256, 2))
            .collect()
    }

    #[test]
    fn zero_rate_plan_is_inert_and_drawless() {
        let mut plan = FaultPlan::new(FaultConfig::default());
        assert!(!plan.is_active());
        assert!(verdicts(&mut plan, 100)
            .iter()
            .all(|v| *v == TransferVerdict::Deliver));
        assert_eq!(plan.timer_jitter_ns(1000), 0);
        assert_eq!(plan.outage_until("cpu1", 5), None);
        // No draw happened: the PRNG still matches a fresh one.
        assert_eq!(plan.rng, SplitMix64::new(FaultConfig::default().seed));
    }

    #[test]
    fn same_seed_reproduces_the_same_fault_stream() {
        let config = FaultConfig::with_ber(42, 1e-4);
        let a = verdicts(&mut FaultPlan::new(config.clone()), 500);
        let b = verdicts(&mut FaultPlan::new(config), 500);
        assert_eq!(a, b);
        assert!(a.contains(&TransferVerdict::Corrupt), "rate high enough");
    }

    #[test]
    fn corruption_rate_grows_with_ber() {
        let count = |ber: f64| {
            verdicts(&mut FaultPlan::new(FaultConfig::with_ber(7, ber)), 2000)
                .iter()
                .filter(|v| **v == TransferVerdict::Corrupt)
                .count()
        };
        let low = count(1e-6);
        let high = count(1e-3);
        assert!(low < high, "corruptions: {low} at 1e-6 vs {high} at 1e-3");
    }

    #[test]
    fn corrupt_payload_flips_exactly_one_bit() {
        let mut plan = FaultPlan::new(FaultConfig::with_ber(9, 1e-3));
        let clean = vec![0u8; 64];
        let mut dirty = clean.clone();
        plan.corrupt_payload(&mut dirty);
        let flipped: u32 = clean
            .iter()
            .zip(&dirty)
            .map(|(a, b)| (a ^ b).count_ones())
            .sum();
        assert_eq!(flipped, 1);
    }

    #[test]
    fn drops_follow_per_hop_rate() {
        let config = FaultConfig {
            seed: 3,
            drop_per_hop: 0.5,
            ..FaultConfig::default()
        };
        let mut plan = FaultPlan::new(config);
        let dropped = (0..1000)
            .filter(|_| plan.transfer_verdict(0, 8, 1) == TransferVerdict::Drop)
            .count();
        // P(drop) = 0.5 per hop; allow a broad band around 500.
        assert!((350..650).contains(&dropped), "dropped {dropped} of 1000");
    }

    #[test]
    fn outage_windows_cover_half_open_ranges() {
        let config = FaultConfig {
            seed: 1,
            outages: vec![Outage {
                pe: "cpu2".into(),
                from_ns: 100,
                until_ns: 200,
            }],
            ..FaultConfig::default()
        };
        let mut plan = FaultPlan::new(config);
        assert!(plan.is_active());
        assert_eq!(plan.outage_until("cpu2", 99), None);
        assert_eq!(plan.outage_until("cpu2", 100), Some(200));
        assert_eq!(plan.outage_until("cpu2", 199), Some(200));
        assert_eq!(plan.outage_until("cpu2", 200), None);
        assert_eq!(plan.outage_until("cpu1", 150), None);
    }

    #[test]
    fn timer_jitter_is_bounded() {
        let config = FaultConfig {
            seed: 11,
            timer_jitter_ns: 500,
            ..FaultConfig::default()
        };
        let mut plan = FaultPlan::new(config);
        for _ in 0..1000 {
            assert!(plan.timer_jitter_ns(10_000) <= 500);
        }
    }
}
