//! Seeded, reproducible fault plans.

use tut_trace::SplitMix64;

use crate::model::{FaultModel, TransferVerdict};

/// A stall/outage window for one processing element.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Outage {
    /// Processing-element instance name (as shown in `SimReport`).
    pub pe: String,
    /// Window start, inclusive, in simulation nanoseconds.
    pub from_ns: u64,
    /// Window end, exclusive (`u64::MAX` for a permanent outage).
    pub until_ns: u64,
}

/// Parameters of a deterministic fault process.
///
/// All rates default to zero: a default-constructed plan injects
/// nothing and draws nothing, so it is behaviourally identical to
/// [`crate::NoFaults`].
#[derive(Clone, PartialEq, Debug)]
pub struct FaultConfig {
    /// PRNG seed; the same seed and scenario reproduce the same run.
    pub seed: u64,
    /// Per-bit probability that a transferred bit is flipped. A
    /// transfer of `b` bytes is corrupted with probability
    /// `1 − (1 − ber)^(8·b)`.
    pub bit_error_rate: f64,
    /// Per-hop probability that a transfer is dropped outright. A
    /// transfer over `h` segments is lost with probability
    /// `1 − (1 − p)^h`.
    pub drop_per_hop: f64,
    /// Maximum extra delay drawn uniformly in `[0, jitter]` whenever a
    /// timer is armed (0 = timers are exact).
    pub timer_jitter_ns: u64,
    /// Stall/outage windows per processing element.
    pub outages: Vec<Outage>,
}

impl Default for FaultConfig {
    fn default() -> FaultConfig {
        FaultConfig {
            seed: 0x5EED,
            bit_error_rate: 0.0,
            drop_per_hop: 0.0,
            timer_jitter_ns: 0,
            outages: Vec::new(),
        }
    }
}

impl FaultConfig {
    /// A plan that only sets the bit-error rate (the common sweep knob).
    pub fn with_ber(seed: u64, bit_error_rate: f64) -> FaultConfig {
        FaultConfig {
            seed,
            bit_error_rate,
            ..FaultConfig::default()
        }
    }
}

/// SplitMix64's avalanche finalizer: a cheap bijective mixer used to
/// fold the decision key into a stream seed.
fn mix64(mut x: u64) -> u64 {
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Purpose constants keep the verdict, corruption and jitter streams of
/// one `(now, salt)` key independent of each other.
const PURPOSE_VERDICT: u64 = 0x01;
const PURPOSE_CORRUPT: u64 = 0x02;
const PURPOSE_JITTER: u64 = 0x03;

/// A [`FaultModel`] whose every decision is a pure function of the
/// decision key `(now_ns, salt)` and the plan's configuration.
///
/// Each hook derives a private SplitMix64 stream from
/// `(seed, purpose, now_ns, salt)`, so decisions do not depend on how
/// many other decisions were made before them. Serial and parallel
/// simulation therefore see identical fault streams even though they
/// interleave the calls differently, and zero-rate hooks still
/// short-circuit without touching the PRNG at all.
#[derive(Clone, PartialEq, Debug)]
pub struct FaultPlan {
    config: FaultConfig,
}

impl FaultPlan {
    /// Creates the plan.
    pub fn new(config: FaultConfig) -> FaultPlan {
        FaultPlan { config }
    }

    /// The plan's configuration.
    pub fn config(&self) -> &FaultConfig {
        &self.config
    }

    /// The decision stream for one `(purpose, now, salt)` key.
    fn stream(&self, purpose: u64, now_ns: u64, salt: u64) -> SplitMix64 {
        let mut k = self.config.seed;
        k = mix64(k.wrapping_add(purpose));
        k = mix64(k ^ now_ns.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        k = mix64(k ^ salt);
        SplitMix64::new(k)
    }
}

impl FaultModel for FaultPlan {
    fn is_active(&self) -> bool {
        self.config.bit_error_rate > 0.0
            || self.config.drop_per_hop > 0.0
            || self.config.timer_jitter_ns > 0
            || !self.config.outages.is_empty()
    }

    fn transfer_verdict(
        &mut self,
        now_ns: u64,
        bytes: u64,
        hops: u32,
        salt: u64,
    ) -> TransferVerdict {
        // Drop is decided first (a dropped transfer never reaches the
        // receiver to be corrupted). Both decisions read one stream so
        // drop/corrupt outcomes of a single transfer stay correlated
        // the way the sequential draw order was.
        if self.config.drop_per_hop <= 0.0 && self.config.bit_error_rate <= 0.0 {
            return TransferVerdict::Deliver;
        }
        let mut rng = self.stream(PURPOSE_VERDICT, now_ns, salt);
        if self.config.drop_per_hop > 0.0 && hops > 0 {
            let survive = (1.0 - self.config.drop_per_hop).powi(hops as i32);
            if rng.next_f64() >= survive {
                return TransferVerdict::Drop;
            }
        }
        if self.config.bit_error_rate > 0.0 && bytes > 0 {
            let bits = (8 * bytes).min(i32::MAX as u64) as i32;
            let survive = (1.0 - self.config.bit_error_rate).powi(bits);
            if rng.next_f64() >= survive {
                return TransferVerdict::Corrupt;
            }
        }
        TransferVerdict::Deliver
    }

    fn corrupt_payload(&mut self, now_ns: u64, payload: &mut [u8], salt: u64) {
        if payload.is_empty() {
            return;
        }
        let mut rng = self.stream(PURPOSE_CORRUPT, now_ns, salt);
        let bit = rng.next_below(payload.len() as u64 * 8);
        payload[(bit / 8) as usize] ^= 1 << (bit % 8);
    }

    fn timer_jitter_ns(&mut self, now_ns: u64, _duration_ns: u64, salt: u64) -> u64 {
        if self.config.timer_jitter_ns == 0 {
            return 0;
        }
        let mut rng = self.stream(PURPOSE_JITTER, now_ns, salt);
        rng.next_below(self.config.timer_jitter_ns + 1)
    }

    fn outage_until(&mut self, pe: &str, now_ns: u64) -> Option<u64> {
        self.config
            .outages
            .iter()
            .find(|o| o.pe == pe && o.from_ns <= now_ns && now_ns < o.until_ns)
            .map(|o| o.until_ns)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn verdicts(plan: &mut FaultPlan, n: usize) -> Vec<TransferVerdict> {
        (0..n)
            .map(|k| plan.transfer_verdict(k as u64 * 37, 256, 2, k as u64))
            .collect()
    }

    #[test]
    fn zero_rate_plan_is_inert() {
        let mut plan = FaultPlan::new(FaultConfig::default());
        assert!(!plan.is_active());
        assert!(verdicts(&mut plan, 100)
            .iter()
            .all(|v| *v == TransferVerdict::Deliver));
        assert_eq!(plan.timer_jitter_ns(0, 1000, 7), 0);
        assert_eq!(plan.outage_until("cpu1", 5), None);
    }

    #[test]
    fn same_seed_reproduces_the_same_fault_stream() {
        let config = FaultConfig::with_ber(42, 1e-4);
        let a = verdicts(&mut FaultPlan::new(config.clone()), 500);
        let b = verdicts(&mut FaultPlan::new(config), 500);
        assert_eq!(a, b);
        assert!(a.contains(&TransferVerdict::Corrupt), "rate high enough");
    }

    /// The property the parallel kernel rests on: each decision depends
    /// only on its `(now, salt)` key, never on how many decisions were
    /// made before it.
    #[test]
    fn draws_are_pure_functions_of_the_key() {
        let config = FaultConfig {
            seed: 77,
            bit_error_rate: 1e-4,
            drop_per_hop: 0.05,
            timer_jitter_ns: 300,
            ..FaultConfig::default()
        };
        let keys: Vec<(u64, u64)> = (0..200).map(|k| (k * 13, k * 7 + 1)).collect();

        // Forward order.
        let mut plan = FaultPlan::new(config.clone());
        let forward: Vec<_> = keys
            .iter()
            .map(|&(now, salt)| {
                (
                    plan.transfer_verdict(now, 128, 2, salt),
                    plan.timer_jitter_ns(now, 1_000, salt),
                )
            })
            .collect();

        // Reverse order, with unrelated draws interleaved.
        let mut plan = FaultPlan::new(config);
        let mut backward: Vec<_> = keys
            .iter()
            .rev()
            .map(|&(now, salt)| {
                let _noise = plan.transfer_verdict(now + 1, 64, 1, salt ^ 0xFFFF);
                (
                    plan.transfer_verdict(now, 128, 2, salt),
                    plan.timer_jitter_ns(now, 1_000, salt),
                )
            })
            .collect();
        backward.reverse();

        assert_eq!(forward, backward);
        assert!(
            forward.iter().any(|(v, _)| *v != TransferVerdict::Deliver),
            "rates high enough that something fired"
        );
        assert!(forward.iter().any(|(_, j)| *j > 0), "jitter fired");
    }

    #[test]
    fn corruption_rate_grows_with_ber() {
        let count = |ber: f64| {
            verdicts(&mut FaultPlan::new(FaultConfig::with_ber(7, ber)), 2000)
                .iter()
                .filter(|v| **v == TransferVerdict::Corrupt)
                .count()
        };
        let low = count(1e-6);
        let high = count(1e-3);
        assert!(low < high, "corruptions: {low} at 1e-6 vs {high} at 1e-3");
    }

    #[test]
    fn corrupt_payload_flips_exactly_one_bit() {
        let mut plan = FaultPlan::new(FaultConfig::with_ber(9, 1e-3));
        let clean = vec![0u8; 64];
        let mut dirty = clean.clone();
        plan.corrupt_payload(11, &mut dirty, 5);
        let flipped: u32 = clean
            .iter()
            .zip(&dirty)
            .map(|(a, b)| (a ^ b).count_ones())
            .sum();
        assert_eq!(flipped, 1);
    }

    #[test]
    fn drops_follow_per_hop_rate() {
        let config = FaultConfig {
            seed: 3,
            drop_per_hop: 0.5,
            ..FaultConfig::default()
        };
        let mut plan = FaultPlan::new(config);
        let dropped = (0..1000u64)
            .filter(|k| plan.transfer_verdict(k * 11, 8, 1, *k) == TransferVerdict::Drop)
            .count();
        // P(drop) = 0.5 per hop; allow a broad band around 500.
        assert!((350..650).contains(&dropped), "dropped {dropped} of 1000");
    }

    #[test]
    fn outage_windows_cover_half_open_ranges() {
        let config = FaultConfig {
            seed: 1,
            outages: vec![Outage {
                pe: "cpu2".into(),
                from_ns: 100,
                until_ns: 200,
            }],
            ..FaultConfig::default()
        };
        let mut plan = FaultPlan::new(config);
        assert!(plan.is_active());
        assert_eq!(plan.outage_until("cpu2", 99), None);
        assert_eq!(plan.outage_until("cpu2", 100), Some(200));
        assert_eq!(plan.outage_until("cpu2", 199), Some(200));
        assert_eq!(plan.outage_until("cpu2", 200), None);
        assert_eq!(plan.outage_until("cpu1", 150), None);
    }

    #[test]
    fn timer_jitter_is_bounded() {
        let config = FaultConfig {
            seed: 11,
            timer_jitter_ns: 500,
            ..FaultConfig::default()
        };
        let mut plan = FaultPlan::new(config);
        for k in 0..1000u64 {
            assert!(plan.timer_jitter_ns(k * 3, 10_000, k) <= 500);
        }
    }
}
