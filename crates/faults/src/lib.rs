//! Deterministic fault injection for the TUT-Profile suite.
//!
//! A MAC protocol is defined by how it behaves under loss, yet an
//! executable UML model is usually simulated on the sunny day only.
//! This crate closes that gap with *deterministic* fault processes: a
//! [`FaultPlan`] is seeded (SplitMix64, the same PRNG the rest of the
//! workspace uses) and every fault decision is drawn from that stream
//! in simulation-event order, so a (seed, plan) pair reproduces the
//! exact same faulty run every time — no wall-clock randomness
//! anywhere.
//!
//! The [`FaultModel`] trait is threaded through the simulator with the
//! same statically-dispatched `*_with` pattern the trace layer uses:
//! the zero-cost [`NoFaults`] default monomorphises to the un-faulted
//! code, and a plan with every rate at zero takes the same branches as
//! `NoFaults` (no PRNG draws, no fault records), so its log is
//! byte-identical to a fault-free run.

pub mod model;
pub mod plan;

pub use model::{FaultModel, NoFaults, TransferVerdict};
pub use plan::{FaultConfig, FaultPlan, Outage};
