#!/usr/bin/env bash
# Full local verification: tier-1 (build + tests) plus lints.
#
#   scripts/verify.sh          # run everything
#   scripts/verify.sh --quick  # tier-1 only (skip clippy/fmt)
#
# Everything runs offline; the workspace has no external dependencies.
set -euo pipefail
cd "$(dirname "$0")/.."

quick=0
[[ "${1:-}" == "--quick" ]] && quick=1

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q"
cargo test -q

echo "==> cargo test -q --test exploration (parallel == serial properties)"
cargo test -q --test exploration

echo "==> repro --threads 2 explore (parallel path smoke run)"
cargo run --release -q -p tut-bench --bin repro -- --threads 2 explore

echo "==> cargo test -q --test faults (fault-injection determinism + ARQ contract)"
cargo test -q --test faults

echo "==> repro fault-sweep --quick (reliability smoke point)"
cargo run --release -q -p tut-bench --bin repro -- fault-sweep --quick

echo "==> repro bench --quick (sim throughput regression floor)"
cargo run --release -q -p tut-bench --bin repro -- bench --quick

if [[ "$quick" -eq 0 ]]; then
    echo "==> cargo clippy --workspace --all-targets -- -D warnings"
    cargo clippy --workspace --all-targets -- -D warnings

    echo "==> cargo fmt --check"
    cargo fmt --check
fi

echo "==> OK"
