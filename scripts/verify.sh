#!/usr/bin/env bash
# Full local verification: tier-1 (build + tests) plus lints.
#
#   scripts/verify.sh          # run everything
#   scripts/verify.sh --quick  # tier-1 only (skip clippy/fmt)
#
# Everything runs offline; the workspace has no external dependencies.
set -euo pipefail
cd "$(dirname "$0")/.."

quick=0
[[ "${1:-}" == "--quick" ]] && quick=1

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q"
cargo test -q

echo "==> cargo test -q --test exploration (parallel == serial properties)"
cargo test -q --test exploration

echo "==> repro --threads 2 explore (parallel path smoke run)"
cargo run --release -q -p tut-bench --bin repro -- --threads 2 explore

echo "==> cargo test -q --test faults (fault-injection determinism + ARQ contract)"
cargo test -q --test faults

echo "==> repro fault-sweep --quick (reliability smoke point)"
cargo run --release -q -p tut-bench --bin repro -- fault-sweep --quick

echo "==> repro bench --quick (sim throughput regression floor)"
cargo run --release -q -p tut-bench --bin repro -- bench --quick

echo "==> repro profile --quick --folded (self-profiler smoke)"
folded_out=$(cargo run --release -q -p tut-bench --bin repro -- profile --quick --folded)
if [[ -z "$folded_out" ]]; then
    echo "repro profile --quick --folded produced no collapsed stacks"; exit 1;
fi

echo "==> repro profile bench --quick (throughput floor WITH profiling enabled)"
cargo run --release -q -p tut-bench --bin repro -- profile bench --quick > /dev/null

echo "==> repro check (diagnostics exit contract)"
# Clean model: warnings at most, exit 0.
cargo run --release -q -p tut-bench --bin repro -- check > /dev/null
# Known-bad fixture: must exit nonzero and report the expected stable
# codes — a syntax error, a well-formedness violation, and a profile-rule
# violation, all in one run.
if check_out=$(cargo run --release -q -p tut-bench --bin repro -- check \
    crates/bench/fixtures/check_bad.xml); then
    echo "repro check on check_bad.xml should have exited nonzero"; exit 1;
fi
for code in E0110 E0314 E0202; do
    if ! grep -q "$code" <<< "$check_out"; then
        echo "repro check on check_bad.xml did not report $code"; exit 1;
    fi
done

if [[ "$quick" -eq 0 ]]; then
    echo "==> cargo clippy --workspace --all-targets -- -D warnings"
    cargo clippy --workspace --all-targets -- -D warnings

    echo "==> cargo fmt --check"
    cargo fmt --check
fi

echo "==> OK"
