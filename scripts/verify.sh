#!/usr/bin/env bash
# Full local verification: tier-1 (build + tests) plus lints.
#
#   scripts/verify.sh          # run everything
#   scripts/verify.sh --quick  # tier-1 only (skip clippy/fmt)
#
# Everything runs offline; the workspace has no external dependencies.
set -euo pipefail
cd "$(dirname "$0")/.."

quick=0
[[ "${1:-}" == "--quick" ]] && quick=1

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q"
cargo test -q

echo "==> cargo test -q --test exploration (parallel == serial properties)"
cargo test -q --test exploration

echo "==> repro --threads 2 explore (parallel path smoke run)"
cargo run --release -q -p tut-bench --bin repro -- --threads 2 explore

echo "==> cargo test -q --test faults (fault-injection determinism + ARQ contract)"
cargo test -q --test faults

echo "==> cargo test -q --test parallel (conservative kernel: parallel == serial logs)"
cargo test -q --test parallel

echo "==> repro fault-sweep --quick (reliability smoke point)"
cargo run --release -q -p tut-bench --bin repro -- fault-sweep --quick

echo "==> repro fault-sweep --quick --store (kill mid-write, resume, bit-identical)"
# Crash drill: abort the sweep halfway through the third record's write
# (a torn frame on disk), then resume. The resume must truncate the torn
# tail, replay the 2 durable points, recompute the rest, and pass the
# same pinned band as the uninterrupted smoke.
store_dir=$(mktemp -d)
trap 'rm -rf "$store_dir"' EXIT
if TUT_STORE_KILL=store.torn:3:abort cargo run --release -q -p tut-bench --bin repro -- \
    fault-sweep --quick --no-progress --store "$store_dir" 2> /dev/null; then
    echo "repro fault-sweep --store: armed kill did not fire"; exit 1;
fi
resume_out=$(cargo run --release -q -p tut-bench --bin repro -- \
    fault-sweep --quick --no-progress --store "$store_dir" --resume)
if ! grep -q "resumed=2 total=5" <<< "$resume_out"; then
    echo "repro fault-sweep --resume: expected resumed=2 total=5"; exit 1;
fi
if ! grep -q "within pinned band" <<< "$resume_out"; then
    echo "repro fault-sweep --resume: resumed table left the pinned band"; exit 1;
fi

echo "==> repro bench --quick (throughput + calendar floors, log identity, coalescing)"
bench_out=$(cargo run --release -q -p tut-bench --bin repro -- bench --quick)
if ! grep -q "parallel single-run log_identical=true" <<< "$bench_out"; then
    echo "repro bench --quick: parallel single-run log diverged from serial"; exit 1;
fi
if ! grep -q "calendar queue .* clears floor" <<< "$bench_out"; then
    echo "repro bench --quick: calendar-queue microbench missed its floor"; exit 1;
fi
if ! grep -qE "coalescing: [0-9]+ fixed-step windows -> [0-9]+ adaptive windows" <<< "$bench_out"; then
    echo "repro bench --quick: coalescing line missing from bench output"; exit 1;
fi

echo "==> repro profile --quick --folded (self-profiler smoke)"
folded_out=$(cargo run --release -q -p tut-bench --bin repro -- profile --quick --folded)
if [[ -z "$folded_out" ]]; then
    echo "repro profile --quick --folded produced no collapsed stacks"; exit 1;
fi

echo "==> repro profile bench --quick (throughput floor WITH profiling enabled)"
cargo run --release -q -p tut-bench --bin repro -- profile bench --quick > /dev/null

echo "==> repro check (diagnostics exit contract)"
# Clean model: warnings at most, exit 0.
cargo run --release -q -p tut-bench --bin repro -- check > /dev/null
# Known-bad fixture: must exit nonzero and report the expected stable
# codes — a syntax error, a well-formedness violation, and a profile-rule
# violation, all in one run.
if check_out=$(cargo run --release -q -p tut-bench --bin repro -- check \
    crates/bench/fixtures/check_bad.xml); then
    echo "repro check on check_bad.xml should have exited nonzero"; exit 1;
fi
for code in E0110 E0314 E0202; do
    if ! grep -q "$code" <<< "$check_out"; then
        echo "repro check on check_bad.xml did not report $code"; exit 1;
    fi
done
# Out-of-range platform parameter: the sim-setup dry run must surface a
# spanned E0410 instead of letting the value truncate at simulation time.
if range_out=$(cargo run --release -q -p tut-bench --bin repro -- check \
    crates/bench/fixtures/check_param_range.xml); then
    echo "repro check on check_param_range.xml should have exited nonzero"; exit 1;
fi
if ! grep -q "E0410" <<< "$range_out"; then
    echo "repro check on check_param_range.xml did not report E0410"; exit 1;
fi

echo "==> repro check --store (warm re-check drill: second process answers from disk)"
# First process populates the disk report cache; a second process must
# answer the identical check entirely from the journal (100% hit rate).
check_store=$(mktemp -d -p "$store_dir")
cargo run --release -q -p tut-bench --bin repro -- check --cache-stats \
    --store "$check_store" > /dev/null
warm_out=$(cargo run --release -q -p tut-bench --bin repro -- check --cache-stats \
    --store "$check_store")
if ! grep -q "hit rate 100.0%" <<< "$warm_out"; then
    echo "repro check --store: second process was not a pure disk hit"; exit 1;
fi

echo "==> repro bench-check (cold vs warm floor, byte-identity, BENCH_check.json)"
# Full mode: enforces the >=10x warm re-check floor, verifies every warm
# report byte-identical to the cold pipeline, writes BENCH_check.json.
cargo run --release -q -p tut-bench --bin repro -- bench-check > /dev/null
if ! grep -q '"speedup"' BENCH_check.json; then
    echo "repro bench-check did not write BENCH_check.json"; exit 1;
fi

if [[ "$quick" -eq 0 ]]; then
    echo "==> cargo clippy --workspace --all-targets -- -D warnings"
    cargo clippy --workspace --all-targets -- -D warnings

    echo "==> cargo fmt --check"
    cargo fmt --check
fi

echo "==> OK"
